#include "cluster/clara.h"

#include <algorithm>
#include <limits>

#include "cluster/pam.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "stats/distance.h"

namespace blaeu::cluster {

Result<ClusteringResult> Clara(size_t n, const RowDistanceFn& dist_fn,
                               size_t k, const ClaraOptions& options) {
  if (k == 0) return Status::Invalid("k must be >= 1");
  if (k > n) {
    return Status::Invalid("k = " + std::to_string(k) + " exceeds n = " +
                           std::to_string(n));
  }
  size_t sample_size =
      options.sample_size > 0 ? options.sample_size : 40 + 2 * k;
  sample_size = std::min(sample_size, n);
  if (sample_size < k) sample_size = k;

  auto& registry = obs::MetricsRegistry::Global();
  registry.counter("cluster.clara.runs")->Increment();
  registry.counter("cluster.clara.samples")
      ->Add(static_cast<int64_t>(options.num_samples));
  registry.counter("cluster.clara.rows_assigned")
      ->Add(static_cast<int64_t>(n * options.num_samples));
  ScopedTimer latency(registry.histogram("cluster.clara.run_seconds"));

  Rng rng(options.seed);
  PamOptions pam_options;
  pam_options.max_swap_iterations = options.max_swap_iterations;

  ClusteringResult best;
  best.total_cost = std::numeric_limits<double>::infinity();

  for (size_t s = 0; s < options.num_samples; ++s) {
    std::vector<size_t> sample = rng.SampleWithoutReplacement(n, sample_size);
    std::sort(sample.begin(), sample.end());
    // Distance matrix restricted to the sample.
    stats::DistanceMatrix dist(sample.size());
    for (size_t i = 0; i < sample.size(); ++i) {
      for (size_t j = i + 1; j < sample.size(); ++j) {
        dist.Set(i, j, dist_fn(sample[i], sample[j]));
      }
    }
    BLAEU_ASSIGN_OR_RETURN(ClusteringResult local, Pam(dist, k, pam_options));
    // Lift sample-local medoids to global indices and extend to all points.
    std::vector<size_t> medoids;
    medoids.reserve(k);
    for (size_t m : local.medoids) medoids.push_back(sample[m]);
    ClusteringResult extended = AssignToMedoids(n, medoids, dist_fn);
    if (extended.total_cost < best.total_cost) best = std::move(extended);
  }
  return best;
}

}  // namespace blaeu::cluster
