#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace blaeu {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars<double> is available in libstdc++ >= 11.
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  if (ec != std::errc() || ptr != end) return false;
  return std::isfinite(*out);
}

bool ParseInt(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string CsvEscape(std::string_view field, char delim) {
  bool needs_quote =
      field.find(delim) != std::string_view::npos ||
      field.find('"') != std::string_view::npos ||
      field.find('\n') != std::string_view::npos ||
      field.find('\r') != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace blaeu
