// Feature normalization for the preprocessing stage ("Blaeu ... normalizes
// the continuous variables", paper §3).
#pragma once

#include <vector>

namespace blaeu::stats {

/// \brief Fitted per-feature affine normalizer.
class Normalizer {
 public:
  /// z-score: (x - mean) / stddev; identity when stddev == 0.
  static Normalizer ZScore(const std::vector<double>& values);

  /// min-max to [0, 1]; identity when max == min.
  static Normalizer MinMax(const std::vector<double>& values);

  double Apply(double v) const { return (v - shift_) * scale_; }

  /// Inverse transform (Apply^-1).
  double Invert(double v) const { return v / scale_ + shift_; }

  void ApplyAll(std::vector<double>* values) const {
    for (double& v : *values) v = Apply(v);
  }

  double shift() const { return shift_; }
  double scale() const { return scale_; }

 private:
  Normalizer(double shift, double scale) : shift_(shift), scale_(scale) {}
  double shift_;
  double scale_;
};

}  // namespace blaeu::stats
