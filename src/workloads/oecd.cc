#include "workloads/oecd.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace blaeu::workloads {

using monet::Column;
using monet::DataType;
using monet::Field;
using monet::Schema;
using monet::Table;

namespace {

constexpr size_t kNumThemes = 8;
const char* kThemeNames[kNumThemes] = {
    "econ", "labor", "unemp", "health", "wellbeing", "edu", "env", "housing"};

// Latent factor means per development profile (row cluster) per theme.
//                                 econ  labor unemp health well  edu   env  hous
constexpr double kProfileMeans[4][kNumThemes] = {
    {+1.5, -1.6, -0.8, +1.0, +1.2, +0.8, +0.6, +0.7},  // 0 balance
    {+0.7, +1.7, -0.4, +0.1, -0.5, +0.4, -0.2, -0.3},  // 1 long-hours
    {-1.5, +0.2, +1.5, -0.8, -1.0, -0.6, -0.4, -0.8},  // 2 high-unemployment
    {-0.5, +0.1, +0.1, -0.1, +0.0, -0.1, +0.0, -0.1},  // 3 average
};

// 31 OECD countries; the first groups carry the profiles the demo story
// needs (Figure 1c highlights Switzerland, Norway, Canada in the
// low-hours/high-income region; "working in Canada is generally a good
// idea").
const char* kCountries[31] = {
    "Switzerland", "Norway",      "Canada",     "Netherlands", "Denmark",
    "Sweden",      "Japan",       "Korea",      "United States", "Mexico",
    "Turkey",      "Chile",       "Greece",     "Spain",       "Portugal",
    "Italy",       "Ireland",     "France",     "Germany",     "Austria",
    "Belgium",     "Finland",     "Iceland",    "Luxembourg",  "Poland",
    "Hungary",     "Czechia",     "Slovakia",   "Slovenia",    "Estonia",
    "United Kingdom"};
// Dominant profile per country (index-aligned with kCountries).
constexpr int kCountryProfile[31] = {0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1,
                                     1, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3,
                                     0, 0, 2, 2, 3, 3, 3, 3, 3};

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

Dataset MakeOecd(const OecdSpec& spec) {
  Rng rng(spec.seed);
  const size_t num_countries = std::min<size_t>(spec.num_countries, 31);

  // --- Column plan -------------------------------------------------------
  std::vector<Field> fields = {
      {"region_id", DataType::kInt64},
      {"region", DataType::kString},
      {"country", DataType::kString},
  };
  Dataset out;
  out.name = "oecd_countries_work";
  out.truth.num_clusters = 4;
  out.truth.num_themes = kNumThemes;
  out.truth.column_themes = {-1, -1, -1};

  struct IndicatorPlan {
    size_t theme;
    double base, scale, loading, noise_sd;
    double lo, hi;       // clamp range
    int transform = 0;   // 0 linear, 1 square, 2 abs, 3 sine
  };
  std::vector<IndicatorPlan> plans;

  auto add_indicator = [&](const std::string& name, size_t theme, double base,
                           double scale, double loading, double noise_sd,
                           double lo, double hi) {
    fields.push_back({name, DataType::kDouble});
    out.truth.column_themes.push_back(static_cast<int>(theme));
    plans.push_back({theme, base, scale, loading, noise_sd, lo, hi});
  };

  // Named lead indicators reproduce Figure 1's columns.
  add_indicator("pct_employees_working_long_hours", 1, 15.0, 8.0, 1.0, 2.0,
                0.5, 60.0);
  add_indicator("average_income_kusd", 0, 25.0, 8.0, 1.0, 2.0, 5.0, 70.0);
  add_indicator("time_dedicated_to_leisure_hours", 1, 14.5, 1.6, -1.0, 0.5,
                8.0, 20.0);
  add_indicator("unemployment_rate", 2, 8.0, 4.0, 1.0, 1.0, 0.5, 30.0);
  add_indicator("long_term_unemployment_rate", 2, 3.5, 2.5, 1.0, 0.7, 0.0,
                20.0);
  add_indicator("female_unemployment_rate", 2, 8.5, 4.2, 1.0, 1.1, 0.5, 32.0);
  add_indicator("pct_with_health_insurance", 3, 88.0, 8.0, 1.0, 2.0, 40.0,
                100.0);
  add_indicator("life_expectancy_years", 3, 79.0, 2.5, 1.0, 0.8, 65.0, 90.0);
  add_indicator("health_spending_pct_gdp", 3, 9.0, 1.8, 1.0, 0.6, 3.0, 18.0);

  // Generic indicators fill the rest, spread across the themes.
  while (plans.size() < spec.indicator_columns) {
    size_t theme = plans.size() % kNumThemes;
    std::string name = std::string(kThemeNames[theme]) + "_ind_" +
                       std::to_string(plans.size());
    double loading = (rng.NextBernoulli(0.25) ? -1.0 : 1.0) *
                     rng.NextUniform(0.6, 1.3);
    double base = rng.NextUniform(10.0, 100.0);
    double scale = base * rng.NextUniform(0.1, 0.3);
    add_indicator(name, theme, base, scale, loading,
                  scale * rng.NextUniform(0.15, 0.35), base - 6 * scale,
                  base + 6 * scale);
    if (rng.NextBernoulli(spec.nonlinear_fraction)) {
      plans.back().transform = 1 + static_cast<int>(rng.NextBounded(3));
    }
  }

  std::vector<monet::ColumnPtr> columns;
  for (const Field& f : fields) {
    auto col = std::make_shared<Column>(f.type);
    col->Reserve(spec.rows);
    columns.push_back(col);
  }

  // --- Rows ---------------------------------------------------------------
  const size_t kRegions = 1515;  // "more than 1,500 regions"
  for (size_t r = 0; r < spec.rows; ++r) {
    size_t region = rng.NextBounded(kRegions);
    size_t country = region % num_countries;
    // Profile: the country's dominant profile, with 12% regional deviation.
    int profile = kCountryProfile[country];
    if (rng.NextBernoulli(0.12)) {
      profile = static_cast<int>(rng.NextBounded(4));
    }
    out.truth.row_clusters.push_back(profile);

    // Latent factors for this observation.
    double factors[kNumThemes];
    for (size_t t = 0; t < kNumThemes; ++t) {
      factors[t] = kProfileMeans[profile][t] + 0.7 * rng.NextGaussian();
    }

    size_t i = 0;
    columns[i++]->AppendInt(static_cast<int64_t>(r + 1));
    columns[i++]->AppendString("R" + std::to_string(region) + "-" +
                               kCountries[country]);
    columns[i++]->AppendString(kCountries[country]);
    for (const IndicatorPlan& plan : plans) {
      if (rng.NextBernoulli(spec.missing_rate)) {
        columns[i++]->AppendNull();
        continue;
      }
      double x = factors[plan.theme];
      switch (plan.transform) {
        case 1:
          x = x * x - 1.0;  // centered square: kills linear correlation
          break;
        case 2:
          x = std::fabs(x) - 0.8;
          break;
        case 3:
          x = 1.5 * std::sin(2.0 * x);
          break;
        default:
          break;
      }
      double v = plan.base + plan.scale * plan.loading * x +
                 rng.NextGaussian(0.0, plan.noise_sd);
      columns[i++]->AppendDouble(Clamp(v, plan.lo, plan.hi));
    }
  }
  out.table = *Table::Make(Schema(std::move(fields)), std::move(columns));
  return out;
}

}  // namespace blaeu::workloads
