// Unit tests for the flight recorder: ring wraparound, counters, JSON
// shape, and concurrent writers (this file is part of the TSan CI filter).
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace blaeu::obs {
namespace {

TEST(FlightRecorderTest, RecordsInOrder) {
  FlightRecorder rec(8);
  rec.Record(FlightEventKind::kNote, "a");
  rec.Record(FlightEventKind::kNote, "b", {{"k", "v"}});
  rec.Record(FlightEventKind::kError, "c");
  ASSERT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.total_recorded(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);

  std::vector<FlightEvent> events = rec.Tail();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[2].name, "c");
  EXPECT_EQ(events[2].kind, FlightEventKind::kError);
  ASSERT_EQ(events[1].attrs.size(), 1u);
  EXPECT_EQ(events[1].attrs[0].first, "k");
  // Sequence numbers are monotonic and timestamps never go backwards.
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_LE(events[0].t_ns, events[2].t_ns);
}

TEST(FlightRecorderTest, WraparoundKeepsTheTail) {
  constexpr size_t kCapacity = 16;
  constexpr size_t kExtra = 5;
  FlightRecorder rec(kCapacity);
  for (size_t i = 0; i < kCapacity + kExtra; ++i) {
    rec.Record(FlightEventKind::kNote, "e" + std::to_string(i));
  }
  EXPECT_EQ(rec.size(), kCapacity);
  EXPECT_EQ(rec.total_recorded(), kCapacity + kExtra);
  EXPECT_EQ(rec.dropped(), kExtra);

  // The survivors are exactly the newest kCapacity events, oldest first,
  // with contiguous sequence numbers.
  std::vector<FlightEvent> events = rec.Tail();
  ASSERT_EQ(events.size(), kCapacity);
  EXPECT_EQ(events.front().name, "e" + std::to_string(kExtra));
  EXPECT_EQ(events.back().name,
            "e" + std::to_string(kCapacity + kExtra - 1));
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST(FlightRecorderTest, TailTruncatesToNewest) {
  FlightRecorder rec(8);
  for (int i = 0; i < 6; ++i) {
    rec.Record(FlightEventKind::kNote, "e" + std::to_string(i));
  }
  std::vector<FlightEvent> last2 = rec.Tail(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[0].name, "e4");
  EXPECT_EQ(last2[1].name, "e5");
  // Asking for more than retained returns everything.
  EXPECT_EQ(rec.Tail(100).size(), 6u);
}

TEST(FlightRecorderTest, DisabledRecordsNothing) {
  FlightRecorder rec(8);
  rec.set_enabled(false);
  rec.Record(FlightEventKind::kNote, "ignored");
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
  rec.set_enabled(true);
  rec.Record(FlightEventKind::kNote, "kept");
  EXPECT_EQ(rec.size(), 1u);
}

TEST(FlightRecorderTest, ClearKeepsCounters) {
  FlightRecorder rec(4);
  for (int i = 0; i < 6; ++i) rec.Record(FlightEventKind::kNote, "e");
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 6u);
  EXPECT_EQ(rec.dropped(), 2u);
  // Recording continues with fresh ring state but monotonic seq.
  rec.Record(FlightEventKind::kNote, "after");
  std::vector<FlightEvent> events = rec.Tail();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 6u);
}

TEST(FlightRecorderTest, JsonShape) {
  FlightRecorder rec(4);
  rec.Record(FlightEventKind::kMapBuilt, "core.map.build",
             {{"rows", "100"}, {"quote", "say \"hi\""}});
  std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"capacity\":4"), std::string::npos);
  EXPECT_NE(json.find("\"total_recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"map_built\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"core.map.build\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":\"100\""), std::string::npos);
  // Attribute values are JSON-escaped.
  EXPECT_NE(json.find("say \\\"hi\\\""), std::string::npos);
}

TEST(FlightRecorderTest, KindNamesAreStable) {
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kMapBuilt), "map_built");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kCacheHit), "cache_hit");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kError), "error");
}

// Concurrent writers hammer one recorder while a reader polls Tail(); run
// under TSan in CI. Correctness bar: no race, no lost updates in the
// counters, and every retained event is intact.
TEST(FlightRecorderTest, ConcurrentWritersAreSafe) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;
  FlightRecorder rec(64);

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.Record(FlightEventKind::kNote,
                   "t" + std::to_string(t) + "." + std::to_string(i),
                   {{"i", std::to_string(i)}});
      }
    });
  }
  std::thread reader([&rec] {
    for (int i = 0; i < 200; ++i) {
      std::vector<FlightEvent> events = rec.Tail(16);
      for (const FlightEvent& e : events) {
        ASSERT_FALSE(e.name.empty());
      }
    }
  });
  for (std::thread& w : writers) w.join();
  reader.join();

  EXPECT_EQ(rec.total_recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(rec.size(), 64u);
  EXPECT_EQ(rec.dropped(),
            static_cast<uint64_t>(kThreads) * kPerThread - 64u);
  // Sequence numbers of the survivors are strictly increasing.
  std::vector<FlightEvent> events = rec.Tail();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

}  // namespace
}  // namespace blaeu::obs
