// Unit tests for column statistics and primary-key detection.
#include "monet/column_stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace blaeu::monet {
namespace {

TEST(ColumnStatsTest, NumericMoments) {
  Column col(DataType::kDouble);
  for (double v : {1.0, 2.0, 3.0, 4.0}) col.AppendDouble(v);
  col.AppendNull();
  ColumnStats s = ComputeColumnStats(col);
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.null_count, 1u);
  EXPECT_EQ(s.distinct, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(ColumnStatsTest, TopValuesSortedByFrequency) {
  Column col(DataType::kString);
  for (const char* v : {"a", "b", "a", "c", "a", "b"}) col.AppendString(v);
  ColumnStats s = ComputeColumnStats(col);
  ASSERT_GE(s.top_values.size(), 3u);
  EXPECT_EQ(s.top_values[0].first, "a");
  EXPECT_EQ(s.top_values[0].second, 3u);
  EXPECT_EQ(s.top_values[1].first, "b");
}

TEST(ColumnStatsTest, SelectionRestricted) {
  Column col(DataType::kInt64);
  for (int i = 0; i < 10; ++i) col.AppendInt(i);
  SelectionVector sel({0, 1, 2});
  ColumnStats s = ComputeColumnStats(col, sel);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
}

TEST(ColumnStatsTest, UniqueKeyDetection) {
  Column col(DataType::kInt64);
  for (int i = 0; i < 5; ++i) col.AppendInt(i);
  EXPECT_TRUE(ComputeColumnStats(col).IsUniqueKey());
  col.AppendInt(0);  // duplicate
  EXPECT_FALSE(ComputeColumnStats(col).IsUniqueKey());
}

TablePtr KeyedTable() {
  TableBuilder b(Schema({{"movie_id", DataType::kInt64},
                         {"title", DataType::kString},
                         {"score", DataType::kDouble},
                         {"genre", DataType::kString}}));
  const char* genres[] = {"a", "b", "a", "b"};
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(b.AppendRow({Value::Int(i), Value::Str("t" + std::to_string(i)),
                             Value::Double(i * 0.5), Value::Str(genres[i])})
                    .ok());
  }
  return *b.Finish();
}

TEST(PrimaryKeyTest, DetectsIdNamesAndUniqueColumns) {
  auto table = KeyedTable();
  std::vector<size_t> keys = DetectPrimaryKeyColumns(*table);
  // movie_id by name, title by uniqueness; score is a unique double but
  // doubles are not flagged; genre repeats.
  EXPECT_EQ(keys, (std::vector<size_t>{0, 1}));
}

TEST(LooksCategoricalTest, TypesAndCardinality) {
  Column s(DataType::kString);
  s.AppendString("x");
  EXPECT_TRUE(LooksCategorical(s, ComputeColumnStats(s)));

  Column year(DataType::kInt64);
  for (int i = 0; i < 100; ++i) year.AppendInt(2007 + (i % 7));
  EXPECT_TRUE(LooksCategorical(year, ComputeColumnStats(year)));

  Column cont(DataType::kDouble);
  for (int i = 0; i < 100; ++i) cont.AppendDouble(i * 0.37);
  EXPECT_FALSE(LooksCategorical(cont, ComputeColumnStats(cont)));
}

}  // namespace
}  // namespace blaeu::monet
