#include "common/json_writer.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace blaeu {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows a key; no comma.
  }
  if (needs_comma_) out_.push_back(',');
  needs_comma_ = true;
}

void JsonWriter::Escape(const std::string& s) {
  out_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  stack_.push_back(Scope::kObject);
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!stack_.empty() && stack_.back() == Scope::kObject);
  stack_.pop_back();
  out_.push_back('}');
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  stack_.push_back(Scope::kArray);
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!stack_.empty() && stack_.back() == Scope::kArray);
  stack_.pop_back();
  out_.push_back(']');
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  assert(!stack_.empty() && stack_.back() == Scope::kObject);
  if (needs_comma_) out_.push_back(',');
  Escape(key);
  out_.push_back(':');
  needs_comma_ = true;
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  MaybeComma();
  Escape(value);
  return *this;
}

JsonWriter& JsonWriter::RawValue(const std::string& json) {
  MaybeComma();
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

}  // namespace blaeu
