#include "monet/column_stats.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace blaeu::monet {

namespace {

/// Sorts (value, count) pairs the way every frequency ranking in the system
/// does: count descending, then value ascending.
void RankTops(std::vector<std::pair<std::string, size_t>>* tops) {
  std::sort(tops->begin(), tops->end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
}

/// Accumulates the numeric moments (sum/min/max) shared by both stats
/// implementations.
struct Moments {
  double sum = 0, sum_sq = 0;
  size_t n = 0;
  bool first = true;

  void Add(double x, ColumnStats* s) {
    sum += x;
    sum_sq += x * x;
    ++n;
    if (first) {
      s->min = s->max = x;
      first = false;
    } else {
      s->min = std::min(s->min, x);
      s->max = std::max(s->max, x);
    }
  }

  void Finish(ColumnStats* s) const {
    if (n == 0) return;
    s->mean = sum / static_cast<double>(n);
    double var = sum_sq / static_cast<double>(n) - s->mean * s->mean;
    s->stddev = var > 0 ? std::sqrt(var) : 0.0;
  }
};

/// Stats for a dictionary-encoded string column: one dense counter per
/// dictionary code — no per-cell string materialization or hashing.
ColumnStats StringStatsImpl(const Column& col,
                            const std::vector<uint32_t>& rows,
                            bool want_tops) {
  ColumnStats s;
  s.count = rows.size();
  const std::vector<int32_t>& codes = col.codes();
  const Dictionary& dict = *col.dictionary();
  std::vector<size_t> counts(dict.size(), 0);
  for (uint32_t r : rows) {
    const int32_t c = codes[r];
    if (c == Dictionary::kNullCode) {
      ++s.null_count;
    } else {
      ++counts[static_cast<size_t>(c)];
    }
  }
  std::vector<std::pair<std::string, size_t>> tops;
  for (size_t code = 0; code < counts.size(); ++code) {
    if (counts[code] == 0) continue;
    ++s.distinct;
    if (want_tops) {
      tops.emplace_back(dict.value(static_cast<int32_t>(code)), counts[code]);
    }
  }
  if (want_tops) {
    RankTops(&tops);
    if (tops.size() > 16) tops.resize(16);
    s.top_values = std::move(tops);
  }
  return s;
}

ColumnStats ComputeStatsImpl(const Column& col,
                             const std::vector<uint32_t>& rows) {
  if (col.type() == DataType::kString) {
    return StringStatsImpl(col, rows, /*want_tops=*/true);
  }
  ColumnStats s;
  s.count = rows.size();
  std::unordered_map<std::string, size_t> counter;
  Moments m;
  for (uint32_t r : rows) {
    if (col.IsNull(r)) {
      ++s.null_count;
      continue;
    }
    Value v = col.GetValue(r);
    ++counter[v.ToString()];
    m.Add(col.GetNumeric(r), &s);
  }
  s.distinct = counter.size();
  m.Finish(&s);
  std::vector<std::pair<std::string, size_t>> tops(counter.begin(),
                                                   counter.end());
  RankTops(&tops);
  if (tops.size() > 16) tops.resize(16);
  s.top_values = std::move(tops);
  return s;
}

}  // namespace

ColumnStats ComputeColumnStats(const Column& col) {
  std::vector<uint32_t> all(col.size());
  for (size_t i = 0; i < col.size(); ++i) all[i] = static_cast<uint32_t>(i);
  return ComputeStatsImpl(col, all);
}

ColumnStats ComputeColumnStats(const Column& col,
                               const SelectionVector& sel) {
  return ComputeStatsImpl(col, sel.rows());
}

ColumnStats ComputeColumnStatsBounded(const Column& col,
                                      const SelectionVector& sel,
                                      size_t distinct_cap) {
  const std::vector<uint32_t>& rows = sel.rows();
  if (col.type() == DataType::kString) {
    // The dense code counter is already cheap; distinct comes out exact.
    return StringStatsImpl(col, rows, /*want_tops=*/false);
  }
  ColumnStats s;
  s.count = rows.size();
  Moments m;
  if (col.type() == DataType::kBool) {
    bool saw[2] = {false, false};
    for (uint32_t r : rows) {
      if (col.IsNull(r)) {
        ++s.null_count;
        continue;
      }
      saw[col.bools()[r] ? 1 : 0] = true;
      m.Add(col.bools()[r] ? 1.0 : 0.0, &s);
    }
    s.distinct = (saw[0] ? 1 : 0) + (saw[1] ? 1 : 0);
    m.Finish(&s);
    return s;
  }
  // Numeric: distinct values are keyed by their rendering (the unbounded
  // implementation's semantics — %.6g can merge nearby values, so keying by
  // bit pattern alone would over-count). The two-stage trick keeps rendering
  // off the per-row path: only never-seen bit patterns are rendered, and
  // once the rendering count exceeds the cap all tracking stops.
  bool overflowed = false;
  std::unordered_set<uint64_t> seen_bits;
  std::unordered_set<std::string> renderings;
  const bool is_int = col.type() == DataType::kInt64;
  for (uint32_t r : rows) {
    if (col.IsNull(r)) {
      ++s.null_count;
      continue;
    }
    const double x = col.GetNumeric(r);
    m.Add(x, &s);
    if (overflowed) continue;
    uint64_t bits;
    if (is_int) {
      bits = static_cast<uint64_t>(col.ints()[r]);
    } else {
      double d = col.doubles()[r];
      std::memcpy(&bits, &d, sizeof(bits));
    }
    if (!seen_bits.insert(bits).second) continue;
    if (is_int) {
      // std::to_string is injective on int64: the bit pattern IS the value.
      if (seen_bits.size() > distinct_cap) overflowed = true;
    } else {
      renderings.insert(FormatDouble(col.doubles()[r]));
      if (renderings.size() > distinct_cap) overflowed = true;
    }
    if (overflowed) {
      seen_bits.clear();
      renderings.clear();
    }
  }
  s.distinct = overflowed ? distinct_cap + 1
                          : (is_int ? seen_bits.size() : renderings.size());
  m.Finish(&s);
  return s;
}

namespace {

/// Early-exit uniqueness check, equivalent to
/// ComputeColumnStats(col).IsUniqueKey() but without building frequency
/// tables: bails on the first NULL or the first repeated value.
bool IsUniqueNonNull(const Column& col) {
  if (col.empty() || col.null_count() > 0) return false;
  if (col.type() == DataType::kString) {
    const Dictionary& dict = *col.dictionary();
    // A repeated code is exactly a repeated string; seen[] is dense.
    std::vector<uint8_t> seen(dict.size(), 0);
    for (int32_t c : col.codes()) {
      if (seen[static_cast<size_t>(c)]) return false;
      seen[static_cast<size_t>(c)] = 1;
    }
    return true;
  }
  // kInt64 (the only other type DetectPrimaryKeyColumns probes).
  std::unordered_set<int64_t> seen;
  seen.reserve(col.size() * 2);
  for (int64_t v : col.ints()) {
    if (!seen.insert(v).second) return false;
  }
  return true;
}

}  // namespace

std::vector<size_t> DetectPrimaryKeyColumns(const Table& table) {
  std::vector<size_t> out;
  for (size_t i = 0; i < table.num_columns(); ++i) {
    const Column& col = *table.column(i);
    const std::string lower = ToLower(table.schema().field(i).name);
    bool name_is_key =
        lower == "id" || lower == "key" || lower == "rowid" ||
        (lower.size() > 3 && lower.substr(lower.size() - 3) == "_id");
    if (name_is_key) {
      out.push_back(i);
      continue;
    }
    // Unique string/int columns are identifier-like; unique doubles are
    // usually measurements, so only flag exact types.
    if (col.type() == DataType::kString || col.type() == DataType::kInt64) {
      if (col.size() > 1 && IsUniqueNonNull(col)) out.push_back(i);
    }
  }
  return out;
}

bool LooksCategorical(const Column& col, const ColumnStats& stats,
                      size_t max_distinct) {
  if (col.type() == DataType::kString || col.type() == DataType::kBool) {
    return true;
  }
  // A numeric column behaves like a categorical when its domain is tiny AND
  // values actually repeat (3+ rows per distinct value on average) — a
  // 6-row table with 6 distinct incomes is continuous, a 100-row table with
  // 7 years is categorical.
  size_t non_null = stats.count - stats.null_count;
  return stats.distinct > 0 && stats.distinct <= max_distinct &&
         stats.distinct * 3 <= non_null;
}

}  // namespace blaeu::monet
