// CART decision trees (Breiman et al. 1984, the paper's reference [2]).
// Blaeu's map builder trains a CART model "on the original tuples from the
// database, using the cluster IDs obtained previously as class labels"
// (paper §3); the resulting axis-aligned splits are the interpretable
// region descriptions shown on the map.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "monet/predicate.h"
#include "monet/table.h"

namespace blaeu::tree {

/// Impurity criterion for split selection.
enum class SplitCriterion { kGini, kEntropy };

/// CART training options.
struct CartOptions {
  size_t max_depth = 4;        ///< shallow trees keep maps readable
  size_t min_samples_leaf = 5;
  size_t min_samples_split = 10;
  /// Candidate thresholds per numeric column (quantile-capped); 0 = all
  /// midpoints.
  size_t max_thresholds = 32;
  /// A split must reduce weighted impurity by at least this much.
  double min_impurity_decrease = 1e-7;
  SplitCriterion criterion = SplitCriterion::kGini;
  /// Cost-complexity pruning strength (CART's weakest-link pruning): after
  /// growing, subtrees whose per-leaf training-error reduction is below
  /// this alpha are collapsed. 0 disables pruning.
  double ccp_alpha = 0.0;
  /// Thread budget for the per-column split search at large nodes
  /// (common/parallel.h: 0 = process default, 1 = serial). The trained tree
  /// is identical at any value.
  size_t num_threads = 0;
};

/// \brief One node of a trained tree.
///
/// Internal nodes hold a binary test; rows passing the test go left.
/// Numeric test: value <= threshold. Categorical test: value in
/// `categories`. NULLs follow `null_goes_left`.
struct CartNode {
  // Leaf payload (valid for all nodes; internal nodes use it as fallback).
  int label = 0;                        ///< majority class
  size_t count = 0;                     ///< training rows reaching the node
  std::vector<double> class_fractions;  ///< per-class share at the node

  // Split payload (internal nodes only).
  bool is_leaf = true;
  size_t column = 0;  ///< index into the training table's schema
  bool categorical_split = false;
  double threshold = 0.0;
  std::vector<std::string> categories;  ///< left-branch category set
  bool null_goes_left = false;
  /// Weighted impurity decrease achieved by this node's split (internal
  /// nodes only); feeds feature importances.
  double impurity_decrease = 0.0;
  std::unique_ptr<CartNode> left;
  std::unique_ptr<CartNode> right;
};

/// \brief A trained CART classifier bound to a table schema.
class CartModel {
 public:
  /// Trains on `rows` of `table` with `labels[i]` as the class of
  /// `rows[i]`. Labels must be in [0, num_classes).
  static Result<CartModel> Train(const monet::Table& table,
                                 const std::vector<uint32_t>& rows,
                                 const std::vector<int>& labels,
                                 const CartOptions& options = {});

  /// Predicted class of one row of a table with the training schema.
  int Predict(const monet::Table& table, size_t row) const;

  /// Predicted classes of all `rows`.
  std::vector<int> PredictAll(const monet::Table& table,
                              const std::vector<uint32_t>& rows) const;

  /// Fraction of `rows` whose prediction matches `labels` — the fidelity of
  /// the tree description to the clustering it approximates (experiment C5).
  double Fidelity(const monet::Table& table,
                  const std::vector<uint32_t>& rows,
                  const std::vector<int>& labels) const;

  const CartNode& root() const { return *root_; }
  size_t num_classes() const { return num_classes_; }
  size_t Depth() const;
  size_t NumLeaves() const;

  /// The predicate of the edge from `node` to its left (branch=true) or
  /// right (branch=false) child, as a SQL-able condition.
  monet::Condition BranchCondition(const CartNode& node, bool branch) const;

  /// Impurity-decrease feature importances, one per training column,
  /// normalized to sum 1 (all zeros for a single-leaf tree). The columns
  /// driving the map's splits — what the map "is about".
  std::vector<double> FeatureImportances() const;

  /// Indented text rendering of the tree.
  std::string ToString() const;

 private:
  CartModel(std::unique_ptr<CartNode> root, std::vector<std::string> columns,
            size_t num_classes)
      : root_(std::move(root)),
        column_names_(std::move(columns)),
        num_classes_(num_classes) {}

  std::unique_ptr<CartNode> root_;
  std::vector<std::string> column_names_;
  size_t num_classes_;
};

}  // namespace blaeu::tree
