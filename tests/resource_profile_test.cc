// Unit tests for per-map resource accounting: a cold build reports the
// work it did (sampled rows, feature cells, distance evaluations, tree
// size, scratch peak, stage times), a cached warm map reports cache_hits=1
// and ZERO work — the acceptance contract of obs/resource.h — and profiles
// aggregate into the metrics registry under core.map.*.
#include "obs/resource.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/map_builder.h"
#include "core/navigation.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "workloads/gaussian.h"

namespace blaeu::core {
namespace {

workloads::Dataset MakeMixture(size_t rows = 800) {
  workloads::MixtureSpec spec;
  spec.rows = rows;
  spec.num_clusters = 3;
  spec.dims = 4;
  auto data = workloads::MakeGaussianMixture(spec);
  return data;
}

TEST(ResourceProfileTest, ColdBuildAccountsItsWork) {
  auto data = MakeMixture();
  obs::MetricsRegistry metrics;
  MapOptions opt;
  opt.sample_size = 500;
  opt.fixed_k = 3;
  opt.metrics = &metrics;
  auto map = BuildMap(*data.table, opt);
  ASSERT_TRUE(map.ok());
  const obs::ResourceProfile& res = map->resources;

  EXPECT_EQ(res.rows_scanned, static_cast<int64_t>(map->sample_size));
  EXPECT_EQ(res.rows_scanned, 500);
  EXPECT_GT(res.cells_materialized, 0);
  EXPECT_GT(res.distance_evaluations, 0);
  EXPECT_EQ(res.cart_nodes, static_cast<int64_t>(map->regions.size()));
  EXPECT_GT(res.rows_counted, 0);
  EXPECT_GT(res.peak_scratch_bytes, 0);
  EXPECT_GT(res.total_seconds, 0.0);
  EXPECT_DOUBLE_EQ(res.total_seconds, map->build_seconds);
  // No cache in a bare BuildMap call.
  EXPECT_EQ(res.cache_hits, 0);
  EXPECT_EQ(res.cache_misses, 0);

  // Every pipeline stage shows up in the wall-time split.
  std::vector<std::string> names;
  for (const obs::StageCost& s : res.stages) names.push_back(s.name);
  for (const char* expected :
       {"sample", "preprocess", "cluster", "describe", "assemble", "count"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing stage " << expected;
  }

  // The profile also lands in the injected registry.
  obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters.at("core.map.rows_scanned"), res.rows_scanned);
  EXPECT_EQ(snap.counters.at("core.map.distance_evaluations"),
            res.distance_evaluations);
  EXPECT_EQ(snap.counters.at("core.map.cart_nodes"), res.cart_nodes);
  EXPECT_EQ(snap.histograms.at("core.map.scratch_peak_bytes").count, 1u);
  EXPECT_GT(snap.histograms.at("core.map.stage.preprocess_seconds").count, 0u);
}

TEST(ResourceProfileTest, SmallSampleScansEveryRow) {
  auto data = MakeMixture(300);
  MapOptions opt;
  opt.sample_size = 2000;  // larger than the table: no sampling happens
  opt.fixed_k = 3;
  auto map = BuildMap(*data.table, opt);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->resources.rows_scanned, 300);
}

// The acceptance criterion of the PR: a map served warm from the cache
// reports cache_hits = 1 and ZERO rows scanned, while the cold build of
// the same state reports the sampled row count.
TEST(ResourceProfileTest, WarmCacheHitReportsZeroWork) {
  auto data = MakeMixture();
  SessionOptions opt;
  opt.map.sample_size = 500;
  opt.map.fixed_k = 3;
  opt.cache_enabled = true;
  auto session = Session::Start(data.table, "mixture", opt);
  ASSERT_TRUE(session.ok());
  Session s = std::move(session).ValueOrDie();

  // The initial map was built cold through the cache: a miss, real work.
  // Copied, not referenced: navigating below grows the session's state
  // vector, which would invalidate a reference into it.
  const obs::ResourceProfile cold = s.current().map.resources;
  EXPECT_EQ(cold.cache_misses, 1);
  EXPECT_EQ(cold.cache_hits, 0);
  EXPECT_EQ(cold.rows_scanned, 500);
  EXPECT_GT(cold.distance_evaluations, 0);

  // Navigate away and back: the rebuilt root state is a pure cache hit.
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_FALSE(leaves.empty());
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  ASSERT_TRUE(s.Rollback().ok());
  ASSERT_TRUE(s.SelectTheme(0).ok());  // same state as start -> cache hit

  const obs::ResourceProfile& warm = s.current().map.resources;
  EXPECT_EQ(warm.cache_hits, 1);
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(warm.rows_scanned, 0);
  EXPECT_EQ(warm.cells_materialized, 0);
  EXPECT_EQ(warm.distance_evaluations, 0);
  EXPECT_EQ(warm.rows_counted, 0);
  EXPECT_EQ(warm.peak_scratch_bytes, 0);
  EXPECT_TRUE(warm.stages.empty());
  // The map itself is still the full, bit-identical artifact.
  EXPECT_EQ(s.current().map.regions.size(),
            static_cast<size_t>(cold.cart_nodes));
  EXPECT_EQ(s.stats().cache_hits, 1u);
}

TEST(ResourceProfileTest, CacheDisabledReportsNoCacheTraffic) {
  auto data = MakeMixture();
  SessionOptions opt;
  opt.map.sample_size = 500;
  opt.map.fixed_k = 3;
  opt.cache_enabled = false;
  auto session = Session::Start(data.table, "mixture", opt);
  ASSERT_TRUE(session.ok());
  Session s = std::move(session).ValueOrDie();
  EXPECT_EQ(s.current().map.resources.cache_hits, 0);
  EXPECT_EQ(s.current().map.resources.cache_misses, 0);
  EXPECT_GT(s.current().map.resources.rows_scanned, 0);
}

TEST(ResourceProfileTest, ToJsonCarriesCountsAndStages) {
  obs::ResourceProfile res;
  res.rows_scanned = 500;
  res.distance_evaluations = 1234;
  res.stages.push_back({"sample", 0.001});
  res.stages.push_back({"cluster", 0.002});
  std::string json = res.ToJson();
  EXPECT_NE(json.find("\"rows_scanned\":500"), std::string::npos);
  EXPECT_NE(json.find("\"distance_evaluations\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"sample\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster\""), std::string::npos);
}

TEST(ScratchCounterTest, TracksPeakNotCurrent) {
  obs::ScratchCounter counter;
  counter.Charge(100);
  {
    obs::ScratchCharge charge(&counter, 400);
    EXPECT_EQ(counter.current(), 500);
    EXPECT_EQ(counter.peak(), 500);
  }
  EXPECT_EQ(counter.current(), 100);
  EXPECT_EQ(counter.peak(), 500);
  counter.Release(100);
  EXPECT_EQ(counter.current(), 0);
  EXPECT_EQ(counter.peak(), 500);
  // Null counter: the RAII charge is a no-op, not a crash.
  obs::ScratchCharge noop(nullptr, 1000);
}

// Flight recorder integration: a session's builds and navigation leave a
// readable trail in an injected recorder.
TEST(ResourceProfileTest, SessionLeavesFlightTrail) {
  auto data = MakeMixture();
  obs::FlightRecorder flight(128);
  SessionOptions opt;
  opt.map.sample_size = 500;
  opt.map.fixed_k = 3;
  opt.map.flight = &flight;
  auto session = Session::Start(data.table, "mixture", opt);
  ASSERT_TRUE(session.ok());
  Session s = std::move(session).ValueOrDie();
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_FALSE(leaves.empty());
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  ASSERT_TRUE(s.Rollback().ok());

  bool saw_build = false, saw_zoom = false, saw_rollback = false;
  for (const obs::FlightEvent& e : flight.Tail()) {
    if (e.kind == obs::FlightEventKind::kMapBuilt) saw_build = true;
    if (e.name == "core.session.zoom") saw_zoom = true;
    if (e.name == "core.session.rollback") saw_rollback = true;
  }
  EXPECT_TRUE(saw_build);
  EXPECT_TRUE(saw_zoom);
  EXPECT_TRUE(saw_rollback);
}

}  // namespace
}  // namespace blaeu::core
