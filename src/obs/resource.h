// Per-map resource accounting: what one BuildMap actually cost, beyond wall
// clock — rows scanned, feature cells materialized, distance evaluations,
// description-tree size, cache traffic and peak scratch memory, plus the
// per-stage wall-time split.
//
// The profile travels with the map (DataMap::resources), so a serving layer
// can answer "what did THIS interaction cost" per response, and is
// aggregated into the MetricsRegistry under the core.map.* convention so
// dashboards see totals. A map served from the cache carries a profile of
// the work done for that interaction: cache_hits = 1 and everything else 0
// — the cold build's costs are not re-reported.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace blaeu::obs {

/// \brief Peak-tracking byte counter for large scratch allocations (the
/// "instrumented arena": code charges big transient buffers as they come
/// and go; the high-water mark is the build's real memory bill beyond the
/// map itself). Thread-safe; stages charge from pool threads.
class ScratchCounter {
 public:
  void Charge(size_t bytes) {
    int64_t now = current_.fetch_add(static_cast<int64_t>(bytes),
                                     std::memory_order_relaxed) +
                  static_cast<int64_t>(bytes);
    int64_t seen = peak_.load(std::memory_order_relaxed);
    while (now > seen &&
           !peak_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
  }
  void Release(size_t bytes) {
    current_.fetch_sub(static_cast<int64_t>(bytes), std::memory_order_relaxed);
  }
  int64_t current() const { return current_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

/// \brief RAII charge against a ScratchCounter (null counter = no-op).
class ScratchCharge {
 public:
  ScratchCharge(ScratchCounter* counter, size_t bytes)
      : counter_(counter), bytes_(bytes) {
    if (counter_ != nullptr) counter_->Charge(bytes_);
  }
  ~ScratchCharge() {
    if (counter_ != nullptr) counter_->Release(bytes_);
  }
  ScratchCharge(const ScratchCharge&) = delete;
  ScratchCharge& operator=(const ScratchCharge&) = delete;

 private:
  ScratchCounter* counter_;
  size_t bytes_;
};

/// \brief Wall time of one pipeline stage.
struct StageCost {
  std::string name;      ///< "sample", "preprocess", "cluster", ...
  double seconds = 0.0;
};

/// \brief What one map build cost. All counts are zero for a map served
/// from the cache (except cache_hits).
struct ResourceProfile {
  /// Rows read out of the table to build the map: the sampled rows fed
  /// through preprocessing and clustering.
  int64_t rows_scanned = 0;
  /// Rows of the FULL selection evaluated while counting region sizes
  /// (one pass per tree level).
  int64_t rows_counted = 0;
  /// Cells of the preprocessed feature matrix (rows x features).
  int64_t cells_materialized = 0;
  /// Metric-space distance evaluations (distance matrix, CLARA assignment,
  /// Monte-Carlo silhouette). Zero for algorithms that never call the
  /// pairwise metric (k-means works on the feature matrix directly).
  int64_t distance_evaluations = 0;
  /// Nodes of the trained CART description tree (= map regions).
  int64_t cart_nodes = 0;
  /// Whole-map cache traffic for the interaction that produced this map.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// High-water mark of instrumented scratch allocations (feature matrix,
  /// distance matrix, per-region row sets).
  int64_t peak_scratch_bytes = 0;
  /// End-to-end build wall time; stages[] splits it.
  double total_seconds = 0.0;
  std::vector<StageCost> stages;

  /// {"rows_scanned":...,...,"stages":{"sample":...,...}}
  std::string ToJson() const;

  /// Aggregates this profile into `registry`: counters
  /// core.map.{rows_scanned,rows_counted,cells_materialized,
  /// distance_evaluations,cart_nodes}, histogram
  /// core.map.scratch_peak_bytes, and one histogram
  /// core.map.stage.<name>_seconds per stage.
  void ReportTo(MetricsRegistry* registry) const;
};

}  // namespace blaeu::obs
