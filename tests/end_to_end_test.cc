// Integration tests: whole-pipeline runs reproducing the paper's
// navigation scenarios (Figure 1 on the OECD data, the Hollywood tour).
#include <gtest/gtest.h>

#include "core/explorer.h"
#include "core/render.h"
#include "monet/csv.h"
#include "stats/metrics.h"
#include "workloads/hollywood.h"
#include "workloads/oecd.h"

#include <sstream>

namespace blaeu::core {
namespace {

TEST(EndToEndTest, Figure1ScenarioOnOecd) {
  // Scaled-down OECD keeps the test under a few seconds while preserving
  // the Figure 1 structure.
  workloads::OecdSpec spec;
  spec.rows = 1500;
  spec.indicator_columns = 30;
  auto data = workloads::MakeOecd(spec);

  SessionOptions opt;
  opt.themes.dependency.sample_rows = 700;
  opt.themes.max_themes = 10;
  opt.map.sample_size = 700;
  auto session_or = Session::Start(data.table, "oecd", opt);
  ASSERT_TRUE(session_or.ok()) << session_or.status().ToString();
  Session session = std::move(session_or).ValueOrDie();

  // Figure 1a: themes exist; find the labor theme (contains the long-hours
  // column).
  int labor_theme = -1;
  for (const Theme& t : session.themes().themes) {
    for (const std::string& name : t.names) {
      if (name == "pct_employees_working_long_hours") labor_theme = t.id;
    }
  }
  ASSERT_GE(labor_theme, 0) << "labor theme not detected";

  // Figure 1b: map over the labor theme splits on interpretable columns.
  ASSERT_TRUE(session.SelectTheme(static_cast<size_t>(labor_theme)).ok());
  const DataMap& map = session.current().map;
  EXPECT_GE(map.LeafIds().size(), 2u);
  EXPECT_GT(map.tree_fidelity, 0.75);

  // Figure 1c: zoom into the largest leaf and highlight countries.
  int biggest = -1;
  size_t best_count = 0;
  for (int leaf : map.LeafIds()) {
    if (map.region(leaf).tuple_count > best_count) {
      best_count = map.region(leaf).tuple_count;
      biggest = leaf;
    }
  }
  ASSERT_GE(biggest, 0);
  ASSERT_TRUE(session.Zoom(biggest).ok());
  auto highlight = *session.Highlight("country");
  EXPECT_FALSE(highlight.regions.empty());
  for (const RegionHighlight& r : highlight.regions) {
    EXPECT_FALSE(r.examples.empty());
  }

  // Figure 1d: project onto another theme (any other), selection kept.
  size_t other = labor_theme == 0 ? 1 : 0;
  size_t selection = session.current().selection.size();
  ASSERT_TRUE(session.Project(other).ok());
  EXPECT_EQ(session.current().selection.size(), selection);

  // Rollback all the way: reversibility.
  while (session.history_size() > 1) {
    ASSERT_TRUE(session.Rollback().ok());
  }
  EXPECT_EQ(session.current().selection.size(), 1500u);
}

TEST(EndToEndTest, HighIncomeRegionContainsTheRightCountries) {
  // The demo's payoff: Switzerland/Norway/Canada surface in the
  // low-hours / high-income region.
  workloads::OecdSpec spec;
  spec.rows = 2000;
  spec.indicator_columns = 12;
  auto data = workloads::MakeOecd(spec);

  // Build the map directly on the Figure 1 columns.
  MapOptions opt;
  opt.sample_size = 1000;
  opt.fixed_k = 3;
  auto map = *BuildMap(
      *data.table, monet::SelectionVector::All(2000),
      {"pct_employees_working_long_hours", "average_income_kusd",
       "time_dedicated_to_leisure_hours"},
      opt);
  // Find the leaf with the highest mean income and check its countries.
  auto income = *data.table->ColumnByName("average_income_kusd");
  auto country = *data.table->ColumnByName("country");
  double best_mean = -1;
  monet::SelectionVector best_rows;
  for (int leaf : map.LeafIds()) {
    auto rows = *map.region(leaf).predicate.Evaluate(*data.table);
    if (rows.size() < 20) continue;
    double sum = 0;
    size_t n = 0;
    for (uint32_t r : rows.rows()) {
      if (!income->IsNull(r)) {
        sum += income->doubles()[r];
        ++n;
      }
    }
    if (n > 0 && sum / n > best_mean) {
      best_mean = sum / n;
      best_rows = rows;
    }
  }
  ASSERT_GT(best_rows.size(), 0u);
  size_t rich_profile = 0;
  for (uint32_t r : best_rows.rows()) {
    const std::string& c = country->StringAt(r);
    if (c == "Switzerland" || c == "Norway" || c == "Canada" ||
        c == "Netherlands" || c == "Denmark" || c == "Sweden" ||
        c == "Iceland" || c == "Luxembourg") {
      ++rich_profile;
    }
  }
  // The work-life-balance countries dominate the high-income region.
  EXPECT_GT(static_cast<double>(rich_profile) / best_rows.size(), 0.5);
}

TEST(EndToEndTest, HollywoodViaCsvRoundTrip) {
  // Full Figure 4 flow: CSV file -> store -> themes -> map -> query.
  auto data = workloads::MakeHollywood();
  std::ostringstream csv;
  ASSERT_TRUE(monet::WriteCsv(*data.table, csv).ok());
  std::istringstream in(csv.str());
  auto reread = *monet::ReadCsv(in);
  ASSERT_EQ(reread->num_rows(), 900u);
  ASSERT_EQ(reread->num_columns(), 12u);

  Explorer explorer;
  ASSERT_TRUE(explorer.LoadTable(reread, "movies").ok());
  auto* session = *explorer.OpenSession("movies");
  EXPECT_GE(session->themes().size(), 2u);

  // The two gross columns are mechanically coupled (domestic is a share of
  // worldwide) and must land in the same theme.
  int domestic_theme = -1, gross_theme = -1;
  for (const Theme& t : session->themes().themes) {
    for (const std::string& name : t.names) {
      if (name == "domestic_gross_musd") domestic_theme = t.id;
      if (name == "worldwide_gross_musd") gross_theme = t.id;
    }
  }
  ASSERT_GE(domestic_theme, 0);
  EXPECT_EQ(domestic_theme, gross_theme);

  // Zoom somewhere and emit the implicit SQL.
  std::vector<int> leaves = session->current().map.LeafIds();
  ASSERT_FALSE(leaves.empty());
  ASSERT_TRUE(session->Zoom(leaves[0]).ok());
  std::string sql = session->CurrentQuery().ToSql();
  EXPECT_NE(sql.find("SELECT"), std::string::npos);
  EXPECT_NE(sql.find("\"movies\""), std::string::npos);
  EXPECT_NE(sql.find("WHERE"), std::string::npos);
}

TEST(EndToEndTest, MapsQuantizeTheQuerySpace) {
  // §2: every leaf is a discrete refinements alternative; the leaf queries
  // partition the current selection.
  auto data = workloads::MakeHollywood();
  MapOptions opt;
  opt.sample_size = 600;
  auto map = *BuildMap(*data.table, opt);
  std::vector<size_t> covered(900, 0);
  for (int leaf : map.LeafIds()) {
    auto rows = *map.region(leaf).predicate.Evaluate(*data.table);
    for (uint32_t r : rows.rows()) ++covered[r];
  }
  // Rows with NULLs in split columns can fail every SQL predicate (tree
  // routing vs SQL semantics); everything else is covered exactly once.
  size_t exactly_once = 0, more_than_once = 0;
  for (size_t r = 0; r < 900; ++r) {
    if (covered[r] == 1) ++exactly_once;
    if (covered[r] > 1) ++more_than_once;
  }
  EXPECT_EQ(more_than_once, 0u);
  EXPECT_GT(static_cast<double>(exactly_once) / 900.0, 0.9);
}

}  // namespace
}  // namespace blaeu::core
