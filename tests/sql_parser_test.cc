// Unit tests for the Select-Project SQL parser, including round-trips of
// everything the session emits.
#include "monet/sql_parser.h"

#include "monet/catalog.h"

#include <gtest/gtest.h>

namespace blaeu::monet {
namespace {

TEST(SqlParserTest, SelectStar) {
  auto q = *ParseSql("SELECT * FROM \"movies\";");
  EXPECT_EQ(q.table_name, "movies");
  EXPECT_TRUE(q.columns.empty());
  EXPECT_TRUE(q.where.empty());
}

TEST(SqlParserTest, ColumnsAndWhere) {
  auto q = *ParseSql(
      "SELECT \"budget\", \"gross\" FROM \"movies\" WHERE \"budget\" >= 100 "
      "AND \"genre\" IN ('Drama', 'Comedy');");
  EXPECT_EQ(q.columns, (std::vector<std::string>{"budget", "gross"}));
  ASSERT_EQ(q.where.size(), 2u);
  EXPECT_EQ(q.where.conditions()[0].op, CompareOp::kGe);
  EXPECT_EQ(q.where.conditions()[1].kind, Condition::Kind::kInSet);
  EXPECT_EQ(q.where.conditions()[1].set,
            (std::vector<std::string>{"Drama", "Comedy"}));
}

TEST(SqlParserTest, AllComparisonOperators) {
  auto q = *ParseSql(
      "SELECT * FROM \"t\" WHERE \"a\" < 1 AND \"b\" <= 2 AND \"c\" > 3 AND "
      "\"d\" >= 4 AND \"e\" = 5 AND \"f\" <> 6");
  ASSERT_EQ(q.where.size(), 6u);
  EXPECT_EQ(q.where.conditions()[0].op, CompareOp::kLt);
  EXPECT_EQ(q.where.conditions()[1].op, CompareOp::kLe);
  EXPECT_EQ(q.where.conditions()[2].op, CompareOp::kGt);
  EXPECT_EQ(q.where.conditions()[3].op, CompareOp::kGe);
  EXPECT_EQ(q.where.conditions()[4].op, CompareOp::kEq);
  EXPECT_EQ(q.where.conditions()[5].op, CompareOp::kNe);
}

TEST(SqlParserTest, NullTestsAndNotIn) {
  auto q = *ParseSql(
      "SELECT * FROM \"t\" WHERE \"x\" IS NULL AND \"y\" IS NOT NULL AND "
      "\"g\" NOT IN ('a')");
  ASSERT_EQ(q.where.size(), 3u);
  EXPECT_EQ(q.where.conditions()[0].kind, Condition::Kind::kIsNull);
  EXPECT_EQ(q.where.conditions()[1].kind, Condition::Kind::kNotNull);
  EXPECT_TRUE(q.where.conditions()[2].negated);
}

TEST(SqlParserTest, TrueIsEmptyConjunction) {
  auto q = *ParseSql("SELECT * FROM \"t\" WHERE TRUE");
  EXPECT_TRUE(q.where.empty());
}

TEST(SqlParserTest, StringComparisonAndEscapes) {
  auto q = *ParseSql(
      "SELECT * FROM \"t\" WHERE \"name\" = 'O''Brien'");
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where.conditions()[0].value.AsString(), "O'Brien");
}

TEST(SqlParserTest, BareIdentifiersAndCaseInsensitiveKeywords) {
  auto q = *ParseSql("select budget from movies where budget > 10");
  EXPECT_EQ(q.table_name, "movies");
  EXPECT_EQ(q.columns, (std::vector<std::string>{"budget"}));
  EXPECT_EQ(q.where.size(), 1u);
}

TEST(SqlParserTest, NegativeAndScientificNumbers) {
  auto q = *ParseSql(
      "SELECT * FROM \"t\" WHERE \"x\" > -2.5 AND \"y\" < 1e3");
  EXPECT_DOUBLE_EQ(q.where.conditions()[0].value.AsDouble(), -2.5);
  EXPECT_DOUBLE_EQ(q.where.conditions()[1].value.AsDouble(), 1000.0);
}

TEST(SqlParserTest, QuotedIdentifierWithSpaces) {
  auto q = *ParseSql(
      "SELECT \"% employees working long hours\" FROM \"oecd\" WHERE "
      "\"% employees working long hours\" >= 20");
  EXPECT_EQ(q.columns[0], "% employees working long hours");
}

TEST(SqlParserTest, ErrorsAreInvalidArgument) {
  EXPECT_EQ(ParseSql("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseSql("SELECT").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseSql("SELECT * FROM").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseSql("SELECT * FROM \"t\" WHERE").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseSql("SELECT * FROM \"t\" WHERE \"x\" ==").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseSql("SELECT * FROM \"t\" WHERE \"g\" IN (1)")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseSql("SELECT * FROM \"t\" extra").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseSql("SELECT * FROM \"unterminated").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SqlParserTest, RoundTripPreservesSemantics) {
  const char* queries[] = {
      "SELECT * FROM \"t\";",
      "SELECT \"a\", \"b\" FROM \"t\" WHERE \"a\" <= 3.25;",
      "SELECT \"a\" FROM \"t\" WHERE \"g\" IN ('x', 'y') AND \"a\" > 1;",
      "SELECT \"a\" FROM \"t\" WHERE \"g\" NOT IN ('z') AND \"b\" IS NULL;",
  };
  for (const char* sql : queries) {
    auto q1 = *ParseSql(sql);
    auto q2 = *ParseSql(q1.ToSql());  // parse the re-rendered form
    EXPECT_EQ(q1.ToSql(), q2.ToSql()) << sql;
  }
}

TEST(ParseWhereTest, BareClause) {
  auto conj = *ParseWhere("\"x\" >= 22 AND \"g\" IN ('a')");
  EXPECT_EQ(conj.size(), 2u);
  EXPECT_EQ(ParseWhere("TRUE")->size(), 0u);
  EXPECT_FALSE(ParseWhere("\"x\" >= ").ok());
}

TEST(SqlParserTest, ParsedQueryExecutes) {
  TableBuilder b(Schema({{"x", DataType::kDouble},
                         {"g", DataType::kString}}));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(b.AppendRow({Value::Double(i),
                             Value::Str(i % 2 ? "odd" : "even")})
                    .ok());
  }
  Catalog cat;
  ASSERT_TRUE(cat.Register("t", *b.Finish()).ok());
  auto q = *ParseSql(
      "SELECT \"x\" FROM \"t\" WHERE \"x\" >= 4 AND \"g\" IN ('even')");
  auto result = *q.Execute(cat);
  EXPECT_EQ(result->num_rows(), 3u);  // 4, 6, 8
  EXPECT_EQ(result->num_columns(), 1u);
}

}  // namespace
}  // namespace blaeu::monet
