// Row sampling: the mechanism behind Blaeu's interaction-time latency.
// "After each zoom, Blaeu only takes a few thousand samples from the
// database" (paper §3); the multi-scale sampler maintains a ladder of nested
// samples so successive zooms re-sample cheaply.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "monet/selection.h"
#include "monet/table.h"

namespace blaeu::monet {

/// `k` distinct row ids drawn uniformly from [0, n), sorted ascending.
/// Returns all of [0, n) when k >= n.
SelectionVector UniformSampleIndices(size_t n, size_t k, Rng* rng);

/// `k` distinct rows drawn uniformly from `base`, sorted. Returns `base`
/// itself when k >= base.size().
SelectionVector SampleFromSelection(const SelectionVector& base, size_t k,
                                    Rng* rng);

/// One-pass reservoir sample of k distinct ids from [0, n) (Vitter's R),
/// sorted. Behaviourally identical to UniformSampleIndices but exercises the
/// streaming code path used for external tables.
SelectionVector ReservoirSampleIndices(size_t n, size_t k, Rng* rng);

/// Bernoulli sample: each row kept independently with probability p.
SelectionVector BernoulliSampleIndices(size_t n, double p, Rng* rng);

/// Stratified sample: draws ~k rows total, allocating per-stratum quotas
/// proportionally to stratum sizes (at least 1 per non-empty stratum when
/// k >= #strata). `labels[i]` is the stratum of row i.
SelectionVector StratifiedSampleIndices(const std::vector<int>& labels,
                                        size_t k, Rng* rng);

/// Materializes a uniform sample of `table` with k rows.
TablePtr SampleTable(const Table& table, size_t k, Rng* rng);

/// \brief Nested multi-scale samples over one table.
///
/// Maintains a single random permutation of the base table's rows; the
/// sample at scale s is the first `base_size * growth^s` elements, so
/// smaller scales are strict subsets of larger ones (nested). For a given
/// selection (after zooms), SampleAtMost() intersects lazily: it walks the
/// permutation and keeps the first k rows that fall inside the selection,
/// which costs O(prefix) instead of O(selection).
class MultiScaleSampler {
 public:
  /// \param n           number of rows of the underlying table
  /// \param base_size   size of the smallest scale (paper: "a few thousand")
  /// \param growth      scale multiplier between levels
  MultiScaleSampler(size_t n, size_t base_size, double growth, Rng* rng);

  /// Number of scales (>= 1; the last scale is the full permutation).
  size_t num_scales() const { return scale_sizes_.size(); }
  /// Sample size at scale `s`.
  size_t scale_size(size_t s) const { return scale_sizes_[s]; }

  /// The sorted sample at scale `s` over the full table.
  SelectionVector SampleAtScale(size_t s) const;

  /// Up to `k` rows of `selection`, drawn uniformly, using the shared
  /// permutation; nested across calls with growing k.
  SelectionVector SampleAtMost(const SelectionVector& selection,
                               size_t k) const;

 private:
  std::vector<uint32_t> permutation_;
  std::vector<size_t> scale_sizes_;
};

}  // namespace blaeu::monet
