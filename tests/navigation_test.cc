// Unit tests for the navigation session: zoom / project / highlight /
// rollback and the implicit Select-Project queries.
#include "core/navigation.h"

#include <gtest/gtest.h>

#include "workloads/gaussian.h"
#include "workloads/hollywood.h"

namespace blaeu::core {
namespace {

SessionOptions FastOptions() {
  SessionOptions opt;
  opt.map.sample_size = 500;
  opt.map.k_max = 4;
  return opt;
}

Session StartMixtureSession(size_t rows = 600) {
  workloads::MixtureSpec spec;
  spec.rows = rows;
  spec.num_clusters = 3;
  spec.dims = 4;
  spec.with_categorical = true;
  auto data = workloads::MakeGaussianMixture(spec);
  auto session = Session::Start(data.table, "mixture", FastOptions());
  EXPECT_TRUE(session.ok());
  return std::move(session).ValueOrDie();
}

TEST(SessionTest, StartsWithThemesAndInitialMap) {
  Session s = StartMixtureSession();
  EXPECT_GE(s.themes().size(), 1u);
  EXPECT_EQ(s.history_size(), 1u);
  EXPECT_EQ(s.current().action, "start");
  EXPECT_EQ(s.current().selection.size(), 600u);
  EXPECT_FALSE(s.current().map.regions.empty());
}

TEST(SessionTest, ZoomNarrowsSelection) {
  Session s = StartMixtureSession();
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_FALSE(leaves.empty());
  int target = leaves[0];
  size_t expected = s.current().map.region(target).tuple_count;
  ASSERT_TRUE(s.Zoom(target).ok());
  EXPECT_EQ(s.history_size(), 2u);
  EXPECT_EQ(s.current().selection.size(), expected);
  EXPECT_LT(s.current().selection.size(), 600u);
}

TEST(SessionTest, ZoomOnRootRejected) {
  Session s = StartMixtureSession();
  EXPECT_FALSE(s.Zoom(0).ok());
  EXPECT_EQ(s.history_size(), 1u);  // state unchanged
}

TEST(SessionTest, ZoomOutOfRangeRejected) {
  Session s = StartMixtureSession();
  EXPECT_EQ(s.Zoom(9999).code(), StatusCode::kIndexError);
  EXPECT_EQ(s.Zoom(-5).code(), StatusCode::kIndexError);
}

TEST(SessionTest, RollbackRestoresPreviousState) {
  Session s = StartMixtureSession();
  size_t before = s.current().selection.size();
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  ASSERT_TRUE(s.Rollback().ok());
  EXPECT_EQ(s.history_size(), 1u);
  EXPECT_EQ(s.current().selection.size(), before);
  // Rolling back past the initial state fails.
  EXPECT_FALSE(s.Rollback().ok());
}

TEST(SessionTest, RollbackToIndex) {
  Session s = StartMixtureSession();
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  std::vector<int> leaves2 = s.current().map.LeafIds();
  if (!leaves2.empty() &&
      s.current().map.region(leaves2[0]).tuple_count > 0) {
    s.Zoom(leaves2[0]).ok();  // best-effort deeper zoom
  }
  ASSERT_TRUE(s.RollbackTo(0).ok());
  EXPECT_EQ(s.history_size(), 1u);
  EXPECT_FALSE(s.RollbackTo(5).ok());
}

TEST(SessionTest, ProjectSwitchesColumnsKeepsSelection) {
  Session s = StartMixtureSession();
  if (s.themes().size() < 2) GTEST_SKIP() << "single-theme table";
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  size_t selection = s.current().selection.size();
  size_t other = s.current().theme_id == 0 ? 1 : 0;
  ASSERT_TRUE(s.Project(other).ok());
  EXPECT_EQ(s.current().selection.size(), selection);
  EXPECT_EQ(s.current().theme_id, static_cast<int>(other));
}

TEST(SessionTest, HighlightSummarizesEachLeaf) {
  Session s = StartMixtureSession();
  auto highlight = *s.Highlight("group");
  EXPECT_EQ(highlight.column, "group");
  EXPECT_EQ(highlight.regions.size(), s.current().map.LeafIds().size());
  size_t total = 0;
  for (const RegionHighlight& r : highlight.regions) {
    total += r.tuple_count;
    EXPECT_FALSE(r.examples.empty());
  }
  EXPECT_EQ(total, s.current().selection.size());
}

TEST(SessionTest, HighlightUnknownColumnFails) {
  Session s = StartMixtureSession();
  EXPECT_EQ(s.Highlight("ghost").status().code(), StatusCode::kKeyError);
}

TEST(SessionTest, CurrentQueryReflectsNavigation) {
  Session s = StartMixtureSession();
  monet::SelectProjectQuery q0 = s.CurrentQuery();
  EXPECT_EQ(q0.table_name, "mixture");
  EXPECT_TRUE(q0.where.empty());
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  monet::SelectProjectQuery q1 = s.CurrentQuery();
  EXPECT_FALSE(q1.where.empty());
  EXPECT_NE(q1.ToSql().find("WHERE"), std::string::npos);
}

TEST(SessionTest, QueryRoundTripsThroughCatalog) {
  // C6: executing the implicit query reproduces the session's selection.
  Session s = StartMixtureSession();
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  monet::Catalog catalog;
  workloads::MixtureSpec spec;
  spec.rows = 600;
  spec.num_clusters = 3;
  spec.dims = 4;
  spec.with_categorical = true;
  auto data = workloads::MakeGaussianMixture(spec);  // same seed: same table
  ASSERT_TRUE(catalog.Register("mixture", data.table).ok());
  auto result = *s.CurrentQuery().Execute(catalog);
  EXPECT_EQ(result->num_rows(), s.current().selection.size());
  EXPECT_EQ(result->num_columns(), s.current().columns.size());
}

TEST(SessionTest, RegionQueryAddsRegionPredicate) {
  Session s = StartMixtureSession();
  std::vector<int> leaves = s.current().map.LeafIds();
  auto q = *s.RegionQuery(leaves[0]);
  EXPECT_FALSE(q.where.empty());
  EXPECT_FALSE(s.RegionQuery(9999).ok());
}

TEST(SessionTest, InspectReturnsRegionTuples) {
  Session s = StartMixtureSession();
  std::vector<int> leaves = s.current().map.LeafIds();
  auto rows = *s.Inspect(leaves[0], 5);
  EXPECT_LE(rows->num_rows(), 5u);
  EXPECT_GT(rows->num_rows(), 0u);
  EXPECT_EQ(rows->num_columns(), s.table().num_columns());
}

TEST(SessionTest, SelectThemePushesState) {
  Session s = StartMixtureSession();
  size_t history = s.history_size();
  ASSERT_TRUE(s.SelectTheme(0).ok());
  EXPECT_EQ(s.history_size(), history + 1);
  EXPECT_FALSE(s.SelectTheme(99).ok());
}

TEST(SessionTest, EmptyTableRejected) {
  monet::TableBuilder b(monet::Schema({{"x", monet::DataType::kDouble}}));
  auto table = *b.Finish();
  EXPECT_FALSE(Session::Start(table, "empty", FastOptions()).ok());
}

TEST(SessionTest, ZoomChainsAccumulateWhere) {
  Session s = StartMixtureSession(1200);
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  size_t where1 = s.current().where.size();
  EXPECT_GT(where1, 0u);
  std::vector<int> leaves2 = s.current().map.LeafIds();
  for (int leaf : leaves2) {
    if (s.current().map.region(leaf).tuple_count >= 10) {
      ASSERT_TRUE(s.Zoom(leaf).ok());
      EXPECT_GT(s.current().where.size(), where1);
      break;
    }
  }
}

TEST(SessionTest, HollywoodSessionEndToEnd) {
  auto data = workloads::MakeHollywood();
  auto session = Session::Start(data.table, "hollywood", FastOptions());
  ASSERT_TRUE(session.ok());
  Session s = std::move(session).ValueOrDie();
  EXPECT_GE(s.themes().size(), 2u);
  auto highlight = s.Highlight("genre");
  ASSERT_TRUE(highlight.ok());
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_FALSE(leaves.empty());
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  ASSERT_TRUE(s.Rollback().ok());
}

}  // namespace
}  // namespace blaeu::core
