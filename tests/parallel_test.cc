// Unit tests for the parallel execution layer (common/parallel.h): pool
// lifecycle, chunking/grain edge cases, exception propagation, nested-call
// safety, and the bit-identical-at-any-thread-count contract.
#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace blaeu {
namespace {

TEST(NumThreadsFromEnvTest, ParsesPositiveIntegers) {
  EXPECT_EQ(NumThreadsFromEnv("6", 4), 6u);
  EXPECT_EQ(NumThreadsFromEnv("1", 4), 1u);
}

TEST(NumThreadsFromEnvTest, FallsBackOnInvalidInput) {
  EXPECT_EQ(NumThreadsFromEnv(nullptr, 4), 4u);
  EXPECT_EQ(NumThreadsFromEnv("", 4), 4u);
  EXPECT_EQ(NumThreadsFromEnv("0", 4), 4u);
  EXPECT_EQ(NumThreadsFromEnv("-2", 4), 4u);
  EXPECT_EQ(NumThreadsFromEnv("many", 4), 4u);
  EXPECT_EQ(NumThreadsFromEnv("3x", 4), 4u);
}

TEST(DefaultNumThreadsTest, AtLeastOne) {
  EXPECT_GE(DefaultNumThreads(), 1u);
  EXPECT_EQ(EffectiveNumThreads(0), DefaultNumThreads());
  EXPECT_EQ(EffectiveNumThreads(3), 3u);
}

TEST(ThreadPoolTest, StartsLazily) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  EXPECT_FALSE(pool.started());  // construction spawns nothing

  std::promise<void> ran;
  pool.Submit([&] { ran.set_value(); });
  EXPECT_TRUE(pool.started());
  ASSERT_EQ(ran.get_future().wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
}  // destructor joins the workers: the test terminating cleanly is the
   // lifecycle assertion

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  constexpr int kTasks = 100;
  std::atomic<int> done{0};
  std::promise<void> all_done;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (done.fetch_add(1) + 1 == kTasks) all_done.set_value();
    });
  }
  ASSERT_EQ(all_done.get_future().wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr size_t kN = 1000;
  std::vector<int> hits(kN, 0);
  ParallelFor(
      0, kN, 7,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) ++hits[i];
      },
      8);
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  bool called = false;
  ParallelFor(5, 5, 4, [&](size_t, size_t) { called = true; }, 8);
  ParallelFor(7, 3, 4, [&](size_t, size_t) { called = true; }, 8);
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, GrainZeroBehavesLikeGrainOne) {
  std::vector<std::pair<size_t, size_t>> chunks;
  ParallelFor(
      0, 4, 0,
      [&](size_t lo, size_t hi) { chunks.emplace_back(lo, hi); },
      1);
  ASSERT_EQ(chunks.size(), 4u);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(chunks[c], std::make_pair(c, c + 1));
  }
}

TEST(ParallelForTest, GrainLargerThanRangeIsOneChunk) {
  std::vector<std::pair<size_t, size_t>> chunks;
  ParallelFor(
      3, 10, 100,
      [&](size_t lo, size_t hi) { chunks.emplace_back(lo, hi); },
      8);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], std::make_pair(size_t{3}, size_t{10}));
}

TEST(ParallelForTest, ChunkBoundariesIndependentOfThreadCount) {
  // The determinism contract: same range + grain => same chunks, whether
  // the loop runs inline or on 8 threads.
  auto chunks_at = [](size_t threads) {
    std::mutex mu;
    std::set<std::pair<size_t, size_t>> chunks;
    ParallelFor(
        11, 250, 9,
        [&](size_t lo, size_t hi) {
          std::lock_guard<std::mutex> lock(mu);
          chunks.emplace(lo, hi);
        },
        threads);
    return chunks;
  };
  auto serial = chunks_at(1);
  auto parallel = chunks_at(8);
  EXPECT_EQ(serial, parallel);
  // Chunks tile [11, 250) with no gaps or overlap.
  size_t expect_lo = 11;
  for (const auto& [lo, hi] : serial) {
    EXPECT_EQ(lo, expect_lo);
    EXPECT_LE(hi - lo, 9u);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, 250u);
}

TEST(ParallelForTest, PropagatesExceptionsFromWorkers) {
  for (size_t threads : {size_t{1}, size_t{8}}) {
    EXPECT_THROW(
        ParallelFor(
            0, 100, 1,
            [](size_t lo, size_t) {
              if (lo == 37) throw std::runtime_error("chunk failed");
            },
            threads),
        std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(ParallelForTest, ExceptionCancelsRemainingChunks) {
  std::atomic<int> ran{0};
  EXPECT_THROW(ParallelFor(
                   0, 10000, 1,
                   [&](size_t, size_t) {
                     ran.fetch_add(1);
                     throw std::runtime_error("boom");
                   },
                   4),
               std::runtime_error);
  // The first failure cancels the rest; far fewer than all chunks run.
  EXPECT_LT(ran.load(), 10000);
}

TEST(ParallelForTest, NestedCallsRunInlineAndComplete) {
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 100;
  std::vector<size_t> sums(kOuter, 0);
  std::vector<unsigned> inner_threads(kOuter, 0);
  ParallelFor(
      0, kOuter, 1,
      [&](size_t lo, size_t hi) {
        for (size_t o = lo; o < hi; ++o) {
          std::set<std::thread::id> ids;
          std::mutex mu;
          ParallelFor(
              0, kInner, 1,
              [&](size_t ilo, size_t ihi) {
                std::lock_guard<std::mutex> lock(mu);
                ids.insert(std::this_thread::get_id());
                for (size_t i = ilo; i < ihi; ++i) sums[o] += i;
              },
              8);
          inner_threads[o] = static_cast<unsigned>(ids.size());
        }
      },
      8);
  for (size_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(sums[o], kInner * (kInner - 1) / 2);
    // The inner loop ran inline on the chunk's thread, not on the pool.
    EXPECT_EQ(inner_threads[o], 1u);
  }
}

TEST(ParallelForTest, ActuallyUsesHelperThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  ParallelFor(
      0, 64, 1,
      [&](size_t, size_t) {
        {
          std::lock_guard<std::mutex> lock(mu);
          ids.insert(std::this_thread::get_id());
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      },
      4, &pool);
  EXPECT_GT(ids.size(), 1u);
}

TEST(ParallelMapReduceTest, SumsBitIdenticallyAtAnyThreadCount) {
  // Awkward magnitudes make float addition order-sensitive; the fixed
  // chunking + fixed fold order must still give the exact same bits.
  constexpr size_t kN = 10000;
  auto sum_at = [](size_t threads) {
    return ParallelMapReduce<double>(
        0, kN, 13, 0.0,
        [](size_t lo, size_t hi) {
          double s = 0.0;
          for (size_t i = lo; i < hi; ++i) {
            s += 1.0 / (1.0 + static_cast<double>(i)) * 1e-7 +
                 static_cast<double>(i % 97) * 1e3;
          }
          return s;
        },
        [](double a, double b) { return a + b; }, threads);
  };
  const double serial = sum_at(1);
  EXPECT_EQ(serial, sum_at(2));
  EXPECT_EQ(serial, sum_at(8));
}

TEST(ParallelMapReduceTest, EmptyRangeReturnsInit) {
  const int result = ParallelMapReduce<int>(
      4, 4, 2, 42, [](size_t, size_t) { return 1; },
      [](int a, int b) { return a + b; }, 8);
  EXPECT_EQ(result, 42);
}

}  // namespace
}  // namespace blaeu
