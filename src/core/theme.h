// Vertical clustering (paper §3, "Creating Themes"): build the dependency
// graph over columns, then partition it with PAM into themes — "groups of
// mutually dependent columns" that each highlight one aspect of the data.
#pragma once

#include <string>
#include <vector>

#include "cluster/graph.h"
#include "common/status.h"
#include "stats/column_dependency.h"

namespace blaeu::core {

/// \brief One theme: a group of mutually dependent columns.
struct Theme {
  int id = 0;
  std::vector<size_t> columns;       ///< indices into the table schema
  std::vector<std::string> names;    ///< column names, same order
  size_t medoid_column = 0;          ///< the theme's most central column
  double cohesion = 0.0;             ///< mean pairwise dependency inside

  /// "name1, name2, name3" label (first 3 names).
  std::string Label(size_t max_names = 3) const;
};

/// Theme-detection options.
struct ThemeOptions {
  stats::DependencyOptions dependency;
  /// Range of theme counts swept with the silhouette criterion.
  size_t min_themes = 2;
  size_t max_themes = 12;
  /// Columns excluded up front (e.g. primary keys).
  bool exclude_primary_keys = true;
};

/// \brief Theme detection output.
struct ThemeSet {
  std::vector<Theme> themes;          ///< sorted by cohesion, best first
  cluster::Graph graph;               ///< the dependency graph (Figure 2)
  std::vector<size_t> graph_columns;  ///< table column per graph vertex
  double silhouette = 0.0;            ///< score of the chosen partition

  const Theme& theme(size_t i) const { return themes[i]; }
  size_t size() const { return themes.size(); }
};

/// Detects themes on `table`: dependency matrix -> graph -> PAM over the
/// graph distances (1 - dependency), with the number of themes chosen by
/// silhouette. Tables with fewer than 3 usable columns yield one theme.
Result<ThemeSet> DetectThemes(const monet::Table& table,
                              const ThemeOptions& options = {});

}  // namespace blaeu::core
