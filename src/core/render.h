// Renderers: the stand-in for Blaeu's D3 web client (Figures 5 and 6).
// ASCII for the terminal, JSON for programmatic consumers (what the NodeJS
// layer would ship to the browser), DOT for the dependency graph (Figure 2).
#pragma once

#include <string>

#include "core/map.h"
#include "core/navigation.h"
#include "core/theme.h"

namespace blaeu::core {

/// Theme list (Figure 1a / Figure 5 left panel): one line per theme with
/// its label, column count and cohesion.
std::string RenderThemeList(const ThemeSet& themes);

/// Data map as an indented tree (Figure 1b): every edge predicate, leaf
/// tuple counts with area-proportional bars, and cluster ids.
std::string RenderMap(const DataMap& map);

/// Data map as a flat treemap strip: one column of width-proportional
/// blocks per leaf (the "area shows the number of tuples" encoding).
std::string RenderTreemapStrip(const DataMap& map, size_t width = 72);

/// Highlight result (Figure 1c): example values per region.
std::string RenderHighlight(const HighlightResult& highlight);

/// Session breadcrumbs: one line per state with its action and SQL.
std::string RenderBreadcrumbs(const Session& session);

/// JSON document for a map (regions, predicates, counts, quality).
std::string MapToJson(const DataMap& map);

/// Canonical JSON form of a map for regression fixtures and byte-identity
/// comparisons: everything MapToJson carries (plus medoids) EXCEPT
/// build_seconds, the one field that legitimately varies between identical
/// builds. Doubles use JsonWriter's default %.12g formatting — stable across
/// runs of the same binary and tight enough to catch real drift.
std::string CanonicalMapJson(const DataMap& map);

/// JSON document for a theme set.
std::string ThemesToJson(const ThemeSet& themes);

/// Dependency graph in Graphviz DOT with theme coloring (Figure 2).
std::string DependencyGraphToDot(const ThemeSet& themes, double min_weight);

}  // namespace blaeu::core
