#include "obs/resource.h"

#include "common/json_writer.h"

namespace blaeu::obs {

std::string ResourceProfile::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.KV("rows_scanned", rows_scanned);
  w.KV("rows_counted", rows_counted);
  w.KV("cells_materialized", cells_materialized);
  w.KV("distance_evaluations", distance_evaluations);
  w.KV("cart_nodes", cart_nodes);
  w.KV("cache_hits", cache_hits);
  w.KV("cache_misses", cache_misses);
  w.KV("peak_scratch_bytes", peak_scratch_bytes);
  w.KV("total_seconds", total_seconds);
  w.Key("stages").BeginObject();
  for (const StageCost& stage : stages) w.KV(stage.name, stage.seconds);
  w.EndObject();
  w.EndObject();
  return w.str();
}

void ResourceProfile::ReportTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->counter("core.map.rows_scanned")->Add(rows_scanned);
  registry->counter("core.map.rows_counted")->Add(rows_counted);
  registry->counter("core.map.cells_materialized")->Add(cells_materialized);
  registry->counter("core.map.distance_evaluations")
      ->Add(distance_evaluations);
  registry->counter("core.map.cart_nodes")->Add(cart_nodes);
  registry->histogram("core.map.scratch_peak_bytes")
      ->Observe(static_cast<double>(peak_scratch_bytes));
  for (const StageCost& stage : stages) {
    registry->histogram("core.map.stage." + stage.name + "_seconds")
        ->Observe(stage.seconds);
  }
}

}  // namespace blaeu::obs
