#include "stats/entropy.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_map>

namespace blaeu::stats {

namespace {

double EntropyFromCounts(const std::unordered_map<int64_t, size_t>& counts,
                         size_t n) {
  if (n == 0) return 0.0;
  double h = 0.0;
  const double dn = static_cast<double>(n);
  for (const auto& [_, c] : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / dn;
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace

double Entropy(const std::vector<int>& labels) {
  std::unordered_map<int64_t, size_t> counts;
  for (int l : labels) ++counts[l];
  return EntropyFromCounts(counts, labels.size());
}

double JointEntropy(const std::vector<int>& xs, const std::vector<int>& ys) {
  assert(xs.size() == ys.size());
  std::unordered_map<int64_t, size_t> counts;
  for (size_t i = 0; i < xs.size(); ++i) {
    // Shift in the unsigned domain: left-shifting a negative signed value
    // is UB (pre-C++20), and label ids can be negative sentinels.
    uint64_t packed = (static_cast<uint64_t>(static_cast<uint32_t>(xs[i]))
                       << 32) |
                      static_cast<uint64_t>(static_cast<uint32_t>(ys[i]));
    int64_t key = static_cast<int64_t>(packed);
    ++counts[key];
  }
  return EntropyFromCounts(counts, xs.size());
}

double MutualInformation(const std::vector<int>& xs,
                         const std::vector<int>& ys) {
  double mi = Entropy(xs) + Entropy(ys) - JointEntropy(xs, ys);
  return mi > 0.0 ? mi : 0.0;
}

double NormalizedMutualInformation(const std::vector<int>& xs,
                                   const std::vector<int>& ys) {
  double hx = Entropy(xs);
  double hy = Entropy(ys);
  if (hx <= 0.0 || hy <= 0.0) return 0.0;
  double mi = MutualInformation(xs, ys);
  double nmi = mi / std::sqrt(hx * hy);
  return std::clamp(nmi, 0.0, 1.0);
}

namespace {

size_t SupportSize(const std::vector<int>& labels) {
  std::unordered_map<int64_t, size_t> counts;
  for (int l : labels) ++counts[l];
  return counts.size();
}

}  // namespace

double MutualInformationMM(const std::vector<int>& xs,
                           const std::vector<int>& ys) {
  const size_t n = xs.size();
  if (n == 0) return 0.0;
  double mi = MutualInformation(xs, ys);
  double kx = static_cast<double>(SupportSize(xs));
  double ky = static_cast<double>(SupportSize(ys));
  // Miller-Madow: E[MI_plugin | independence] ~ (kx-1)(ky-1) / (2n).
  double bias = (kx - 1.0) * (ky - 1.0) / (2.0 * static_cast<double>(n));
  double corrected = mi - bias;
  return corrected > 0.0 ? corrected : 0.0;
}

double NormalizedMutualInformationMM(const std::vector<int>& xs,
                                     const std::vector<int>& ys) {
  double hx = Entropy(xs);
  double hy = Entropy(ys);
  if (hx <= 0.0 || hy <= 0.0) return 0.0;
  double nmi = MutualInformationMM(xs, ys) / std::sqrt(hx * hy);
  return std::clamp(nmi, 0.0, 1.0);
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  double mean_x = std::accumulate(xs.begin(), xs.end(), 0.0) / n;
  double mean_y = std::accumulate(ys.begin(), ys.end(), 0.0) / n;
  double cov = 0, var_x = 0, var_y = 0;
  for (size_t i = 0; i < n; ++i) {
    double dx = xs[i] - mean_x;
    double dy = ys[i] - mean_y;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x <= 0.0 || var_y <= 0.0) return 0.0;
  return cov / std::sqrt(var_x * var_y);
}

namespace {

std::vector<double> AverageRanks(const std::vector<double>& xs) {
  const size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  return PearsonCorrelation(AverageRanks(xs), AverageRanks(ys));
}

}  // namespace blaeu::stats
