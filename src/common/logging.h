// Lightweight leveled logging to stderr. Off below kWarn by default so that
// examples and benches stay quiet unless asked; the BLAEU_LOG_LEVEL
// environment variable ("debug"/"info"/"warn"/"error" or 0-3) sets the
// initial level. Lines carry a monotonic uptime timestamp and severity tag:
//   [   0.001234 blaeu INFO ] message
// The level is an atomic: SetLogLevel is safe from any thread.
#pragma once

#include <sstream>
#include <string>

namespace blaeu {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that is emitted. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a level name ("debug", "info", "warn"/"warning", "error",
/// case-insensitive) or digit 0-3. Returns false on anything else.
bool ParseLogLevel(const std::string& text, LogLevel* level);

namespace internal {

/// Emits one formatted line to stderr if `level` is enabled.
void LogLine(LogLevel level, const std::string& msg);

/// RAII stream that flushes a log line on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace blaeu

#define BLAEU_LOG(level)                                              \
  ::blaeu::internal::LogMessage(::blaeu::LogLevel::level).stream()
