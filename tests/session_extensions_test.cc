// Unit tests for the session extensions: annotations, detailed highlights,
// scatter views, JSON export, projection suggestions and DBSCAN maps.
#include <gtest/gtest.h>

#include "core/map_builder.h"
#include "core/navigation.h"
#include "core/suggest.h"
#include "stats/metrics.h"
#include "workloads/gaussian.h"
#include "workloads/hollywood.h"

namespace blaeu::core {
namespace {

Session StartSession() {
  workloads::MixtureSpec spec;
  spec.rows = 500;
  spec.num_clusters = 3;
  spec.dims = 4;
  spec.with_categorical = true;
  auto data = workloads::MakeGaussianMixture(spec);
  SessionOptions opt;
  opt.map.sample_size = 500;
  auto session = Session::Start(data.table, "mixture", opt);
  EXPECT_TRUE(session.ok());
  return std::move(session).ValueOrDie();
}

TEST(AnnotateTest, AttachAndReplaceNotes) {
  Session s = StartSession();
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_TRUE(s.Annotate(leaves[0], "interesting cluster").ok());
  EXPECT_EQ(s.annotations().at(leaves[0]), "interesting cluster");
  ASSERT_TRUE(s.Annotate(leaves[0], "revised").ok());
  EXPECT_EQ(s.annotations().at(leaves[0]), "revised");
  EXPECT_EQ(s.annotations().size(), 1u);
}

TEST(AnnotateTest, InvalidRegionRejected) {
  Session s = StartSession();
  EXPECT_EQ(s.Annotate(9999, "x").code(), StatusCode::kIndexError);
}

TEST(AnnotateTest, AnnotationsDiscardedOnRollback) {
  Session s = StartSession();
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  ASSERT_TRUE(s.Annotate(0, "note on zoomed map").ok());
  ASSERT_TRUE(s.Rollback().ok());
  EXPECT_TRUE(s.annotations().empty());
}

TEST(HighlightDetailTest, NumericColumnsGetHistograms) {
  Session s = StartSession();
  auto detail = *s.HighlightDetail("x0", 8);
  EXPECT_TRUE(detail.numeric);
  EXPECT_EQ(detail.regions.size(), s.current().map.LeafIds().size());
  for (const RegionDetail& r : detail.regions) {
    EXPECT_NE(r.rendering.find('#'), std::string::npos);
    EXPECT_NE(r.rendering.find('['), std::string::npos);  // bin ranges
  }
}

TEST(HighlightDetailTest, CategoricalColumnsGetFrequencies) {
  Session s = StartSession();
  auto detail = *s.HighlightDetail("group");
  EXPECT_FALSE(detail.numeric);
  for (const RegionDetail& r : detail.regions) {
    EXPECT_NE(r.rendering.find('g'), std::string::npos);  // g0/g1/g2 labels
  }
}

TEST(HighlightDetailTest, UnknownColumnFails) {
  Session s = StartSession();
  EXPECT_EQ(s.HighlightDetail("ghost").status().code(),
            StatusCode::kKeyError);
}

TEST(ScatterDetailTest, RendersPerRegionGrids) {
  Session s = StartSession();
  auto detail = *s.ScatterDetail("x0", "x1");
  EXPECT_EQ(detail.x_column, "x0");
  for (const RegionDetail& r : detail.regions) {
    EXPECT_NE(r.rendering.find('|'), std::string::npos);
  }
}

TEST(ScatterDetailTest, StringColumnRejected) {
  Session s = StartSession();
  EXPECT_FALSE(s.ScatterDetail("group", "x0").ok());
}

TEST(SessionJsonTest, ExportsStatesAndAnnotations) {
  Session s = StartSession();
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_TRUE(s.Annotate(leaves[0], "note \"quoted\"").ok());
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  std::string json = s.ToJson();
  EXPECT_NE(json.find("\"states\":["), std::string::npos);
  EXPECT_NE(json.find("\"action\":\"zoom("), std::string::npos);
  EXPECT_NE(json.find("\"sql\":\"SELECT"), std::string::npos);
  EXPECT_NE(json.find("note \\\"quoted\\\""), std::string::npos);
  // Two states exported.
  EXPECT_NE(json.find("\"index\":1"), std::string::npos);
}

TEST(SuggestTest, RanksThemesByLocalCohesion) {
  // Two themes; zoom guided by theme A's map, then theme B should remain
  // suggestible and every suggestion carries a finite score.
  auto data = workloads::MakeTwoThemeMixture(800, 4, 3, 3, 7);
  SessionOptions opt;
  opt.map.sample_size = 800;
  auto session = *Session::Start(data.table, "two_theme", opt);
  auto suggestions = *SuggestProjections(session);
  ASSERT_GE(suggestions.size(), 2u);
  for (const ProjectionSuggestion& s : suggestions) {
    EXPECT_GE(s.local_cohesion, 0.0);
    EXPECT_LE(s.local_cohesion, 1.0);
  }
  // Sorted by lift descending.
  for (size_t i = 1; i < suggestions.size(); ++i) {
    EXPECT_GE(suggestions[i - 1].lift, suggestions[i].lift);
  }
  std::string text = RenderSuggestions(session, suggestions);
  EXPECT_NE(text.find("Projection suggestions"), std::string::npos);
}

TEST(SuggestTest, SkipsSingletonThemes) {
  auto data = workloads::MakeHollywood();
  SessionOptions opt;
  opt.map.sample_size = 900;
  auto session = *Session::Start(data.table, "movies", opt);
  auto suggestions = *SuggestProjections(session);
  for (const ProjectionSuggestion& s : suggestions) {
    EXPECT_GE(session.themes().theme(s.theme_id).columns.size(), 2u);
  }
}

TEST(DbscanMapTest, BuildsValidMap) {
  workloads::MixtureSpec spec;
  spec.rows = 400;
  spec.num_clusters = 3;
  spec.dims = 3;
  spec.separation = 10.0;
  auto data = workloads::MakeGaussianMixture(spec);
  MapOptions opt;
  opt.algorithm = MapAlgorithm::kDbscan;
  opt.sample_size = 0;
  auto map = *BuildMap(*data.table, opt);
  EXPECT_EQ(map.algorithm, "dbscan");
  EXPECT_GE(map.num_clusters, 2u);
  // Region tree invariants still hold.
  for (const MapRegion& r : map.regions) {
    if (r.is_leaf()) continue;
    size_t child_sum = 0;
    for (int c : r.children) child_sum += map.region(c).tuple_count;
    EXPECT_EQ(child_sum, r.tuple_count);
  }
}

TEST(DbscanMapTest, RecoversWellSeparatedClusters) {
  workloads::MixtureSpec spec;
  spec.rows = 300;
  spec.num_clusters = 3;
  spec.dims = 2;
  spec.separation = 12.0;
  auto data = workloads::MakeGaussianMixture(spec);
  MapOptions opt;
  opt.algorithm = MapAlgorithm::kDbscan;
  opt.sample_size = 0;
  auto map = *BuildMap(*data.table, opt);
  // The eps heuristic may carve a dense fringe into its own group, so allow
  // a small surplus; the partition must still match the planted clusters.
  EXPECT_GE(map.num_clusters, 3u);
  EXPECT_LE(map.num_clusters, 5u);
  std::vector<int> partition(300, -1);
  for (int leaf : map.LeafIds()) {
    auto rows = *map.region(leaf).predicate.Evaluate(*data.table);
    for (uint32_t r : rows.rows()) {
      partition[r] = map.region(leaf).cluster_label;
    }
  }
  EXPECT_GT(stats::AdjustedRandIndex(partition, data.truth.row_clusters),
            0.8);
}

}  // namespace
}  // namespace blaeu::core
