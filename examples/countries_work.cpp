// Countries and Work: the paper's running example, end to end.
//
// Reproduces every panel of Figure 1 plus Figure 2 on the synthetic OECD
// table (6,823 rows x 378 columns, 31 countries):
//   (F1a) list of themes;
//   (F1b) the data map of the labor-conditions theme;
//   (F1c) zoom into the low-hours / high-income region + highlight the
//         countries living there (expect Switzerland, Norway, Canada, ...);
//   (F1d) project the zoomed selection onto the unemployment theme;
//   (F2)  the dependency graph as Graphviz DOT (written to /tmp).
//
// Run:  ./countries_work [rows] [indicator_columns]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/timer.h"
#include "core/navigation.h"
#include "core/render.h"
#include "workloads/oecd.h"

using namespace blaeu;

namespace {

int FindThemeWith(const core::ThemeSet& themes, const std::string& column) {
  for (const core::Theme& t : themes.themes) {
    for (const std::string& name : t.names) {
      if (name == column) return t.id;
    }
  }
  return -1;
}

int LargestLeaf(const core::DataMap& map) {
  int best = -1;
  size_t best_count = 0;
  for (int leaf : map.LeafIds()) {
    if (map.region(leaf).tuple_count > best_count) {
      best_count = map.region(leaf).tuple_count;
      best = leaf;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  workloads::OecdSpec spec;  // defaults: 6,823 x 378 as in the paper
  if (argc > 1) spec.rows = static_cast<size_t>(std::atoi(argv[1]));
  if (argc > 2) {
    spec.indicator_columns = static_cast<size_t>(std::atoi(argv[2]));
  }
  std::printf("Generating OECD countries-and-work table (%zu x %zu)...\n",
              spec.rows, spec.indicator_columns + 3);
  auto data = workloads::MakeOecd(spec);

  core::SessionOptions options;
  options.themes.dependency.sample_rows = 2000;
  options.themes.max_themes = 12;
  options.map.sample_size = 2000;  // paper: a few thousand per map

  Timer timer;
  auto session_or = core::Session::Start(data.table, "oecd", options);
  if (!session_or.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 session_or.status().ToString().c_str());
    return 1;
  }
  core::Session session = std::move(session_or).ValueOrDie();
  std::printf("Session ready in %.2f s (themes + first map)\n\n",
              timer.ElapsedSeconds());

  // ----- Figure 1a: the list of themes. ------------------------------------
  std::printf("=== Figure 1a: themes ===\n%s\n",
              core::RenderThemeList(session.themes()).c_str());

  // ----- Figure 2: dependency graph as DOT. --------------------------------
  {
    std::ofstream dot("/tmp/blaeu_oecd_dependency.dot");
    dot << core::DependencyGraphToDot(session.themes(), 0.25);
    std::printf(
        "=== Figure 2: dependency graph written to "
        "/tmp/blaeu_oecd_dependency.dot (%zu vertices, %zu strong edges) "
        "===\n\n",
        session.themes().graph.num_vertices(),
        session.themes().graph.CountEdges(0.25));
  }

  // ----- Figure 1b: map of the labor-conditions theme. ---------------------
  int labor = FindThemeWith(session.themes(),
                            "pct_employees_working_long_hours");
  if (labor < 0) {
    std::fprintf(stderr, "labor theme not found\n");
    return 1;
  }
  timer.Reset();
  if (Status st = session.SelectTheme(static_cast<size_t>(labor)); !st.ok()) {
    std::fprintf(stderr, "select failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("=== Figure 1b: labor-conditions map (built in %.0f ms) ===\n%s\n",
              timer.ElapsedMillis(),
              core::RenderMap(session.current().map).c_str());
  std::printf("Implicit query: %s\n\n", session.CurrentQuery().ToSql().c_str());

  // ----- Figure 1c: zoom + highlight country names. ------------------------
  int target = LargestLeaf(session.current().map);
  timer.Reset();
  if (Status st = session.Zoom(target); !st.ok()) {
    std::fprintf(stderr, "zoom failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("=== Figure 1c: zoom into region %d (%.0f ms) ===\n%s\n",
              target, timer.ElapsedMillis(),
              core::RenderMap(session.current().map).c_str());
  auto highlight = session.Highlight("country");
  if (highlight.ok()) {
    std::printf("%s\n", core::RenderHighlight(*highlight).c_str());
  }
  std::printf("Implicit query: %s\n\n", session.CurrentQuery().ToSql().c_str());

  // ----- Figure 1d: project onto the unemployment theme. -------------------
  int unemp = FindThemeWith(session.themes(), "unemployment_rate");
  if (unemp >= 0 && unemp != labor) {
    timer.Reset();
    if (session.Project(static_cast<size_t>(unemp)).ok()) {
      std::printf("=== Figure 1d: projection onto unemployment (%.0f ms) ===\n%s\n",
                  timer.ElapsedMillis(),
                  core::RenderMap(session.current().map).c_str());
      auto h2 = session.Highlight("country");
      if (h2.ok()) std::printf("%s\n", core::RenderHighlight(*h2).c_str());
    }
  }

  // ----- Rollback: every action is reversible. ------------------------------
  std::printf("%s\n", core::RenderBreadcrumbs(session).c_str());
  while (session.history_size() > 1) {
    if (!session.Rollback().ok()) break;
  }
  std::printf("Rolled back to the initial state (%zu tuples).\n",
              session.current().selection.size());
  return 0;
}
