#include "core/report.h"

#include <fstream>

#include "core/render.h"
#include "monet/csv.h"

namespace blaeu::core {

namespace {

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << content;
  if (!out.good()) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

}  // namespace

Status ExportSessionReport(const Session& session,
                           const std::string& directory,
                           const ReportOptions& options) {
  const std::string base = directory + "/";

  // Themes (Figure 1a) and the dependency graph (Figure 2).
  BLAEU_RETURN_NOT_OK(
      WriteFile(base + "themes.txt", RenderThemeList(session.themes())));
  BLAEU_RETURN_NOT_OK(
      WriteFile(base + "themes.json", ThemesToJson(session.themes())));
  BLAEU_RETURN_NOT_OK(WriteFile(
      base + "dependency.dot",
      DependencyGraphToDot(session.themes(), options.dot_min_weight)));

  // Every navigation state: map rendering, map JSON, implicit SQL.
  for (size_t i = 0; i < session.history_size(); ++i) {
    const NavState& state = session.state(i);
    std::string stem = base + "state_" + std::to_string(i);
    BLAEU_RETURN_NOT_OK(WriteFile(stem + "_map.txt",
                                  RenderMap(state.map)));
    BLAEU_RETURN_NOT_OK(WriteFile(stem + "_map.json",
                                  MapToJson(state.map)));
    monet::SelectProjectQuery q;
    q.table_name = session.table_name();
    q.columns = state.columns;
    q.where = state.where;
    BLAEU_RETURN_NOT_OK(WriteFile(stem + "_query.sql", q.ToSql() + "\n"));
  }

  // Full session log (actions, SQL, annotations).
  BLAEU_RETURN_NOT_OK(WriteFile(base + "session.json", session.ToJson()));

  // Current map's leaf contents.
  if (options.region_csv_rows > 0) {
    for (int leaf : session.current().map.LeafIds()) {
      BLAEU_ASSIGN_OR_RETURN(monet::TablePtr rows,
                             session.Inspect(leaf, options.region_csv_rows));
      BLAEU_RETURN_NOT_OK(monet::WriteCsvFile(
          *rows, base + "region_" + std::to_string(leaf) + ".csv"));
    }
  }
  return Status::OK();
}

}  // namespace blaeu::core
