#include "monet/column_stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/string_util.h"

namespace blaeu::monet {

namespace {

ColumnStats ComputeStatsImpl(const Column& col,
                             const std::vector<uint32_t>& rows) {
  ColumnStats s;
  s.count = rows.size();
  std::unordered_map<std::string, size_t> counter;
  double sum = 0, sum_sq = 0;
  size_t numeric_n = 0;
  bool numeric = col.type() != DataType::kString;
  bool first = true;
  for (uint32_t r : rows) {
    if (col.IsNull(r)) {
      ++s.null_count;
      continue;
    }
    Value v = col.GetValue(r);
    ++counter[v.ToString()];
    if (numeric) {
      double x = col.GetNumeric(r);
      sum += x;
      sum_sq += x * x;
      ++numeric_n;
      if (first) {
        s.min = s.max = x;
        first = false;
      } else {
        s.min = std::min(s.min, x);
        s.max = std::max(s.max, x);
      }
    }
  }
  s.distinct = counter.size();
  if (numeric_n > 0) {
    s.mean = sum / static_cast<double>(numeric_n);
    double var = sum_sq / static_cast<double>(numeric_n) - s.mean * s.mean;
    s.stddev = var > 0 ? std::sqrt(var) : 0.0;
  }
  std::vector<std::pair<std::string, size_t>> tops(counter.begin(),
                                                   counter.end());
  std::sort(tops.begin(), tops.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (tops.size() > 16) tops.resize(16);
  s.top_values = std::move(tops);
  return s;
}

}  // namespace

ColumnStats ComputeColumnStats(const Column& col) {
  std::vector<uint32_t> all(col.size());
  for (size_t i = 0; i < col.size(); ++i) all[i] = static_cast<uint32_t>(i);
  return ComputeStatsImpl(col, all);
}

ColumnStats ComputeColumnStats(const Column& col,
                               const SelectionVector& sel) {
  return ComputeStatsImpl(col, sel.rows());
}

std::vector<size_t> DetectPrimaryKeyColumns(const Table& table) {
  std::vector<size_t> out;
  for (size_t i = 0; i < table.num_columns(); ++i) {
    const Column& col = *table.column(i);
    const std::string lower = ToLower(table.schema().field(i).name);
    bool name_is_key =
        lower == "id" || lower == "key" || lower == "rowid" ||
        (lower.size() > 3 && lower.substr(lower.size() - 3) == "_id");
    if (name_is_key) {
      out.push_back(i);
      continue;
    }
    // Unique string/int columns are identifier-like; unique doubles are
    // usually measurements, so only flag exact types.
    if (col.type() == DataType::kString || col.type() == DataType::kInt64) {
      ColumnStats s = ComputeColumnStats(col);
      if (s.IsUniqueKey() && s.count > 1) out.push_back(i);
    }
  }
  return out;
}

bool LooksCategorical(const Column& col, const ColumnStats& stats,
                      size_t max_distinct) {
  if (col.type() == DataType::kString || col.type() == DataType::kBool) {
    return true;
  }
  // A numeric column behaves like a categorical when its domain is tiny AND
  // values actually repeat (3+ rows per distinct value on average) — a
  // 6-row table with 6 distinct incomes is continuous, a 100-row table with
  // 7 years is categorical.
  size_t non_null = stats.count - stats.null_count;
  return stats.distinct > 0 && stats.distinct <= max_distinct &&
         stats.distinct * 3 <= non_null;
}

}  // namespace blaeu::monet
