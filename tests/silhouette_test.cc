// Unit tests for the silhouette coefficient (exact and Monte-Carlo).
#include "stats/silhouette.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace blaeu::stats {
namespace {

/// Two tight, well-separated blobs along one dimension.
Matrix TwoBlobs(size_t per_blob, double gap, Rng* rng) {
  Matrix data(2 * per_blob, 1);
  for (size_t i = 0; i < per_blob; ++i) {
    data.At(i, 0) = rng->NextGaussian(0.0, 0.3);
    data.At(per_blob + i, 0) = rng->NextGaussian(gap, 0.3);
  }
  return data;
}

std::vector<int> BlobLabels(size_t per_blob) {
  std::vector<int> labels(2 * per_blob, 0);
  for (size_t i = per_blob; i < 2 * per_blob; ++i) labels[i] = 1;
  return labels;
}

TEST(SilhouetteTest, WellSeparatedScoresNearOne) {
  Rng rng(1);
  Matrix data = TwoBlobs(30, 20.0, &rng);
  double s = MeanSilhouetteEuclidean(data, BlobLabels(30));
  EXPECT_GT(s, 0.9);
}

TEST(SilhouetteTest, RandomLabelsScoreNearZeroOrNegative) {
  Rng rng(2);
  Matrix data = TwoBlobs(30, 20.0, &rng);
  std::vector<int> labels(60);
  for (auto& l : labels) l = static_cast<int>(rng.NextBounded(2));
  double s = MeanSilhouetteEuclidean(data, labels);
  EXPECT_LT(s, 0.2);
}

TEST(SilhouetteTest, ValuesBoundedByOne) {
  Rng rng(3);
  Matrix data = TwoBlobs(15, 5.0, &rng);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  std::vector<double> values = SilhouetteValues(dist, BlobLabels(15));
  for (double v : values) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(SilhouetteTest, SingletonClusterScoresZero) {
  Matrix data(3, 1);
  data.At(0, 0) = 0;
  data.At(1, 0) = 0.1;
  data.At(2, 0) = 10;
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  std::vector<double> values = SilhouetteValues(dist, {0, 0, 1});
  EXPECT_DOUBLE_EQ(values[2], 0.0);  // singleton convention
}

TEST(SilhouetteTest, SingleClusterScoresZero) {
  Rng rng(4);
  Matrix data = TwoBlobs(10, 5.0, &rng);
  double s = MeanSilhouetteEuclidean(data, std::vector<int>(20, 0));
  EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(MonteCarloSilhouetteTest, SmallInputMatchesExact) {
  Rng rng(5);
  Matrix data = TwoBlobs(20, 8.0, &rng);
  std::vector<int> labels = BlobLabels(20);
  MonteCarloSilhouetteOptions opt;
  opt.subsample_size = 100;  // larger than n=40: exact path
  double exact = MeanSilhouetteEuclidean(data, labels);
  double mc = MonteCarloSilhouette(data, labels, opt);
  EXPECT_DOUBLE_EQ(exact, mc);
}

TEST(MonteCarloSilhouetteTest, ApproximatesExactOnLargeInput) {
  Rng rng(6);
  Matrix data = TwoBlobs(400, 10.0, &rng);
  std::vector<int> labels = BlobLabels(400);
  double exact = MeanSilhouetteEuclidean(data, labels);
  MonteCarloSilhouetteOptions opt;
  opt.num_subsamples = 6;
  opt.subsample_size = 120;
  opt.seed = 7;
  double mc = MonteCarloSilhouette(data, labels, opt);
  EXPECT_NEAR(mc, exact, 0.05);
}

TEST(MonteCarloSilhouetteTest, DeterministicGivenSeed) {
  Rng rng(8);
  Matrix data = TwoBlobs(200, 6.0, &rng);
  std::vector<int> labels = BlobLabels(200);
  MonteCarloSilhouetteOptions opt;
  opt.seed = 11;
  double a = MonteCarloSilhouette(data, labels, opt);
  double b = MonteCarloSilhouette(data, labels, opt);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(MonteCarloSilhouetteTest, CustomDistanceFunction) {
  // Distance oracle over indices: two groups {0,1}, {2,3} far apart.
  std::vector<int> labels = {0, 0, 1, 1};
  auto dist = [](size_t i, size_t j) {
    bool same_group = (i < 2) == (j < 2);
    if (i == j) return 0.0;
    return same_group ? 0.1 : 10.0;
  };
  double s = MonteCarloSilhouette(4, labels, dist);
  EXPECT_GT(s, 0.9);
}

}  // namespace
}  // namespace blaeu::stats
