// Unit tests for Status / Result error handling.
#include "common/status.h"

#include <gtest/gtest.h>

namespace blaeu {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::KeyError("x").code(), StatusCode::kKeyError);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::IndexError("x").code(), StatusCode::kIndexError);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  Status s = Status::Invalid("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::Invalid("a"), Status::Invalid("b"));
  EXPECT_FALSE(Status::Invalid("a") == Status::KeyError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::KeyError("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kKeyError);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok_result(7);
  EXPECT_EQ(std::move(ok_result).ValueOr(0), 7);
  Result<int> err(Status::Invalid("x"));
  EXPECT_EQ(std::move(err).ValueOr(9), 9);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

Status FailingHelper() { return Status::IOError("disk"); }

Status PropagatesWithMacro() {
  BLAEU_RETURN_NOT_OK(FailingHelper());
  return Status::OK();  // unreachable
}

TEST(MacroTest, ReturnNotOkPropagates) {
  Status s = PropagatesWithMacro();
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

Result<int> ProducesValue() { return 10; }
Result<int> ProducesError() { return Status::Invalid("nope"); }

Result<int> AssignsWithMacro(bool fail) {
  BLAEU_ASSIGN_OR_RETURN(int v, fail ? ProducesError() : ProducesValue());
  return v + 1;
}

TEST(MacroTest, AssignOrReturnHappyPath) {
  Result<int> r = AssignsWithMacro(false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 11);
}

TEST(MacroTest, AssignOrReturnErrorPath) {
  Result<int> r = AssignsWithMacro(true);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

}  // namespace
}  // namespace blaeu
