// Parameterized property sweeps over the storage layer: group-by
// consistency, sort invariants, predicate/selection algebra, and the
// mixed-distance and MI estimators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "common/rng.h"
#include "monet/aggregate.h"
#include "monet/predicate.h"
#include "monet/sort.h"
#include "stats/distance.h"
#include "stats/entropy.h"
#include "workloads/gaussian.h"

namespace blaeu {
namespace {

using monet::AggFn;
using monet::DataType;
using monet::Schema;
using monet::SelectionVector;
using monet::SortKey;
using monet::TableBuilder;
using monet::TablePtr;
using monet::Value;

/// Random mixed table: one group column (g0..g<k>), one double, one int,
/// with a sprinkle of nulls.
TablePtr RandomTable(size_t rows, size_t groups, double null_rate,
                     uint64_t seed) {
  TableBuilder b(Schema({{"g", DataType::kString},
                         {"x", DataType::kDouble},
                         {"n", DataType::kInt64}}));
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    Value g = Value::Str("g" + std::to_string(rng.NextBounded(groups)));
    Value x = rng.NextBernoulli(null_rate)
                  ? Value::Null()
                  : Value::Double(rng.NextGaussian());
    Value n = Value::Int(rng.NextInt(-50, 50));
    EXPECT_TRUE(b.AppendRow({g, x, n}).ok());
  }
  return *b.Finish();
}

// ---------------------------------------------------------------------------
// GroupBy totals must agree with direct scans.
// ---------------------------------------------------------------------------

class GroupByPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, double>> {};

TEST_P(GroupByPropertyTest, AggregatesMatchDirectScan) {
  auto [rows, groups, null_rate] = GetParam();
  TablePtr t = RandomTable(rows, groups, null_rate,
                           rows * 31 + groups * 7);
  auto result = *monet::GroupBy(*t, {"g"},
                                {{AggFn::kCount, "x", "cnt"},
                                 {AggFn::kSum, "x", "sum"},
                                 {AggFn::kMin, "n", "mn"},
                                 {AggFn::kMax, "n", "mx"}});
  // Direct computation.
  std::map<std::string, std::tuple<size_t, double, int64_t, int64_t>> direct;
  for (size_t r = 0; r < rows; ++r) {
    std::string g = t->GetValue(r, 0).AsString();
    auto [it, inserted] = direct.try_emplace(
        g, std::make_tuple(0u, 0.0, INT64_MAX, INT64_MIN));
    auto& [cnt, sum, mn, mx] = it->second;
    if (!t->GetValue(r, 1).is_null()) {
      ++cnt;
      sum += t->GetValue(r, 1).AsDouble();
    }
    int64_t n = t->GetValue(r, 2).AsInt();
    mn = std::min(mn, n);
    mx = std::max(mx, n);
  }
  ASSERT_EQ(result->num_rows(), direct.size());
  for (size_t r = 0; r < result->num_rows(); ++r) {
    const auto& [cnt, sum, mn, mx] =
        direct.at(result->GetValue(r, 0).AsString());
    EXPECT_EQ(result->GetValue(r, 1).AsInt(), static_cast<int64_t>(cnt));
    if (cnt > 0) {
      EXPECT_NEAR(result->GetValue(r, 2).AsDouble(), sum, 1e-9);
    }
    EXPECT_DOUBLE_EQ(result->GetValue(r, 3).AsDouble(),
                     static_cast<double>(mn));
    EXPECT_DOUBLE_EQ(result->GetValue(r, 4).AsDouble(),
                     static_cast<double>(mx));
  }
  // Group counts sum to the row count.
  auto counts = *monet::GroupBy(*t, {"g"}, {{AggFn::kCount, "", "all"}});
  int64_t total = 0;
  for (size_t r = 0; r < counts->num_rows(); ++r) {
    total += counts->GetValue(r, 1).AsInt();
  }
  EXPECT_EQ(total, static_cast<int64_t>(rows));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GroupByPropertyTest,
    ::testing::Values(std::make_tuple(50, 3, 0.0),
                      std::make_tuple(200, 5, 0.1),
                      std::make_tuple(500, 2, 0.3),
                      std::make_tuple(1000, 17, 0.05)));

// ---------------------------------------------------------------------------
// Sorting invariants.
// ---------------------------------------------------------------------------

class SortPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, bool>> {};

TEST_P(SortPropertyTest, OrderedPermutationWithNullsLast) {
  auto [rows, ascending] = GetParam();
  TablePtr t = RandomTable(rows, 4, 0.15, rows * 13);
  auto order = *monet::SortIndices(*t, SelectionVector::All(rows),
                                   {{"x", ascending}});
  // Permutation of the input.
  std::vector<uint32_t> check = order.rows();
  std::sort(check.begin(), check.end());
  EXPECT_EQ(check, SelectionVector::All(rows).rows());
  // Non-null prefix is monotone, nulls form the suffix.
  const auto& col = *t->column(1);
  bool seen_null = false;
  double prev = ascending ? -1e300 : 1e300;
  for (uint32_t r : order.rows()) {
    if (col.IsNull(r)) {
      seen_null = true;
      continue;
    }
    EXPECT_FALSE(seen_null) << "non-null after null";
    double v = col.doubles()[r];
    if (ascending) {
      EXPECT_GE(v, prev);
    } else {
      EXPECT_LE(v, prev);
    }
    prev = v;
  }
  // TopK prefix matches the sort for several k.
  for (size_t k : {1ul, 5ul, rows / 2}) {
    if (k == 0 || k > rows) continue;
    auto top = *monet::TopKIndices(*t, SelectionVector::All(rows),
                                   {{"x", ascending}}, k);
    ASSERT_EQ(top.size(), k);
    for (size_t i = 0; i < k; ++i) EXPECT_EQ(top[i], order[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SortPropertyTest,
                         ::testing::Values(std::make_tuple(20, true),
                                           std::make_tuple(100, false),
                                           std::make_tuple(333, true),
                                           std::make_tuple(333, false)));

// ---------------------------------------------------------------------------
// Gower distance stays in [0, 1], is symmetric, zero on the diagonal.
// ---------------------------------------------------------------------------

class GowerPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(GowerPropertyTest, MetricAxioms) {
  double nan_rate = GetParam();
  Rng rng(static_cast<uint64_t>(nan_rate * 1000) + 3);
  const size_t n = 40, dims = 5;
  stats::Matrix data(n, dims);
  std::vector<bool> categorical = {false, true, false, true, false};
  for (size_t i = 0; i < n; ++i) {
    for (size_t f = 0; f < dims; ++f) {
      if (rng.NextBernoulli(nan_rate)) {
        data.At(i, f) = std::numeric_limits<double>::quiet_NaN();
      } else if (categorical[f]) {
        data.At(i, f) = static_cast<double>(rng.NextBounded(4));
      } else {
        data.At(i, f) = rng.NextGaussian();
      }
    }
  }
  stats::GowerDistance gower = stats::GowerDistance::Fit(data, categorical);
  for (size_t i = 0; i < n; i += 3) {
    // Self-distance is 0 unless the row is entirely missing (the documented
    // "no comparable features -> 1" convention).
    bool has_value = false;
    for (size_t f = 0; f < dims; ++f) {
      if (!std::isnan(data.At(i, f))) has_value = true;
    }
    EXPECT_DOUBLE_EQ(gower(data.RowPtr(i), data.RowPtr(i)),
                     has_value ? 0.0 : 1.0);
    for (size_t j = 0; j < n; j += 5) {
      double d_ij = gower(data.RowPtr(i), data.RowPtr(j));
      double d_ji = gower(data.RowPtr(j), data.RowPtr(i));
      EXPECT_DOUBLE_EQ(d_ij, d_ji);
      EXPECT_GE(d_ij, 0.0);
      EXPECT_LE(d_ij, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GowerPropertyTest,
                         ::testing::Values(0.0, 0.1, 0.4, 0.8));

// ---------------------------------------------------------------------------
// Miller-Madow MI: symmetric, bounded by plug-in MI, near zero under
// independence across support sizes.
// ---------------------------------------------------------------------------

class MmMiPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(MmMiPropertyTest, EstimatorProperties) {
  auto [support, n] = GetParam();
  Rng rng(support * 101 + n);
  std::vector<int> xs, ys;
  for (size_t i = 0; i < n; ++i) {
    xs.push_back(static_cast<int>(rng.NextBounded(support)));
    ys.push_back(static_cast<int>(rng.NextBounded(support)));
  }
  double mm_xy = stats::MutualInformationMM(xs, ys);
  double mm_yx = stats::MutualInformationMM(ys, xs);
  EXPECT_NEAR(mm_xy, mm_yx, 1e-9);  // hash-order float summation jitter
  EXPECT_LE(mm_xy, stats::MutualInformation(xs, ys) + 1e-12);
  EXPECT_GE(mm_xy, 0.0);
  // Independent draws: corrected MI should be (near) zero.
  EXPECT_LT(stats::NormalizedMutualInformationMM(xs, ys), 0.05);
  // Perfect dependence survives the correction.
  EXPECT_GT(stats::NormalizedMutualInformationMM(xs, xs), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MmMiPropertyTest,
                         ::testing::Values(std::make_tuple(2, 200),
                                           std::make_tuple(4, 500),
                                           std::make_tuple(8, 1000),
                                           std::make_tuple(16, 2000)));

// ---------------------------------------------------------------------------
// Predicate algebra: Evaluate distributes over selection intersection.
// ---------------------------------------------------------------------------

class PredicatePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PredicatePropertyTest, EvaluateOnEqualsEvaluateIntersect) {
  size_t rows = GetParam();
  TablePtr t = RandomTable(rows, 3, 0.1, rows + 77);
  monet::Conjunction conj;
  conj.Add(monet::Condition::Compare("x", monet::CompareOp::kGt,
                                     Value::Double(0.0)));
  conj.Add(monet::Condition::Compare("n", monet::CompareOp::kLe,
                                     Value::Int(20)));
  // Base: every third row.
  std::vector<uint32_t> base_rows;
  for (uint32_t r = 0; r < rows; r += 3) base_rows.push_back(r);
  SelectionVector base(base_rows);
  auto on_base = *conj.EvaluateOn(*t, base);
  auto full = *conj.Evaluate(*t);
  EXPECT_EQ(on_base, full.Intersect(base));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PredicatePropertyTest,
                         ::testing::Values(30, 100, 500));

}  // namespace
}  // namespace blaeu
