#include "cluster/kselect.h"

#include <algorithm>

#include "cluster/pam.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace blaeu::cluster {

using stats::DistanceMatrix;

Result<KSelectResult> SelectK(const DistanceMatrix& dist,
                              const ClusterFn& cluster_fn,
                              const KSelectOptions& options) {
  const size_t n = dist.size();
  if (n < 2) return Status::Invalid("need at least 2 points to select k");
  size_t k_min = std::max<size_t>(2, options.k_min);
  size_t k_max = std::min(options.k_max, n - 1);
  if (k_min > k_max) {
    return Status::Invalid("empty k range after clamping");
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.counter("cluster.kselect.sweeps")->Increment();
  registry.counter("cluster.kselect.candidates")
      ->Add(static_cast<int64_t>(k_max - k_min + 1));
  ScopedTimer latency(registry.histogram("cluster.kselect.sweep_seconds"));

  KSelectResult out;
  out.best_score = -2.0;  // silhouettes live in [-1, 1]
  for (size_t k = k_min; k <= k_max; ++k) {
    BLAEU_ASSIGN_OR_RETURN(ClusteringResult r, cluster_fn(k));
    std::vector<size_t> sizes = ClusterSizes(r.labels);
    bool degenerate =
        sizes.size() != k ||
        std::any_of(sizes.begin(), sizes.end(),
                    [](size_t s) { return s == 0; });
    double score;
    if (degenerate) {
      score = -1.0;
    } else if (options.monte_carlo) {
      score = stats::MonteCarloSilhouette(
          n, r.labels, [&](size_t i, size_t j) { return dist.At(i, j); },
          options.mc_options);
    } else {
      score = stats::MeanSilhouette(dist, r.labels);
    }
    out.scores.push_back(score);
    if (score > out.best_score) {
      out.best_score = score;
      out.best_k = k;
      out.best = std::move(r);
    }
  }
  return out;
}

Result<KSelectResult> SelectKWithPam(const DistanceMatrix& dist,
                                     const KSelectOptions& options) {
  return SelectK(
      dist, [&](size_t k) { return Pam(dist, k); }, options);
}

}  // namespace blaeu::cluster
