// Quickstart: the 60-second tour of the Blaeu API.
//
// 1. Write a small CSV and import it through the column store.
// 2. Detect themes (vertical clustering).
// 3. Build a data map (horizontal clustering + decision-tree description).
// 4. Zoom into a region and print the implicit SQL query.
//
// Run:  ./quickstart

#include <cstdio>
#include <fstream>

#include "core/explorer.h"
#include "core/render.h"
#include "workloads/hollywood.h"

using namespace blaeu;

int main() {
  // --- 1. A CSV lands on disk (here: the synthetic Hollywood table). ------
  auto data = workloads::MakeHollywood();
  const char* path = "/tmp/blaeu_quickstart_movies.csv";
  {
    std::ofstream out(path);
    Status st = monet::WriteCsv(*data.table, out);
    if (!st.ok()) {
      std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // --- 2. Import and open an exploration session. -------------------------
  core::SessionOptions options;
  options.map.sample_size = 900;  // tiny table: no sampling needed
  core::Explorer explorer(options);
  if (Status st = explorer.LoadCsv(path, "movies"); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto session_or = explorer.OpenSession("movies");
  if (!session_or.ok()) {
    std::fprintf(stderr, "session failed: %s\n",
                 session_or.status().ToString().c_str());
    return 1;
  }
  core::Session* session = *session_or;

  // --- 3. Themes: groups of mutually dependent columns (Figure 1a). -------
  std::printf("%s\n", core::RenderThemeList(session->themes()).c_str());

  // --- 4. The data map of the best theme (Figure 1b). ---------------------
  std::printf("%s\n", core::RenderMap(session->current().map).c_str());
  std::printf("%s\n",
              core::RenderTreemapStrip(session->current().map).c_str());

  // --- 5. Zoom into the largest leaf region and show the implicit SQL. ----
  int biggest = -1;
  size_t best = 0;
  for (int leaf : session->current().map.LeafIds()) {
    size_t count = session->current().map.region(leaf).tuple_count;
    if (count > best) {
      best = count;
      biggest = leaf;
    }
  }
  if (biggest >= 0 && session->Zoom(biggest).ok()) {
    std::printf("After zoom into region %d:\n%s\n", biggest,
                core::RenderMap(session->current().map).c_str());
    std::printf("Implicit query:\n  %s\n\n",
                session->CurrentQuery().ToSql().c_str());
  }

  // --- 6. Everything is reversible. ----------------------------------------
  while (session->history_size() > 1) {
    if (!session->Rollback().ok()) break;
  }
  std::printf("%s\n", core::RenderBreadcrumbs(*session).c_str());
  return 0;
}
