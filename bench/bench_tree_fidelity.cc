// Experiment C5: the interpretability tax of the decision-tree description
// (paper §3: "The downside of our approach is that it induces a loss of
// accuracy: the decision tree only approximates the real partitions
// detected during the clustering step").
//
// Table: CART fidelity to the PAM labels as tree depth grows, for several
// cluster counts, on the Hollywood table (mixed types) and a Gaussian
// mixture. Shallow trees = readable maps but lower fidelity.

#include <cstdio>

#include "cluster/pam.h"
#include "core/preprocess.h"
#include "stats/distance.h"
#include "tree/cart.h"
#include "tree/rules.h"
#include "workloads/gaussian.h"
#include "workloads/hollywood.h"

using namespace blaeu;

namespace {

void Sweep(const char* name, const monet::Table& table, size_t sample_rows) {
  monet::SelectionVector sel = monet::SelectionVector::All(
      std::min(sample_rows, table.num_rows()));
  auto pre = core::Preprocess(table, sel);
  if (!pre.ok()) {
    std::printf("preprocess failed: %s\n", pre.status().ToString().c_str());
    return;
  }
  auto dist = stats::DistanceMatrix::Euclidean(pre->features);

  std::printf("== C5 on %s (%zu rows, %zu features) ==\n", name,
              pre->features.rows(), pre->features.cols());
  std::printf("%6s %8s %12s %10s %10s\n", "k", "depth", "fidelity",
              "leaves", "rules");
  for (size_t k : {2, 3, 4, 6}) {
    auto clustering = cluster::Pam(dist, k);
    if (!clustering.ok()) continue;
    for (size_t depth : {1, 2, 3, 4, 6, 8}) {
      tree::CartOptions opt;
      opt.max_depth = depth;
      opt.min_samples_leaf = 5;
      auto model = tree::CartModel::Train(table, pre->rows,
                                          clustering->labels, opt);
      if (!model.ok()) continue;
      double fidelity = model->Fidelity(table, pre->rows,
                                        clustering->labels);
      std::printf("%6zu %8zu %12.3f %10zu %10zu\n", k, depth, fidelity,
                  model->NumLeaves(), tree::ExtractRules(*model).size());
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Blaeu bench: decision-tree description fidelity (C5)\n\n");
  {
    auto data = workloads::MakeHollywood();
    Sweep("hollywood (mixed types)", *data.table, 900);
  }
  {
    workloads::MixtureSpec spec;
    spec.rows = 1000;
    spec.num_clusters = 4;
    spec.dims = 6;
    spec.separation = 6.0;
    auto data = workloads::MakeGaussianMixture(spec);
    Sweep("gaussian-4", *data.table, 1000);
  }
  std::printf("Expected shape: fidelity rises with depth and saturates; "
              "depth 3-4 already approximates the clustering well (the "
              "paper's \"loss of accuracy\" stays small), while depth 1-2 "
              "pays a visible tax for extreme readability.\n");
  return 0;
}
