#include "core/preprocess.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <unordered_map>

#include "common/parallel.h"
#include "common/string_util.h"
#include "monet/column_stats.h"
#include "stats/normalize.h"

namespace blaeu::core {

using monet::Column;
using monet::ColumnStats;
using monet::DataType;
using monet::Dictionary;
using monet::SelectionVector;
using monet::Table;

std::vector<bool> PreprocessedData::categorical_mask() const {
  std::vector<bool> mask;
  mask.reserve(feature_info.size());
  for (const auto& f : feature_info) mask.push_back(f.is_categorical);
  return mask;
}

size_t PreprocessPlan::ApproxBytes() const {
  size_t bytes = sizeof(PreprocessPlan);
  for (const ColumnPlan& plan : columns) {
    bytes += sizeof(ColumnPlan);
    for (const std::string& c : plan.categories) bytes += c.capacity() + 1;
    for (const auto& [key, value] : plan.code) {
      (void)value;
      bytes += key.capacity() + sizeof(int) + 32;  // node overhead estimate
    }
    // The dictionary itself is owned by the table, not the plan; only the
    // rank vector is plan-private.
    bytes += plan.dict_ranks.capacity() * sizeof(int32_t);
  }
  for (const FeatureInfo& f : feature_info) {
    bytes += sizeof(FeatureInfo) + f.source_name.capacity() +
             f.category.capacity();
  }
  bytes += (used_columns.size() + dropped_keys.size()) * sizeof(size_t);
  return bytes;
}

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// (rendered value, count) pairs ranked count-descending, ties broken by the
/// rendered string ascending — the ordering every category list in the
/// system uses.
using RankedCounts = std::vector<std::pair<std::string, size_t>>;

void RankCounts(RankedCounts* ranked) {
  std::sort(ranked->begin(), ranked->end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
}

/// Top categories of a column over the selection, most frequent first.
///
/// Each type has a fast path that counts on the native payload and renders
/// once per DISTINCT value at the end, instead of materializing a string per
/// cell. Every path produces the same (rendering, count) multiset as the
/// generic string path, so the ranked output is byte-identical:
///  - strings: one dense counter slot per dictionary code;
///  - int64: value-keyed (std::to_string is injective on int64);
///  - double: bit-pattern-keyed per row, then merged by rendering (%.6g is
///    NOT injective, so distinct bit patterns can share one category);
///  - bool: two slots.
std::vector<std::string> TopCategories(const Column& col,
                                       const SelectionVector& sel,
                                       size_t max_categories,
                                       bool use_dictionary) {
  RankedCounts ranked;
  if (!use_dictionary) {
    std::unordered_map<std::string, size_t> counts;
    for (uint32_t r : sel.rows()) {
      if (!col.IsNull(r)) ++counts[col.GetValue(r).ToString()];
    }
    ranked.assign(counts.begin(), counts.end());
  } else if (col.type() == DataType::kString) {
    const std::vector<int32_t>& codes = col.codes();
    const Dictionary& dict = *col.dictionary();
    std::vector<size_t> counts(dict.size(), 0);
    for (uint32_t r : sel.rows()) {
      const int32_t c = codes[r];
      if (c != Dictionary::kNullCode) ++counts[static_cast<size_t>(c)];
    }
    for (size_t code = 0; code < counts.size(); ++code) {
      if (counts[code] > 0) {
        ranked.emplace_back(dict.value(static_cast<int32_t>(code)),
                            counts[code]);
      }
    }
  } else if (col.type() == DataType::kInt64) {
    std::unordered_map<int64_t, size_t> counts;
    for (uint32_t r : sel.rows()) {
      if (!col.IsNull(r)) ++counts[col.ints()[r]];
    }
    for (const auto& [v, n] : counts) ranked.emplace_back(std::to_string(v), n);
  } else if (col.type() == DataType::kDouble) {
    std::unordered_map<uint64_t, size_t> bit_counts;
    for (uint32_t r : sel.rows()) {
      if (col.IsNull(r)) continue;
      uint64_t bits;
      const double d = col.doubles()[r];
      std::memcpy(&bits, &d, sizeof(bits));
      ++bit_counts[bits];
    }
    std::unordered_map<std::string, size_t> merged;
    for (const auto& [bits, n] : bit_counts) {
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      merged[FormatDouble(d)] += n;
    }
    ranked.assign(merged.begin(), merged.end());
  } else {  // kBool
    size_t counts[2] = {0, 0};
    for (uint32_t r : sel.rows()) {
      if (!col.IsNull(r)) ++counts[col.bools()[r] ? 1 : 0];
    }
    if (counts[1] > 0) ranked.emplace_back("true", counts[1]);
    if (counts[0] > 0) ranked.emplace_back("false", counts[0]);
  }
  RankCounts(&ranked);
  std::vector<std::string> out;
  for (size_t i = 0; i < ranked.size() && i < max_categories; ++i) {
    out.push_back(std::move(ranked[i].first));
  }
  return out;
}

}  // namespace

Result<PreprocessPlan> PlanPreprocess(const Table& table,
                                      const SelectionVector& sel,
                                      const PreprocessOptions& options) {
  if (sel.empty()) return Status::Invalid("empty selection");
  PreprocessPlan out;
  out.encoding = options.encoding;

  std::vector<size_t> keys;
  if (options.remove_primary_keys) {
    // Key detection scans the whole table (not the selection), so a caller
    // that already knows the answer for this (table, columns) pair can pass
    // it back in without changing the output.
    keys = options.known_primary_keys != nullptr
               ? *options.known_primary_keys
               : monet::DetectPrimaryKeyColumns(table);
  }
  out.dropped_keys = keys;
  auto is_key = [&](size_t c) {
    return std::find(keys.begin(), keys.end(), c) != keys.end();
  };

  // Planning only compares `distinct` against small thresholds and reads the
  // moments, so the stats pass can stop counting distincts past the largest
  // threshold it will be compared to.
  const size_t distinct_cap =
      std::max<size_t>(options.categorical_distinct_threshold, 1);

  // Each column's plan (stats, category ranking, normalizer fit) is a full
  // pass over the selection and independent of the others, so columns are
  // planned in parallel and collected in schema order afterwards.
  const size_t num_columns = table.num_columns();
  std::vector<std::optional<ColumnPlan>> column_plans(num_columns);
  ParallelFor(
      0, num_columns, 1,
      [&](size_t col_lo, size_t col_hi) {
        for (size_t c = col_lo; c < col_hi; ++c) {
          if (is_key(c)) continue;
          const Column& col = *table.column(c);
          ColumnStats cs =
              options.use_dictionary
                  ? monet::ComputeColumnStatsBounded(col, sel, distinct_cap)
                  : monet::ComputeColumnStats(col, sel);
          if (cs.count == cs.null_count) continue;  // all-null: no encoding
          if (cs.distinct <= 1) continue;           // constant: no signal
          ColumnPlan plan;
          plan.column = c;
          plan.categorical = monet::LooksCategorical(
              col, cs, options.categorical_distinct_threshold);
          if (plan.categorical) {
            plan.categories = TopCategories(col, sel, options.max_categories,
                                            options.use_dictionary);
            if (options.encoding == CategoricalEncoding::kGower) {
              for (size_t i = 0; i < plan.categories.size(); ++i) {
                plan.code[plan.categories[i]] = static_cast<int>(i);
              }
            }
            if (options.use_dictionary &&
                col.type() == DataType::kString) {
              // Code-indexed category ranks: the per-cell fill becomes two
              // array loads. Every kept category is in the dictionary (it
              // was counted from the column).
              plan.dict = col.dictionary();
              plan.dict_ranks.assign(plan.dict->size(), -1);
              for (size_t i = 0; i < plan.categories.size(); ++i) {
                const int32_t code = plan.dict->Find(plan.categories[i]);
                plan.dict_ranks[static_cast<size_t>(code)] =
                    static_cast<int32_t>(i);
              }
            }
          } else {
            std::vector<double> values;
            values.reserve(sel.size());
            for (uint32_t r : sel.rows()) {
              if (!col.IsNull(r)) values.push_back(col.GetNumeric(r));
            }
            plan.normalizer = options.zscore
                                  ? stats::Normalizer::ZScore(values)
                                  : stats::Normalizer::MinMax(values);
            double sum = 0;
            for (double v : values) sum += plan.normalizer.Apply(v);
            plan.impute = values.empty()
                              ? 0.0
                              : sum / static_cast<double>(values.size());
          }
          column_plans[c] = std::move(plan);
        }
      },
      options.num_threads);
  for (size_t c = 0; c < num_columns; ++c) {
    if (!column_plans[c].has_value()) continue;
    out.used_columns.push_back(c);
    out.columns.push_back(std::move(*column_plans[c]));
  }
  if (out.columns.empty()) {
    return Status::Invalid("no usable columns after preprocessing");
  }

  // Feature layout.
  for (const ColumnPlan& plan : out.columns) {
    const std::string& name = table.schema().field(plan.column).name;
    if (!plan.categorical) {
      out.feature_info.push_back({plan.column, name, false, ""});
    } else if (options.encoding == CategoricalEncoding::kDummy) {
      for (const std::string& cat : plan.categories) {
        out.feature_info.push_back({plan.column, name, true, cat});
      }
    } else {
      out.feature_info.push_back({plan.column, name, true, ""});
    }
  }
  return out;
}

namespace {

/// Per-column state resolved once per FillFeatures call, so the row loop
/// never re-derives it: the column pointer, and — when the plan's dictionary
/// is the column's dictionary — the raw code payload for the allocation-free
/// path. `codes` is null when the string path must be used (non-string
/// column, use_dictionary off at plan time, or a column rebuilt with a
/// different dictionary).
struct ColumnFill {
  const ColumnPlan* cp;
  const Column* col;
  const int32_t* codes = nullptr;
};

/// Code -> category rank under a plan, bounds-checked so codes interned
/// after planning read as unranked instead of out-of-bounds.
inline int32_t RankOfCode(const ColumnPlan& cp, int32_t code) {
  if (code < 0 || static_cast<size_t>(code) >= cp.dict_ranks.size()) {
    return -1;
  }
  return cp.dict_ranks[static_cast<size_t>(code)];
}

}  // namespace

Result<PreprocessedData> FillFeatures(const Table& table,
                                      const SelectionVector& sel,
                                      const PreprocessPlan& plan,
                                      size_t num_threads) {
  if (sel.empty()) return Status::Invalid("empty selection");
  for (const ColumnPlan& cp : plan.columns) {
    if (cp.column >= table.num_columns()) {
      return Status::Invalid("preprocess plan does not match the table");
    }
  }
  PreprocessedData out;
  out.rows = sel.rows();
  out.feature_info = plan.feature_info;
  out.used_columns = plan.used_columns;
  out.dropped_keys = plan.dropped_keys;

  const size_t n = sel.size();
  const size_t dims = plan.feature_info.size();
  out.features = stats::Matrix(n, dims);
  const bool gower = plan.encoding == CategoricalEncoding::kGower;

  std::vector<ColumnFill> fills;
  fills.reserve(plan.columns.size());
  for (const ColumnPlan& cp : plan.columns) {
    ColumnFill fill;
    fill.cp = &cp;
    fill.col = table.column(cp.column).get();
    if (cp.categorical && cp.dict != nullptr &&
        fill.col->type() == DataType::kString &&
        fill.col->dictionary() == cp.dict) {
      fill.codes = fill.col->codes().data();
    }
    fills.push_back(fill);
  }

  // Fill one matrix row per selected tuple. Rows are disjoint, so the loop
  // parallelizes with bit-identical output at any thread count.
  ParallelFor(
      0, n, 64,
      [&](size_t row_lo, size_t row_hi) {
        for (size_t i = row_lo; i < row_hi; ++i) {
          uint32_t r = sel[i];
          double* row = out.features.MutableRowPtr(i);
          size_t f = 0;
          for (const ColumnFill& fill : fills) {
            const ColumnPlan& cp = *fill.cp;
            const Column& col = *fill.col;
            if (!cp.categorical) {
              if (col.IsNull(r)) {
                row[f++] = gower ? kNaN : cp.impute;
              } else {
                row[f++] = cp.normalizer.Apply(col.GetNumeric(r));
              }
              continue;
            }
            if (fill.codes != nullptr) {
              // Dictionary fast path: two array loads per cell, no string
              // materialization and no hashing. kNullCode ranks as -1.
              const int32_t rank = RankOfCode(cp, fill.codes[r]);
              if (gower) {
                row[f++] = col.IsNull(r)
                               ? kNaN
                               : (rank >= 0 ? static_cast<double>(rank)
                                            : static_cast<double>(
                                                  cp.categories.size()));
                continue;
              }
              const size_t k = cp.categories.size();
              for (size_t j = 0; j < k; ++j) row[f + j] = 0.0;
              if (rank >= 0) row[f + static_cast<size_t>(rank)] = 1.0;
              f += k;
              continue;
            }
            if (gower) {
              if (col.IsNull(r)) {
                row[f++] = kNaN;
              } else {
                auto it = cp.code.find(col.GetValue(r).ToString());
                // Categories beyond the cap share one overflow code.
                row[f++] = it != cp.code.end()
                               ? static_cast<double>(it->second)
                               : static_cast<double>(cp.code.size());
              }
              continue;
            }
            // Dummy coding: 1 for the matching category, else 0. The null
            // test and cell string are per-row, not per-category.
            const bool is_null = col.IsNull(r);
            const std::string cell =
                is_null ? std::string() : col.GetValue(r).ToString();
            for (const std::string& cat : cp.categories) {
              row[f++] = (!is_null && cell == cat) ? 1.0 : 0.0;
            }
          }
        }
      },
      num_threads);
  return out;
}

Result<PreprocessedData> Preprocess(const Table& table,
                                    const SelectionVector& sel,
                                    const PreprocessOptions& options) {
  std::shared_ptr<const PreprocessPlan> plan = options.reuse_plan;
  if (plan == nullptr) {
    BLAEU_ASSIGN_OR_RETURN(PreprocessPlan fresh,
                           PlanPreprocess(table, sel, options));
    plan = std::make_shared<const PreprocessPlan>(std::move(fresh));
  }
  if (options.plan_out != nullptr) *options.plan_out = plan;
  return FillFeatures(table, sel, *plan, options.num_threads);
}

}  // namespace blaeu::core
