// Golden-map regression suite: canonical map JSON for fixed-seed workloads
// is pinned in tests/golden/ and compared byte-for-byte. Any change to the
// sampling, preprocessing, clustering, tree or seed-derivation code that
// moves a map shows up here as a readable JSON diff instead of a silent
// behaviour shift.
//
// Regenerating (after an INTENTIONAL map change):
//   BLAEU_REGEN_GOLDEN=1 ./build/golden_map_test
// then review the tests/golden/*.json diff and commit it with the change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/navigation.h"
#include "core/render.h"
#include "workloads/gaussian.h"
#include "workloads/lofar.h"

namespace blaeu::core {
namespace {

#ifndef BLAEU_TESTS_DIR
#error "BLAEU_TESTS_DIR must be defined by the build (see CMakeLists.txt)"
#endif

std::string GoldenPath(const std::string& name) {
  return std::string(BLAEU_TESTS_DIR) + "/golden/" + name;
}

bool RegenMode() {
  const char* env = std::getenv("BLAEU_REGEN_GOLDEN");
  return env != nullptr && *env != '\0';
}

/// Compares `actual` against the fixture (or rewrites it in regen mode).
void CheckGolden(const std::string& fixture, const std::string& actual) {
  const std::string path = GoldenPath(fixture);
  if (RegenMode()) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual << "\n";
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing fixture " << path
                         << " (run with BLAEU_REGEN_GOLDEN=1 to create it)";
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string expected = buf.str();
  // Fixtures end with a trailing newline; the canonical JSON does not.
  if (!expected.empty() && expected.back() == '\n') expected.pop_back();
  EXPECT_EQ(expected, actual)
      << "map drifted from " << path
      << " — if intentional, regenerate with BLAEU_REGEN_GOLDEN=1";
}

SessionOptions FixedOptions() {
  SessionOptions opt;
  opt.map.sample_size = 400;
  opt.map.k_max = 4;
  opt.seed = 42;
  return opt;
}

TEST(GoldenMapTest, GaussianMixtureInitialMap) {
  workloads::MixtureSpec spec;
  spec.rows = 600;
  spec.num_clusters = 3;
  spec.dims = 4;
  spec.with_categorical = true;
  spec.seed = 42;
  auto data = workloads::MakeGaussianMixture(spec);
  auto session = Session::Start(data.table, "mixture", FixedOptions());
  ASSERT_TRUE(session.ok());
  Session s = std::move(session).ValueOrDie();
  CheckGolden("gaussian_map.json", CanonicalMapJson(s.current().map));
}

TEST(GoldenMapTest, GaussianMixtureZoomSequence) {
  // Locks in the whole navigation path, including the state-derived map
  // seeds: zoom into the largest leaf, then the map after rollback.
  workloads::MixtureSpec spec;
  spec.rows = 1200;
  spec.num_clusters = 3;
  spec.dims = 4;
  spec.with_categorical = true;
  spec.seed = 42;
  auto data = workloads::MakeGaussianMixture(spec);
  auto session = Session::Start(data.table, "mixture", FixedOptions());
  ASSERT_TRUE(session.ok());
  Session s = std::move(session).ValueOrDie();
  int biggest = -1;
  size_t biggest_count = 0;
  for (int leaf : s.current().map.LeafIds()) {
    const MapRegion& r = s.current().map.region(leaf);
    if (r.parent >= 0 && r.tuple_count > biggest_count) {
      biggest = leaf;
      biggest_count = r.tuple_count;
    }
  }
  ASSERT_GE(biggest, 0);
  ASSERT_TRUE(s.Zoom(biggest).ok());
  CheckGolden("gaussian_zoom_map.json", CanonicalMapJson(s.current().map));
  ASSERT_TRUE(s.Rollback().ok());
  // After rollback the current map is the initial one again, bit-identical.
  CheckGolden("gaussian_rollback_map.json",
              CanonicalMapJson(s.current().map));
}

TEST(GoldenMapTest, LofarInitialMap) {
  workloads::LofarSpec spec;
  spec.rows = 4000;  // small slice of the paper's catalog, fixed seed
  spec.seed = 42;
  auto data = workloads::MakeLofar(spec);
  auto session = Session::Start(data.table, "lofar", FixedOptions());
  ASSERT_TRUE(session.ok());
  Session s = std::move(session).ValueOrDie();
  CheckGolden("lofar_map.json", CanonicalMapJson(s.current().map));
}

TEST(GoldenMapTest, CanonicalJsonExcludesTimingFields) {
  DataMap map;
  MapRegion root;
  root.id = 0;
  root.tuple_count = 1;
  map.regions.push_back(root);
  map.build_seconds = 123.456;
  std::string canonical = CanonicalMapJson(map);
  EXPECT_EQ(canonical.find("build_seconds"), std::string::npos);
  EXPECT_NE(canonical.find("medoid_row"), std::string::npos);
  // The non-canonical renderer keeps the timing field.
  EXPECT_NE(MapToJson(map).find("build_seconds"), std::string::npos);
}

}  // namespace
}  // namespace blaeu::core
