// Property tests for the map cache's correctness contract: a cache-enabled
// session must be observationally identical (byte-identical canonical map
// JSON, same selections, same history) to a cache-disabled session driven
// through the same navigation sequence — and the cache must be thread-clean
// when shared across concurrent sessions (the TSan job runs this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/map_cache.h"
#include "core/navigation.h"
#include "core/render.h"
#include "workloads/gaussian.h"

namespace blaeu::core {
namespace {

SessionOptions FastOptions(uint64_t seed = 42) {
  SessionOptions opt;
  opt.map.sample_size = 400;
  opt.map.k_max = 4;
  opt.seed = seed;
  return opt;
}

monet::TablePtr MixtureTable(size_t rows, uint64_t seed) {
  workloads::MixtureSpec spec;
  spec.rows = rows;
  spec.num_clusters = 3;
  spec.dims = 4;
  spec.with_categorical = true;
  spec.seed = seed;
  return workloads::MakeGaussianMixture(spec).table;
}

/// Applies one pseudo-random navigation action to both sessions. Decisions
/// are driven by `a`'s state; the test then asserts `b` stayed in lockstep.
void RandomStep(Rng* rng, Session* a, Session* b) {
  const uint64_t dice = rng->NextBounded(10);
  if (dice < 5) {  // zoom into a random leaf big enough to map
    std::vector<int> leaves = a->current().map.LeafIds();
    std::vector<int> viable;
    for (int leaf : leaves) {
      if (a->current().map.region(leaf).parent >= 0 &&
          a->current().map.region(leaf).tuple_count >= 20) {
        viable.push_back(leaf);
      }
    }
    if (viable.empty()) return;
    int target = viable[rng->NextBounded(viable.size())];
    Status sa = a->Zoom(target);
    Status sb = b->Zoom(target);
    ASSERT_EQ(sa.ok(), sb.ok());
    return;
  }
  if (dice < 7) {  // rollback to a random earlier state
    if (a->history_size() <= 1) return;
    size_t target = rng->NextBounded(a->history_size() - 1);
    ASSERT_TRUE(a->RollbackTo(target).ok());
    ASSERT_TRUE(b->RollbackTo(target).ok());
    return;
  }
  // project onto a random theme (which may be the current one)
  size_t theme = rng->NextBounded(a->themes().size());
  Status sa = a->Project(theme);
  Status sb = b->Project(theme);
  ASSERT_EQ(sa.ok(), sb.ok());
}

TEST(MapCachePropertyTest, CachedSessionIsByteIdenticalToUncached) {
  auto table = MixtureTable(1500, /*seed=*/42);
  for (uint64_t trial = 0; trial < 3; ++trial) {
    SessionOptions cached_opt = FastOptions(100 + trial);
    cached_opt.cache_enabled = true;
    SessionOptions uncached_opt = cached_opt;
    uncached_opt.cache_enabled = false;

    auto cached = Session::Start(table, "mixture", cached_opt);
    auto uncached = Session::Start(table, "mixture", uncached_opt);
    ASSERT_TRUE(cached.ok());
    ASSERT_TRUE(uncached.ok());
    Session a = std::move(cached).ValueOrDie();
    Session b = std::move(uncached).ValueOrDie();

    Rng rng(777 + trial);
    for (int step = 0; step < 12; ++step) {
      RandomStep(&rng, &a, &b);
      if (HasFatalFailure()) return;
      ASSERT_EQ(a.history_size(), b.history_size()) << "step " << step;
      ASSERT_EQ(a.current().selection.size(), b.current().selection.size())
          << "step " << step;
      // The load-bearing assertion: every byte of the canonical map JSON
      // (regions, predicates, counts, silhouettes, medoids) matches, so a
      // cache hit is indistinguishable from the build it replaced.
      ASSERT_EQ(CanonicalMapJson(a.current().map),
                CanonicalMapJson(b.current().map))
          << "step " << step << " action " << a.current().action;
    }
    // The exercise must actually have exercised the cache: rollback +
    // revisit sequences produce hits with overwhelming probability here.
    EXPECT_GT(a.stats().cache_hits + a.stats().cache_misses, 0u);
    EXPECT_EQ(b.stats().cache_hits, 0u);
  }
}

TEST(MapCachePropertyTest, RebuildAfterRollbackEqualsCacheHit) {
  // The seed-derivation contract in isolation: the same navigation state
  // rebuilt COLD (cache off) twice yields the same bytes, which is what
  // entitles the cache to memoize per state.
  auto table = MixtureTable(800, /*seed=*/42);
  SessionOptions opt = FastOptions();
  opt.cache_enabled = false;
  auto s1 = Session::Start(table, "mixture", opt);
  auto s2 = Session::Start(table, "mixture", opt);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  Session a = std::move(s1).ValueOrDie();
  Session b = std::move(s2).ValueOrDie();
  std::vector<int> leaves = a.current().map.LeafIds();
  ASSERT_FALSE(leaves.empty());
  ASSERT_TRUE(a.Zoom(leaves[0]).ok());
  ASSERT_TRUE(b.Zoom(leaves[0]).ok());
  ASSERT_TRUE(b.Rollback().ok());
  ASSERT_TRUE(b.Zoom(leaves[0]).ok());  // rebuilt cold, not replayed
  EXPECT_EQ(CanonicalMapJson(a.current().map),
            CanonicalMapJson(b.current().map));
}

TEST(MapCachePropertyTest, ConcurrentSessionsShareOneCacheCleanly) {
  // Several sessions over the same table share one MapCache and navigate
  // concurrently: same keys, cross-session hits, entry re-tagging, and
  // destructor-driven eviction all race here. TSan must stay silent.
  auto table = MixtureTable(1000, /*seed=*/42);
  auto cache = std::make_shared<MapCache>();
  // A "warm" session stays alive for the whole test so every worker's
  // initial map is a guaranteed cross-session hit on its entry.
  SessionOptions warm_opt = FastOptions();
  warm_opt.cache = cache;
  warm_opt.map.num_threads = 1;
  auto warm = Session::Start(table, "mixture", warm_opt);
  ASSERT_TRUE(warm.ok());
  Session warm_session = std::move(warm).ValueOrDie();
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      SessionOptions opt = FastOptions();
      opt.cache = cache;
      // Maps inside a session stay serial so the sessions themselves are
      // the concurrency under test, not the pipeline's pool.
      opt.map.num_threads = 1;
      auto session = Session::Start(table, "mixture", opt);
      if (!session.ok()) {
        failures++;
        return;
      }
      Session s = std::move(session).ValueOrDie();
      Rng rng(900 + t);
      for (int step = 0; step < 6; ++step) {
        std::vector<int> leaves = s.current().map.LeafIds();
        std::vector<int> viable;
        for (int leaf : leaves) {
          if (s.current().map.region(leaf).parent >= 0 &&
              s.current().map.region(leaf).tuple_count >= 20) {
            viable.push_back(leaf);
          }
        }
        if (!viable.empty() && rng.NextBounded(3) != 0) {
          if (!s.Zoom(viable[rng.NextBounded(viable.size())]).ok()) {
            failures++;
          }
        } else if (s.history_size() > 1) {
          if (!s.Rollback().ok()) failures++;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  // The first worker to start shares the warm session's initial-map key, so
  // at least one cross-session hit is guaranteed (usually all four hit, but
  // a worker dying re-tags and releases the entry, so later workers may
  // legitimately rebuild it).
  EXPECT_GT(cache->stats().hits, 0);
  // Each hit re-tagged the entry to the hitting worker, and each worker's
  // death released its entries — so nothing survives the workers.
  EXPECT_EQ(cache->stats().entries, 0u);
  EXPECT_EQ(cache->stats().bytes, 0u);
}

}  // namespace
}  // namespace blaeu::core
