// Lightweight leveled logging to stderr. Off by default above kWarn so that
// examples and benches stay quiet unless asked.
#pragma once

#include <sstream>
#include <string>

namespace blaeu {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Emits one formatted line to stderr if `level` is enabled.
void LogLine(LogLevel level, const std::string& msg);

/// RAII stream that flushes a log line on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace blaeu

#define BLAEU_LOG(level)                                              \
  ::blaeu::internal::LogMessage(::blaeu::LogLevel::level).stream()
