// Dense row-major matrix of doubles: the vector form tuples take after
// preprocessing (Figure 3, first stage).
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace blaeu::stats {

/// \brief Minimal dense matrix. Rows are observations, columns features.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r (contiguous, cols() doubles).
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }
  double* MutableRowPtr(size_t r) { return data_.data() + r * cols_; }

  /// Copy of row r.
  std::vector<double> Row(size_t r) const {
    return {RowPtr(r), RowPtr(r) + cols_};
  }

  const std::vector<double>& data() const { return data_; }

  /// New matrix with only the listed rows (duplicates allowed).
  Matrix TakeRows(const std::vector<size_t>& indices) const {
    Matrix out(indices.size(), cols_);
    for (size_t i = 0; i < indices.size(); ++i) {
      const double* src = RowPtr(indices[i]);
      std::copy(src, src + cols_, out.MutableRowPtr(i));
    }
    return out;
  }

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

}  // namespace blaeu::stats
