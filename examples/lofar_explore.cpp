// LOFAR exploration: the paper's large-scale demo scenario (§4.2).
//
// A 200,000-row radio-source catalog ("100,000s of tuples and several
// dozens variables"). At this scale the mapping engine must stay at
// interaction time, which exercises the paper's two levers: multi-scale
// sampling and CLARA. This example reports the latency of every action.
//
// Run:  ./lofar_explore [rows]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "core/navigation.h"
#include "core/render.h"
#include "workloads/lofar.h"

using namespace blaeu;

int main(int argc, char** argv) {
  workloads::LofarSpec spec;
  if (argc > 1) spec.rows = static_cast<size_t>(std::atoi(argv[1]));

  Timer timer;
  auto data = workloads::MakeLofar(spec);
  std::printf("LOFAR catalog: %zu sources x %zu columns (generated in %.2f s)\n\n",
              data.table->num_rows(), data.table->num_columns(),
              timer.ElapsedSeconds());

  core::SessionOptions options;
  options.themes.dependency.sample_rows = 3000;
  options.map.sample_size = 2000;        // "a few thousand samples"
  options.map.clara_threshold = 1200;    // CLARA beyond this
  options.multiscale_base = 2000;

  timer.Reset();
  auto session_or = core::Session::Start(data.table, "lofar", options);
  if (!session_or.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 session_or.status().ToString().c_str());
    return 1;
  }
  core::Session session = std::move(session_or).ValueOrDie();
  std::printf("[latency] themes + initial map: %.0f ms\n\n",
              timer.ElapsedMillis());
  std::printf("%s\n", core::RenderThemeList(session.themes()).c_str());

  // Map the flux/spectral theme: it should recover the source classes.
  int flux_theme = -1;
  for (const core::Theme& t : session.themes().themes) {
    for (const std::string& name : t.names) {
      if (name == "spectral_index") flux_theme = t.id;
    }
  }
  if (flux_theme >= 0) {
    timer.Reset();
    if (session.SelectTheme(static_cast<size_t>(flux_theme)).ok()) {
      std::printf("[latency] map over the flux theme: %.0f ms  (%s on %zu "
                  "sampled tuples of %zu)\n\n",
                  timer.ElapsedMillis(),
                  session.current().map.algorithm.c_str(),
                  session.current().map.sample_size,
                  session.current().map.total_tuples);
    }
  }
  std::printf("%s\n", core::RenderMap(session.current().map).c_str());

  // How do the detected regions align with the true source classes?
  auto highlight = session.Highlight("source_class");
  if (highlight.ok()) {
    std::printf("%s\n", core::RenderHighlight(*highlight).c_str());
  }

  // Interactive drilling: zoom twice, timing each step.
  for (int step = 0; step < 2; ++step) {
    int biggest = -1;
    size_t best = 0;
    for (int leaf : session.current().map.LeafIds()) {
      if (session.current().map.region(leaf).tuple_count > best) {
        best = session.current().map.region(leaf).tuple_count;
        biggest = leaf;
      }
    }
    if (biggest < 0) break;
    timer.Reset();
    if (!session.Zoom(biggest).ok()) break;
    std::printf("[latency] zoom #%d into region %d (%zu tuples): %.0f ms\n",
                step + 1, biggest, session.current().selection.size(),
                timer.ElapsedMillis());
  }
  std::printf("\nFinal query:\n  %s\n\n",
              session.CurrentQuery().ToSql().c_str());
  std::printf("%s", core::RenderBreadcrumbs(session).c_str());
  return 0;
}
