// Silhouette-driven choice of the number of clusters k: "we generate
// several partitionings with different numbers of clusters, and keep the
// one with the best score" (paper §3).
#pragma once

#include <functional>

#include "common/status.h"
#include "cluster/clustering.h"
#include "stats/distance.h"
#include "stats/silhouette.h"

namespace blaeu::cluster {

/// Options for the k sweep.
struct KSelectOptions {
  size_t k_min = 2;
  size_t k_max = 8;
  /// When true, score each candidate with the Monte-Carlo silhouette
  /// instead of the exact one.
  bool monte_carlo = false;
  stats::MonteCarloSilhouetteOptions mc_options;
  /// Thread budget for the sweep: one task per candidate k
  /// (common/parallel.h: 0 = process default). Defaults to 1 (serial)
  /// because `cluster_fn` must be thread-safe for any other value; the
  /// selected k, labels and scores are identical at any value.
  size_t num_threads = 1;
};

/// \brief Outcome of the sweep.
struct KSelectResult {
  size_t best_k = 0;
  double best_score = 0.0;
  ClusteringResult best;
  /// score[i] is the mean silhouette at k = k_min + i.
  std::vector<double> scores;
};

/// Clusterer under test: produces a partition for a given k.
using ClusterFn = std::function<Result<ClusteringResult>(size_t k)>;

/// Sweeps k in [k_min, min(k_max, n-1)], scoring each partition by mean
/// silhouette under `dist`, and returns the best. Candidates whose realized
/// partition degenerates (empty clusters) score -1.
Result<KSelectResult> SelectK(const stats::DistanceMatrix& dist,
                              const ClusterFn& cluster_fn,
                              const KSelectOptions& options = {});

/// Convenience: SelectK with PAM as the clusterer.
Result<KSelectResult> SelectKWithPam(const stats::DistanceMatrix& dist,
                                     const KSelectOptions& options = {});

}  // namespace blaeu::cluster
