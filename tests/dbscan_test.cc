// Unit tests for DBSCAN and its adaptation into map-ready clusterings.
#include "cluster/dbscan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "stats/metrics.h"

namespace blaeu::cluster {
namespace {

using stats::DistanceMatrix;
using stats::Matrix;

TEST(DbscanTest, FindsTwoBlobsAndNoise) {
  Rng rng(1);
  Matrix data(45, 2);
  std::vector<int> truth;
  for (size_t i = 0; i < 20; ++i) {
    data.At(i, 0) = rng.NextGaussian(0.0, 0.3);
    data.At(i, 1) = rng.NextGaussian(0.0, 0.3);
    truth.push_back(0);
  }
  for (size_t i = 20; i < 40; ++i) {
    data.At(i, 0) = rng.NextGaussian(10.0, 0.3);
    data.At(i, 1) = rng.NextGaussian(0.0, 0.3);
    truth.push_back(1);
  }
  // 5 far-flung noise points.
  for (size_t i = 40; i < 45; ++i) {
    data.At(i, 0) = 100.0 + 20.0 * static_cast<double>(i);
    data.At(i, 1) = -50.0;
    truth.push_back(-1);
  }
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  DbscanOptions opt;
  opt.eps = 1.5;
  opt.min_points = 4;
  auto result = *Dbscan(dist, opt);
  EXPECT_EQ(result.num_clusters, 2u);
  EXPECT_EQ(result.num_noise, 5u);
  for (size_t i = 40; i < 45; ++i) EXPECT_EQ(result.labels[i], -1);
  // Blob members share labels.
  for (size_t i = 1; i < 20; ++i) EXPECT_EQ(result.labels[i], result.labels[0]);
}

TEST(DbscanTest, DetectsNonConvexShape) {
  // Two concentric rings: k-means cannot separate them, DBSCAN can — the
  // "arbitrarily shaped clusters" requirement of paper §3.
  Matrix data(80, 2);
  std::vector<int> truth;
  for (size_t i = 0; i < 40; ++i) {
    double angle = 2.0 * M_PI * static_cast<double>(i) / 40.0;
    data.At(i, 0) = std::cos(angle);
    data.At(i, 1) = std::sin(angle);
    truth.push_back(0);
  }
  for (size_t i = 40; i < 80; ++i) {
    double angle = 2.0 * M_PI * static_cast<double>(i - 40) / 40.0;
    data.At(i, 0) = 6.0 * std::cos(angle);
    data.At(i, 1) = 6.0 * std::sin(angle);
    truth.push_back(1);
  }
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  DbscanOptions opt;
  opt.eps = 1.2;
  opt.min_points = 3;
  auto result = *Dbscan(dist, opt);
  EXPECT_EQ(result.num_clusters, 2u);
  EXPECT_GT(stats::AdjustedRandIndex(result.labels, truth), 0.99);
}

TEST(DbscanTest, AllNoiseWhenEpsTiny) {
  Matrix data(10, 1);
  for (size_t i = 0; i < 10; ++i) data.At(i, 0) = static_cast<double>(i * 10);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  DbscanOptions opt;
  opt.eps = 0.1;
  opt.min_points = 2;
  auto result = *Dbscan(dist, opt);
  EXPECT_EQ(result.num_clusters, 0u);
  EXPECT_EQ(result.num_noise, 10u);
}

TEST(DbscanTest, InvalidOptionsRejected) {
  DistanceMatrix dist(3);
  DbscanOptions bad_eps;
  bad_eps.eps = 0.0;
  EXPECT_FALSE(Dbscan(dist, bad_eps).ok());
  DbscanOptions bad_min;
  bad_min.min_points = 0;
  EXPECT_FALSE(Dbscan(dist, bad_min).ok());
}

TEST(DbscanToClusteringTest, NoiseAttachedToNearestCluster) {
  Matrix data(7, 1);
  for (size_t i = 0; i < 3; ++i) data.At(i, 0) = static_cast<double>(i) * 0.1;
  for (size_t i = 3; i < 6; ++i) {
    data.At(i, 0) = 10.0 + static_cast<double>(i) * 0.1;
  }
  data.At(6, 0) = 9.0;  // noise, closer to the second blob
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  DbscanOptions opt;
  opt.eps = 0.5;
  opt.min_points = 2;
  auto raw = *Dbscan(dist, opt);
  ASSERT_EQ(raw.num_clusters, 2u);
  ASSERT_EQ(raw.labels[6], -1);
  ClusteringResult adapted = DbscanToClustering(raw, dist);
  EXPECT_EQ(adapted.labels[6], adapted.labels[3]);
  EXPECT_EQ(adapted.medoids.size(), 2u);
  std::set<int> labels(adapted.labels.begin(), adapted.labels.end());
  EXPECT_EQ(labels.size(), 2u);  // no -1 anymore
}

TEST(DbscanToClusteringTest, AllNoiseBecomesOneCluster) {
  Matrix data(4, 1);
  for (size_t i = 0; i < 4; ++i) data.At(i, 0) = static_cast<double>(i * 100);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  DbscanOptions opt;
  opt.eps = 0.5;
  opt.min_points = 2;
  auto raw = *Dbscan(dist, opt);
  ClusteringResult adapted = DbscanToClustering(raw, dist);
  for (int l : adapted.labels) EXPECT_EQ(l, 0);
  EXPECT_EQ(adapted.medoids.size(), 1u);
}

}  // namespace
}  // namespace blaeu::cluster
