#include "monet/sort.h"

#include <algorithm>

namespace blaeu::monet {

namespace {

struct KeyColumn {
  const Column* column;
  bool ascending;
};

/// Three-way comparison of two rows under one key; NULLs always last.
int CompareCell(const KeyColumn& key, uint32_t a, uint32_t b) {
  bool an = key.column->IsNull(a);
  bool bn = key.column->IsNull(b);
  if (an && bn) return 0;
  if (an) return 1;   // null after non-null
  if (bn) return -1;
  int cmp;
  if (key.column->type() == DataType::kString) {
    cmp = key.column->StringAt(a).compare(key.column->StringAt(b));
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  } else {
    double x = key.column->GetNumeric(a);
    double y = key.column->GetNumeric(b);
    cmp = x < y ? -1 : (x > y ? 1 : 0);
  }
  return key.ascending ? cmp : -cmp;
}

Result<std::vector<KeyColumn>> ResolveKeys(const Table& table,
                                           const std::vector<SortKey>& keys) {
  if (keys.empty()) return Status::Invalid("no sort keys");
  std::vector<KeyColumn> out;
  out.reserve(keys.size());
  for (const SortKey& key : keys) {
    BLAEU_ASSIGN_OR_RETURN(size_t idx,
                           table.schema().RequireFieldIndex(key.column));
    out.push_back({table.column(idx).get(), key.ascending});
  }
  return out;
}

}  // namespace

Result<SelectionVector> SortIndices(const Table& table,
                                    const SelectionVector& rows,
                                    const std::vector<SortKey>& keys) {
  BLAEU_ASSIGN_OR_RETURN(std::vector<KeyColumn> cols,
                         ResolveKeys(table, keys));
  std::vector<uint32_t> order = rows.rows();
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     for (const KeyColumn& key : cols) {
                       int cmp = CompareCell(key, a, b);
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  return SelectionVector(std::move(order));
}

Result<TablePtr> SortTable(const Table& table, const SelectionVector& rows,
                           const std::vector<SortKey>& keys) {
  BLAEU_ASSIGN_OR_RETURN(SelectionVector order,
                         SortIndices(table, rows, keys));
  return table.Take(order.rows());
}

Result<SelectionVector> TopKIndices(const Table& table,
                                    const SelectionVector& rows,
                                    const std::vector<SortKey>& keys,
                                    size_t k) {
  BLAEU_ASSIGN_OR_RETURN(std::vector<KeyColumn> cols,
                         ResolveKeys(table, keys));
  auto less = [&](uint32_t a, uint32_t b) {
    for (const KeyColumn& key : cols) {
      int cmp = CompareCell(key, a, b);
      if (cmp != 0) return cmp < 0;
    }
    return a < b;  // total order for heap stability
  };
  std::vector<uint32_t> order = rows.rows();
  if (k >= order.size()) return SortIndices(table, rows, keys);
  std::partial_sort(order.begin(), order.begin() + k, order.end(), less);
  order.resize(k);
  return SelectionVector(std::move(order));
}

}  // namespace blaeu::monet
