// Synthetic stand-in for the paper's LOFAR database: "the result of a
// large-scale radio astronomy experiment in the Netherlands ... positional
// and physical properties of light sources (e.g., stars) ... 100,000s of
// tuples and several dozens variables" (paper §4.2). Generates a radio
// source catalog with five planted source classes whose spectral behaviour
// separates them, at a scale that forces the CLARA + multi-scale-sampling
// path.
#pragma once

#include <cstdint>

#include "workloads/dataset.h"

namespace blaeu::workloads {

/// LOFAR generator options.
struct LofarSpec {
  size_t rows = 200000;
  uint64_t seed = 42;
  double missing_rate = 0.01;
};

/// Schema (40 columns): source_id (PK), ra/dec/gal_lat/gal_lon (positions,
/// theme 0), 12 per-band fluxes + spectral index + flux errors (theme 1),
/// shape parameters (major/minor axis, position angle, compactness,
/// theme 2), quality/detection metrics (theme 3), source_class:string
/// (theme 1; the class drives the spectra).
///
/// Planted clusters (truth.row_clusters): 0 steep-spectrum AGN, 1
/// flat-spectrum quasar, 2 star-forming galaxy, 3 pulsar-like compact
/// source, 4 imaging artifact.
Dataset MakeLofar(const LofarSpec& spec = {});

}  // namespace blaeu::workloads
