// Unit tests for silhouette-driven k selection (paper §3, "Number of
// clusters").
#include "cluster/kselect.h"
#include "cluster/pam.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/distance.h"

namespace blaeu::cluster {
namespace {

using stats::DistanceMatrix;
using stats::Matrix;

Matrix PlantedBlobs(size_t k, size_t per, uint64_t seed) {
  Rng rng(seed);
  Matrix data(k * per, 2);
  for (size_t c = 0; c < k; ++c) {
    for (size_t i = 0; i < per; ++i) {
      size_t row = c * per + i;
      data.At(row, 0) = rng.NextGaussian(12.0 * static_cast<double>(c), 0.6);
      data.At(row, 1) =
          rng.NextGaussian(c % 2 == 0 ? 0.0 : 12.0, 0.6);
    }
  }
  return data;
}

TEST(KSelectTest, RecoversPlantedKThree) {
  Matrix data = PlantedBlobs(3, 40, 1);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  KSelectOptions opt;
  opt.k_min = 2;
  opt.k_max = 7;
  auto result = *SelectKWithPam(dist, opt);
  EXPECT_EQ(result.best_k, 3u);
  EXPECT_GT(result.best_score, 0.6);
  EXPECT_EQ(result.scores.size(), 6u);  // k = 2..7
}

TEST(KSelectTest, RecoversPlantedKFive) {
  Matrix data = PlantedBlobs(5, 30, 2);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  KSelectOptions opt;
  opt.k_min = 2;
  opt.k_max = 8;
  auto result = *SelectKWithPam(dist, opt);
  EXPECT_EQ(result.best_k, 5u);
}

TEST(KSelectTest, BestScoreMatchesScoresVector) {
  Matrix data = PlantedBlobs(3, 25, 3);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  KSelectOptions opt;
  opt.k_min = 2;
  opt.k_max = 6;
  auto result = *SelectKWithPam(dist, opt);
  double max_score = *std::max_element(result.scores.begin(),
                                       result.scores.end());
  EXPECT_DOUBLE_EQ(result.best_score, max_score);
  EXPECT_EQ(result.best_k, opt.k_min + (std::max_element(result.scores.begin(),
                                                         result.scores.end()) -
                                        result.scores.begin()));
}

TEST(KSelectTest, MonteCarloAgreesOnWellSeparatedData) {
  Matrix data = PlantedBlobs(4, 200, 4);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  KSelectOptions exact;
  exact.k_min = 2;
  exact.k_max = 6;
  KSelectOptions mc = exact;
  mc.monte_carlo = true;
  mc.mc_options.num_subsamples = 5;
  mc.mc_options.subsample_size = 150;
  auto exact_result = *SelectKWithPam(dist, exact);
  auto mc_result = *SelectKWithPam(dist, mc);
  EXPECT_EQ(exact_result.best_k, 4u);
  EXPECT_EQ(mc_result.best_k, 4u);
}

TEST(KSelectTest, KRangeClampedToN) {
  Matrix data(5, 1);
  for (size_t i = 0; i < 5; ++i) data.At(i, 0) = static_cast<double>(i);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  KSelectOptions opt;
  opt.k_min = 2;
  opt.k_max = 50;  // clamped to n-1 = 4
  auto result = *SelectKWithPam(dist, opt);
  EXPECT_EQ(result.scores.size(), 3u);  // k = 2, 3, 4
}

TEST(KSelectTest, TooFewPointsRejected) {
  DistanceMatrix dist(1);
  EXPECT_FALSE(SelectKWithPam(dist, {}).ok());
}

TEST(KSelectTest, CustomClusterFn) {
  Matrix data = PlantedBlobs(2, 20, 5);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  size_t calls = 0;
  KSelectOptions opt;
  opt.k_min = 2;
  opt.k_max = 4;
  ClusterFn fn = [&](size_t k) -> Result<ClusteringResult> {
    ++calls;
    return Pam(dist, k);
  };
  auto result = *SelectK(dist, fn, opt);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(result.best_k, 2u);
}

}  // namespace
}  // namespace blaeu::cluster
