#include "monet/sampling.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"

namespace blaeu::monet {

namespace {

/// One tally for every sampler so dashboards see total sampling pressure.
void CountSampled(const char* sampler, size_t rows) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.counter("monet.sampling.rows_sampled")
      ->Add(static_cast<int64_t>(rows));
  registry.counter(std::string("monet.sampling.") + sampler + ".draws")
      ->Increment();
}

}  // namespace

SelectionVector UniformSampleIndices(size_t n, size_t k, Rng* rng) {
  std::vector<size_t> picks = rng->SampleWithoutReplacement(n, k);
  std::vector<uint32_t> rows(picks.begin(), picks.end());
  std::sort(rows.begin(), rows.end());
  CountSampled("uniform", rows.size());
  return SelectionVector(std::move(rows));
}

SelectionVector SampleFromSelection(const SelectionVector& base, size_t k,
                                    Rng* rng) {
  if (k >= base.size()) return base;
  std::vector<size_t> picks = rng->SampleWithoutReplacement(base.size(), k);
  std::vector<uint32_t> rows;
  rows.reserve(k);
  for (size_t p : picks) rows.push_back(base[p]);
  std::sort(rows.begin(), rows.end());
  CountSampled("selection", rows.size());
  return SelectionVector(std::move(rows));
}

SelectionVector ReservoirSampleIndices(size_t n, size_t k, Rng* rng) {
  if (k == 0) return SelectionVector();
  std::vector<uint32_t> reservoir;
  reservoir.reserve(std::min(n, k));
  for (size_t i = 0; i < n; ++i) {
    if (i < k) {
      reservoir.push_back(static_cast<uint32_t>(i));
    } else {
      size_t j = rng->NextBounded(i + 1);
      if (j < k) reservoir[j] = static_cast<uint32_t>(i);
    }
  }
  std::sort(reservoir.begin(), reservoir.end());
  CountSampled("reservoir", reservoir.size());
  return SelectionVector(std::move(reservoir));
}

SelectionVector BernoulliSampleIndices(size_t n, double p, Rng* rng) {
  std::vector<uint32_t> rows;
  for (size_t i = 0; i < n; ++i) {
    if (rng->NextBernoulli(p)) rows.push_back(static_cast<uint32_t>(i));
  }
  return SelectionVector(std::move(rows));
}

SelectionVector StratifiedSampleIndices(const std::vector<int>& labels,
                                        size_t k, Rng* rng) {
  // Group rows by stratum.
  std::unordered_map<int, std::vector<uint32_t>> strata;
  for (size_t i = 0; i < labels.size(); ++i) {
    strata[labels[i]].push_back(static_cast<uint32_t>(i));
  }
  const size_t n = labels.size();
  std::vector<uint32_t> out;
  if (n == 0) return SelectionVector();
  for (auto& [label, rows] : strata) {
    // Proportional quota, at least 1 when the budget allows one per stratum.
    size_t quota = static_cast<size_t>(
        static_cast<double>(k) * static_cast<double>(rows.size()) /
        static_cast<double>(n));
    if (quota == 0 && k >= strata.size()) quota = 1;
    quota = std::min(quota, rows.size());
    std::vector<size_t> picks = rng->SampleWithoutReplacement(rows.size(), quota);
    for (size_t p : picks) out.push_back(rows[p]);
  }
  std::sort(out.begin(), out.end());
  return SelectionVector(std::move(out));
}

TablePtr SampleTable(const Table& table, size_t k, Rng* rng) {
  SelectionVector sel = UniformSampleIndices(table.num_rows(), k, rng);
  return table.Take(sel.rows());
}

MultiScaleSampler::MultiScaleSampler(size_t n, size_t base_size,
                                     double growth, Rng* rng) {
  assert(base_size > 0 && growth > 1.0);
  permutation_.resize(n);
  std::iota(permutation_.begin(), permutation_.end(), 0);
  rng->Shuffle(&permutation_);
  double size = static_cast<double>(base_size);
  while (static_cast<size_t>(size) < n) {
    scale_sizes_.push_back(static_cast<size_t>(size));
    size *= growth;
  }
  scale_sizes_.push_back(n);
}

SelectionVector MultiScaleSampler::SampleAtScale(size_t s) const {
  assert(s < scale_sizes_.size());
  std::vector<uint32_t> rows(permutation_.begin(),
                             permutation_.begin() + scale_sizes_[s]);
  std::sort(rows.begin(), rows.end());
  return SelectionVector(std::move(rows));
}

SelectionVector MultiScaleSampler::SampleAtMost(
    const SelectionVector& selection, size_t k) const {
  if (selection.size() <= k) return selection;
  std::unordered_set<uint32_t> member(selection.rows().begin(),
                                      selection.rows().end());
  std::vector<uint32_t> rows;
  rows.reserve(k);
  for (uint32_t row : permutation_) {
    if (member.count(row)) {
      rows.push_back(row);
      if (rows.size() == k) break;
    }
  }
  std::sort(rows.begin(), rows.end());
  CountSampled("multiscale", rows.size());
  return SelectionVector(std::move(rows));
}

}  // namespace blaeu::monet
