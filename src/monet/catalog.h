// Named-table registry: the session-visible face of the storage layer.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "monet/table.h"

namespace blaeu::monet {

/// \brief A registry of named immutable tables.
///
/// One catalog per explorer session; registering a table shares its columns
/// (no copy).
class Catalog {
 public:
  /// Registers `table` under `name`; Invalid if the name is taken.
  Status Register(const std::string& name, TablePtr table);

  /// Replaces or creates the binding.
  void RegisterOrReplace(const std::string& name, TablePtr table);

  /// Fetches a table; KeyError if absent.
  Result<TablePtr> Get(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  /// Removes a binding; KeyError if absent.
  Status Drop(const std::string& name);

  /// Registered names, sorted.
  std::vector<std::string> List() const;

  size_t size() const { return tables_.size(); }

 private:
  std::map<std::string, TablePtr> tables_;
};

}  // namespace blaeu::monet
