#include "obs/export.h"

#include <algorithm>
#include <cstdio>

namespace blaeu::obs {

namespace {

/// Shortest round-trippable-ish decimal; OpenMetrics wants plain floats.
std::string FormatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Label names share the metric-name alphabet but get no blaeu_ prefix.
std::string SanitizeLabelName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out = "_" + out;
  return out;
}

std::string RenderLabels(const MetricLabels& labels,
                         const std::string& extra_key = "",
                         const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += SanitizeLabelName(k);
    out += "=\"" + OpenMetricsEscape(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + OpenMetricsEscape(extra_value) + "\"";
  }
  return out + "}";
}

/// HTML text escaping for the report tables.
std::string HtmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string OpenMetricsName(const std::string& name) {
  std::string out = "blaeu_";
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string OpenMetricsEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string ToOpenMetrics(const MetricsSnapshot& snapshot,
                          const MetricLabels& labels) {
  std::string out;
  const std::string plain_labels = RenderLabels(labels);
  for (const auto& [name, value] : snapshot.counters) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " counter\n";
    out += om + "_total" + plain_labels + " " +
           std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " gauge\n";
    out += om + plain_labels + " " + FormatValue(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " summary\n";
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", h.p50}, {"0.95", h.p95}, {"0.99", h.p99}};
    for (const auto& [q, v] : quantiles) {
      out += om + RenderLabels(labels, "quantile", q) + " " + FormatValue(v) +
             "\n";
    }
    out += om + "_sum" + plain_labels + " " + FormatValue(h.sum) + "\n";
    out += om + "_count" + plain_labels + " " +
           std::to_string(static_cast<long long>(h.count)) + "\n";
  }
  out += "# EOF\n";
  return out;
}

std::string ToOpenMetrics(const MetricsRegistry& registry,
                          const MetricLabels& labels) {
  return ToOpenMetrics(registry.Snapshot(), labels);
}

std::string ToHtmlReport(const MetricsSnapshot& snapshot,
                         const std::string& title) {
  std::string out;
  out +=
      "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>" +
      HtmlEscape(title) +
      "</title>\n<style>\n"
      "body{font-family:system-ui,sans-serif;margin:2em;color:#222}\n"
      "h1{font-size:1.4em}h2{font-size:1.1em;margin-top:2em}\n"
      "table{border-collapse:collapse;min-width:40em}\n"
      "th,td{border:1px solid #ccc;padding:0.3em 0.7em;text-align:right}\n"
      "th{background:#f0f0f0}td.name,th.name{text-align:left;"
      "font-family:monospace}\n"
      ".bar{background:#4a78c5;height:1em;display:inline-block;"
      "min-width:2px}\n"
      ".lane{background:#f4f4f4;width:28em;display:inline-block}\n"
      "</style>\n</head>\n<body>\n<h1>" +
      HtmlEscape(title) + "</h1>\n";

  // Stage waterfall from the per-stage latency histograms, in pipeline
  // order (any unknown stage name falls to the end alphabetically).
  const char* kPipelineOrder[] = {"sample",   "preprocess", "cluster",
                                  "describe", "assemble",   "count"};
  const std::string prefix = "core.map.stage.";
  const std::string suffix = "_seconds";
  std::vector<std::pair<std::string, HistogramSnapshot>> stages;
  for (const auto& [name, h] : snapshot.histograms) {
    if (name.rfind(prefix, 0) != 0 || h.count == 0) continue;
    std::string stage = name.substr(prefix.size());
    if (stage.size() > suffix.size() &&
        stage.compare(stage.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      stage = stage.substr(0, stage.size() - suffix.size());
    }
    stages.emplace_back(stage, h);
  }
  std::sort(stages.begin(), stages.end(), [&](const auto& a, const auto& b) {
    auto rank = [&](const std::string& s) {
      for (size_t i = 0; i < 6; ++i) {
        if (s == kPipelineOrder[i]) return i;
      }
      return size_t{6};
    };
    size_t ra = rank(a.first), rb = rank(b.first);
    return ra != rb ? ra < rb : a.first < b.first;
  });
  if (!stages.empty()) {
    double max_p50 = 0.0;
    for (const auto& [_, h] : stages) max_p50 = std::max(max_p50, h.p50);
    out += "<h2>Stage waterfall (p50)</h2>\n<table>\n"
           "<tr><th class=\"name\">stage</th><th>p50 ms</th><th>p95 ms</th>"
           "<th>builds</th><th class=\"name\">share</th></tr>\n";
    for (const auto& [stage, h] : stages) {
      const int width =
          max_p50 > 0.0
              ? std::max(1, static_cast<int>(100.0 * h.p50 / max_p50))
              : 1;
      char row[512];
      std::snprintf(row, sizeof(row),
                    "<tr><td class=\"name\">%s</td><td>%.3f</td>"
                    "<td>%.3f</td><td>%llu</td><td class=\"name\">"
                    "<span class=\"lane\"><span class=\"bar\" "
                    "style=\"width:%d%%\"></span></span></td></tr>\n",
                    HtmlEscape(stage).c_str(), h.p50 * 1e3, h.p95 * 1e3,
                    static_cast<unsigned long long>(h.count), width);
      out += row;
    }
    out += "</table>\n";
  }

  if (!snapshot.histograms.empty()) {
    out += "<h2>Latency &amp; size histograms</h2>\n<table>\n"
           "<tr><th class=\"name\">histogram</th><th>count</th><th>mean</th>"
           "<th>p50</th><th>p95</th><th>p99</th><th>min</th><th>max</th>"
           "</tr>\n";
    for (const auto& [name, h] : snapshot.histograms) {
      char row[512];
      std::snprintf(row, sizeof(row),
                    "<tr><td class=\"name\">%s</td><td>%llu</td>"
                    "<td>%.6g</td><td>%.6g</td><td>%.6g</td><td>%.6g</td>"
                    "<td>%.6g</td><td>%.6g</td></tr>\n",
                    HtmlEscape(name).c_str(),
                    static_cast<unsigned long long>(h.count), h.mean(), h.p50,
                    h.p95, h.p99, h.min, h.max);
      out += row;
    }
    out += "</table>\n";
  }

  if (!snapshot.counters.empty()) {
    out += "<h2>Counters</h2>\n<table>\n"
           "<tr><th class=\"name\">counter</th><th>value</th></tr>\n";
    for (const auto& [name, value] : snapshot.counters) {
      out += "<tr><td class=\"name\">" + HtmlEscape(name) + "</td><td>" +
             std::to_string(value) + "</td></tr>\n";
    }
    out += "</table>\n";
  }

  if (!snapshot.gauges.empty()) {
    out += "<h2>Gauges</h2>\n<table>\n"
           "<tr><th class=\"name\">gauge</th><th>value</th></tr>\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out += "<tr><td class=\"name\">" + HtmlEscape(name) + "</td><td>" +
             FormatValue(value) + "</td></tr>\n";
    }
    out += "</table>\n";
  }

  out += "</body>\n</html>\n";
  return out;
}

std::string ToHtmlReport(const MetricsRegistry& registry,
                         const std::string& title) {
  return ToHtmlReport(registry.Snapshot(), title);
}

}  // namespace blaeu::obs
