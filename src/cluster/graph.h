// Weighted undirected graphs. Blaeu's dependency graph (Figure 2) is one of
// these: vertices are columns, edge weights are statistical dependencies.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace blaeu::cluster {

/// \brief Dense weighted undirected graph with named vertices.
class Graph {
 public:
  /// Creates an empty graph (0 vertices).
  Graph() = default;
  /// Creates a graph with `n` vertices and no edges (weight 0).
  explicit Graph(size_t n);
  /// Creates a graph with the given vertex names.
  explicit Graph(std::vector<std::string> names);

  size_t num_vertices() const { return names_.size(); }
  const std::string& name(size_t v) const { return names_[v]; }
  const std::vector<std::string>& names() const { return names_; }

  /// Sets the symmetric edge weight (0 erases the edge).
  void SetWeight(size_t u, size_t v, double w);
  double Weight(size_t u, size_t v) const;

  /// Number of edges with weight > threshold.
  size_t CountEdges(double threshold = 0.0) const;

  /// Connected components over edges with weight > `threshold`; returns a
  /// component id per vertex (0-based, ordered by first occurrence).
  std::vector<int> ConnectedComponents(double threshold) const;

  /// Graphviz DOT rendering; edges below `min_weight` are omitted, edge
  /// thickness scales with weight. `groups` (optional, component/theme id
  /// per vertex) colors vertices by group.
  std::string ToDot(double min_weight = 0.0,
                    const std::vector<int>* groups = nullptr) const;

 private:
  std::vector<std::string> names_;
  std::vector<double> weights_;  ///< dense n x n, symmetric
};

}  // namespace blaeu::cluster
