// Robustness / failure-injection tests: the library must fail cleanly (via
// Status), never crash, on malformed CSV, hostile tables and degenerate
// clustering inputs.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "core/map_builder.h"
#include "core/navigation.h"
#include "core/theme.h"
#include "monet/csv.h"

namespace blaeu {
namespace {

using monet::CsvOptions;
using monet::DataType;
using monet::ReadCsv;
using monet::Schema;
using monet::TableBuilder;
using monet::Value;

TEST(CsvRobustnessTest, RandomJunkNeverCrashes) {
  Rng rng(123);
  const char alphabet[] = "abc123,\"\n\r .-";
  for (int trial = 0; trial < 200; ++trial) {
    std::string junk;
    size_t len = rng.NextBounded(200);
    for (size_t i = 0; i < len; ++i) {
      junk.push_back(alphabet[rng.NextBounded(sizeof(alphabet) - 1)]);
    }
    std::istringstream in(junk);
    auto result = ReadCsv(in);  // must return, never crash
    if (result.ok()) {
      EXPECT_GT((*result)->num_columns(), 0u);
    }
  }
}

TEST(CsvRobustnessTest, PathologicalButValidInputs) {
  // Single cell.
  {
    std::istringstream in("x\n1\n");
    auto t = *ReadCsv(in);
    EXPECT_EQ(t->num_rows(), 1u);
  }
  // Header only: zero data rows.
  {
    std::istringstream in("a,b,c\n");
    auto t = *ReadCsv(in);
    EXPECT_EQ(t->num_rows(), 0u);
    EXPECT_EQ(t->num_columns(), 3u);
  }
  // Very wide row.
  {
    std::string header, row;
    for (int i = 0; i < 500; ++i) {
      if (i) {
        header += ',';
        row += ',';
      }
      header += "c" + std::to_string(i);
      row += std::to_string(i);
    }
    std::istringstream in(header + "\n" + row + "\n");
    auto t = *ReadCsv(in);
    EXPECT_EQ(t->num_columns(), 500u);
  }
  // Quoted field containing the delimiter and escaped quotes at EOF.
  {
    std::istringstream in("a\n\"x,\"\"y\"\"\"");
    auto t = *ReadCsv(in);
    EXPECT_EQ(t->GetValue(0, 0).AsString(), "x,\"y\"");
  }
}

monet::TablePtr OneColumnTable(std::vector<double> values) {
  TableBuilder b(Schema({{"x", DataType::kDouble}}));
  for (double v : values) {
    EXPECT_TRUE(b.AppendRow({Value::Double(v)}).ok());
  }
  return *b.Finish();
}

TEST(MapRobustnessTest, ConstantColumnYieldsTrivialMap) {
  auto t = OneColumnTable(std::vector<double>(50, 7.0));
  auto map = *core::BuildMap(*t);
  EXPECT_EQ(map.regions.size(), 1u);
  EXPECT_EQ(map.algorithm, "trivial");
}

TEST(MapRobustnessTest, TwoDistinctValuesStillMaps) {
  std::vector<double> values;
  for (int i = 0; i < 60; ++i) values.push_back(i % 2 == 0 ? 0.0 : 10.0);
  auto t = OneColumnTable(values);
  auto map = core::BuildMap(*t);
  ASSERT_TRUE(map.ok());
  EXPECT_GE(map->num_clusters, 1u);
}

TEST(MapRobustnessTest, HeavilyNullTableDegradesGracefully) {
  TableBuilder b(Schema({{"x", DataType::kDouble},
                         {"y", DataType::kDouble}}));
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    // 80% nulls.
    Value x = rng.NextBernoulli(0.8) ? Value::Null()
                                     : Value::Double(rng.NextGaussian());
    Value y = rng.NextBernoulli(0.8) ? Value::Null()
                                     : Value::Double(rng.NextGaussian());
    ASSERT_TRUE(b.AppendRow({x, y}).ok());
  }
  auto t = *b.Finish();
  auto map = core::BuildMap(*t);
  ASSERT_TRUE(map.ok());  // must not crash or error
}

TEST(ThemeRobustnessTest, AllKeyColumnsRejectedCleanly) {
  TableBuilder b(Schema({{"user_id", DataType::kInt64}}));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(b.AppendRow({Value::Int(i)}).ok());
  }
  auto t = *b.Finish();
  auto themes = core::DetectThemes(*t);
  // The only column is a primary key: either cleanly rejected or a
  // degenerate one-theme answer; never a crash.
  if (themes.ok()) {
    EXPECT_LE(themes->size(), 1u);
  } else {
    EXPECT_EQ(themes.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SessionRobustnessTest, SingleRowTable) {
  TableBuilder b(Schema({{"x", DataType::kDouble},
                         {"y", DataType::kDouble}}));
  ASSERT_TRUE(b.AppendRow({Value::Double(1), Value::Double(2)}).ok());
  auto t = *b.Finish();
  // One row: themes degenerate, map trivial — but no crash either way.
  auto session = core::Session::Start(t, "tiny", {});
  if (session.ok()) {
    EXPECT_EQ(session->current().selection.size(), 1u);
  }
}

TEST(SessionRobustnessTest, RepeatedZoomToExhaustion) {
  // Zoom greedily into the smallest region until nothing subdivides; the
  // session must stay consistent throughout.
  TableBuilder b(Schema({{"x", DataType::kDouble},
                         {"y", DataType::kDouble}}));
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(b.AppendRow({Value::Double(rng.NextGaussian()),
                             Value::Double(rng.NextGaussian())})
                    .ok());
  }
  auto t = *b.Finish();
  core::SessionOptions opt;
  opt.map.sample_size = 400;
  auto session = *core::Session::Start(t, "noise", opt);
  for (int depth = 0; depth < 10; ++depth) {
    std::vector<int> leaves = session.current().map.LeafIds();
    int target = -1;
    for (int leaf : leaves) {
      if (session.current().map.region(leaf).tuple_count >= 8) {
        target = leaf;
        break;
      }
    }
    if (target < 0 || session.current().map.regions.size() <= 1) break;
    Status st = session.Zoom(target);
    if (!st.ok()) break;  // acceptable: region too small to re-map
    EXPECT_GT(session.current().selection.size(), 0u);
  }
  // Unwind completely.
  while (session.history_size() > 1) {
    ASSERT_TRUE(session.Rollback().ok());
  }
  EXPECT_EQ(session.current().selection.size(), 400u);
}

}  // namespace
}  // namespace blaeu
