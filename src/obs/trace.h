// Hierarchical tracing: RAII spans over the map pipeline and query layer.
//
// A Span measures one timed region; nesting is lexical, so a span opened
// while another span of the same tracer is live on the same thread becomes
// its child. Finished spans accumulate in the Tracer and export as either
//   - structured JSON (nested children, via blaeu::JsonWriter), or
//   - Chrome trace-event format, loadable in chrome://tracing / Perfetto.
//
// The global tracer is disabled by default so instrumented hot paths cost
// one branch when nobody is looking. Tests and benches construct their own
// Tracer (or enable the global one) and inject it through the options
// structs, e.g. core::MapOptions::tracer.
//
// Span names follow the metric convention (ROADMAP.md "Observability"):
// "core.map.build" > "core.map.sample" > ... Attributes are key=value
// strings ("rows=2000", "k=4") carried into both export formats.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace blaeu::obs {

/// Small stable integer id of the calling thread (Chrome trace wants
/// integers, and std::thread::id does not serialize usefully). Shared by
/// the tracer and the flight recorder so their records correlate.
uint64_t ThisThreadId();

/// \brief One finished (or still open) timed region.
struct SpanRecord {
  std::string name;
  int id = -1;
  int parent = -1;      ///< index into the tracer's record list; -1 = root
  int depth = 0;        ///< 0 for roots
  uint64_t thread = 0;  ///< stable small id of the recording thread
  int64_t start_ns = 0; ///< relative to the tracer epoch
  int64_t duration_ns = -1;  ///< -1 while the span is open
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Span;

/// \brief Collects spans; thread-safe.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-global tracer, disabled until set_enabled(true).
  static Tracer& Global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Copy of all spans recorded so far (open spans have duration_ns == -1).
  std::vector<SpanRecord> Finished() const;

  /// Discards all recorded spans.
  void Clear();

  /// Nested JSON: {"spans":[{"name":...,"start_us":...,"duration_us":...,
  /// "attrs":{...},"children":[...]}]}
  std::string ToJson() const;

  /// Chrome trace-event JSON: {"traceEvents":[{"ph":"X",...}]}. Load the
  /// string as a .json file in chrome://tracing or ui.perfetto.dev.
  std::string ToChromeTrace() const;

 private:
  friend class Span;

  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Opens a span and returns its record index.
  int BeginSpan(const std::string& name, int parent, int depth);
  void EndSpan(int id,
               std::vector<std::pair<std::string, std::string>> attrs);

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

/// \brief RAII handle for one timed region.
///
/// Construction with a null or disabled tracer makes every member a no-op,
/// so call sites do not need their own `if (tracing)` guards.
class Span {
 public:
  /// Opens a span on `tracer` (no-op when null or disabled).
  Span(Tracer* tracer, std::string name);
  /// Opens a span on the global tracer.
  explicit Span(std::string name) : Span(&Tracer::Global(), std::move(name)) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span();

  /// Attaches a key=value attribute, exported with the span.
  void SetAttr(const std::string& key, const std::string& value);
  void SetAttr(const std::string& key, const char* value) {
    SetAttr(key, std::string(value));
  }
  void SetAttr(const std::string& key, int64_t value);
  void SetAttr(const std::string& key, size_t value) {
    SetAttr(key, static_cast<int64_t>(value));
  }
  void SetAttr(const std::string& key, int value) {
    SetAttr(key, static_cast<int64_t>(value));
  }
  void SetAttr(const std::string& key, double value);

  /// True when this span is actually recording.
  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;  ///< null when inactive
  int id_ = -1;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

}  // namespace blaeu::obs
