// Unit tests for CSV import/export and type inference.
#include "monet/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace blaeu::monet {
namespace {

Result<TablePtr> Parse(const std::string& text, CsvOptions options = {}) {
  std::istringstream in(text);
  return ReadCsv(in, options);
}

TEST(CsvTest, InfersTypesPerColumn) {
  auto t = *Parse("a,b,c,d\n1,1.5,hello,true\n2,2.5,world,false\n");
  EXPECT_EQ(t->schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(t->schema().field(1).type, DataType::kDouble);
  EXPECT_EQ(t->schema().field(2).type, DataType::kString);
  EXPECT_EQ(t->schema().field(3).type, DataType::kBool);
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST(CsvTest, IntWidensToDouble) {
  auto t = *Parse("x\n1\n2.5\n3\n");
  EXPECT_EQ(t->schema().field(0).type, DataType::kDouble);
  EXPECT_DOUBLE_EQ(t->column(0)->doubles()[0], 1.0);
}

TEST(CsvTest, MixedWithStringBecomesString) {
  auto t = *Parse("x\n1\nabc\n");
  EXPECT_EQ(t->schema().field(0).type, DataType::kString);
}

TEST(CsvTest, BoolMixedWithNumberBecomesString) {
  auto t = *Parse("x\ntrue\n3\n");
  EXPECT_EQ(t->schema().field(0).type, DataType::kString);
}

TEST(CsvTest, NullTokens) {
  auto t = *Parse("x,y\n1,NA\n,2\nNULL,3\n");
  EXPECT_EQ(t->schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(t->column(0)->null_count(), 2u);
  EXPECT_EQ(t->column(1)->null_count(), 1u);
}

TEST(CsvTest, AllNullColumnIsString) {
  auto t = *Parse("x\nNA\nNA\n");
  EXPECT_EQ(t->schema().field(0).type, DataType::kString);
  EXPECT_EQ(t->column(0)->null_count(), 2u);
}

TEST(CsvTest, QuotedFieldsWithDelimitersAndQuotes) {
  auto t = *Parse("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  EXPECT_EQ(t->GetValue(0, 0).AsString(), "x,y");
  EXPECT_EQ(t->GetValue(0, 1).AsString(), "he said \"hi\"");
}

TEST(CsvTest, NoHeaderGeneratesNames) {
  CsvOptions opt;
  opt.has_header = false;
  auto t = *Parse("1,2\n3,4\n", opt);
  EXPECT_EQ(t->schema().field(0).name, "c0");
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions opt;
  opt.delimiter = ';';
  auto t = *Parse("a;b\n1;2\n", opt);
  EXPECT_EQ(t->num_columns(), 2u);
}

TEST(CsvTest, RaggedRowFails) {
  auto r = Parse("a,b\n1,2\n3\n");
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, TypeContradictionAfterInferenceWindowFails) {
  CsvOptions opt;
  opt.inference_rows = 2;
  auto r = Parse("x\n1\n2\nnot_a_number\n", opt);
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(CsvTest, EmptyInputFails) {
  auto r = Parse("");
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, UnterminatedQuoteFails) {
  auto r = Parse("a\n\"oops\n");
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, CrlfTolerated) {
  auto t = *Parse("a,b\r\n1,2\r\n");
  EXPECT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->GetValue(0, 1).AsInt(), 2);
}

TEST(CsvTest, RoundTripPreservesData) {
  auto t1 = *Parse("id,name,score,flag\n1,alpha,1.5,true\n2,\"b,c\",NA,false\n");
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(*t1, out).ok());
  auto t2 = *Parse(out.str());
  ASSERT_EQ(t2->num_rows(), t1->num_rows());
  ASSERT_EQ(t2->num_columns(), t1->num_columns());
  for (size_t r = 0; r < t1->num_rows(); ++r) {
    for (size_t c = 0; c < t1->num_columns(); ++c) {
      EXPECT_EQ(t1->GetValue(r, c), t2->GetValue(r, c))
          << "cell (" << r << "," << c << ")";
    }
  }
}

TEST(CsvTest, FileMissingFails) {
  auto r = ReadCsvFile("/nonexistent/definitely_missing.csv");
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace blaeu::monet
