// Discretization of continuous values into bins, the first step of the
// mutual-information estimator for numeric columns.
#pragma once

#include <vector>

#include "common/status.h"

namespace blaeu::stats {

/// \brief Maps doubles to integer bin ids.
class Discretizer {
 public:
  /// Equal-width bins spanning [min, max] of the observed values. Values
  /// outside the fitted range clamp to the first/last bin. Degenerate input
  /// (all equal) yields a single bin.
  static Discretizer EqualWidth(const std::vector<double>& values,
                                size_t num_bins);

  /// Equal-frequency (quantile) bins: each bin receives roughly the same
  /// number of training values. Duplicate cut points are merged, so the
  /// realized bin count can be lower than requested.
  static Discretizer EqualFrequency(const std::vector<double>& values,
                                    size_t num_bins);

  /// Bin id for one value, in [0, num_bins()).
  int Bin(double v) const;

  /// Bin ids for a batch.
  std::vector<int> BinAll(const std::vector<double>& values) const;

  /// Realized number of bins (>= 1).
  size_t num_bins() const { return cuts_.size() + 1; }

  /// Upper cut points (ascending); bin i covers (cuts[i-1], cuts[i]].
  const std::vector<double>& cuts() const { return cuts_; }

 private:
  std::vector<double> cuts_;
};

}  // namespace blaeu::stats
