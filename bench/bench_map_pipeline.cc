// Experiment C1 / F3: map-construction latency.
//
// The paper's claim: through sampling (a few thousand tuples per map) and
// CLARA, Blaeu stays at interaction time regardless of table size. This
// bench sweeps the LOFAR table size and compares:
//   - sampled maps (sample_size = 2000, the paper's operating point)
//   - unsampled maps (the whole selection is clustered)
// The sampled latency should stay flat; the unsampled one grows.
// google-benchmark binary: run with --benchmark_filter=... to narrow.

#include <benchmark/benchmark.h>

#include "core/map_builder.h"
#include "workloads/lofar.h"

using namespace blaeu;

namespace {

/// Cache of generated tables so each size is generated once.
const workloads::Dataset& LofarCached(size_t rows) {
  static std::map<size_t, workloads::Dataset>* cache =
      new std::map<size_t, workloads::Dataset>();
  auto it = cache->find(rows);
  if (it == cache->end()) {
    workloads::LofarSpec spec;
    spec.rows = rows;
    it = cache->emplace(rows, workloads::MakeLofar(spec)).first;
  }
  return it->second;
}

std::vector<std::string> FluxColumns(const monet::Table& table) {
  std::vector<std::string> cols;
  for (const auto& f : table.schema().fields()) {
    if (f.name.rfind("flux_", 0) == 0 || f.name == "spectral_index") {
      cols.push_back(f.name);
    }
  }
  return cols;
}

void BM_MapSampled(benchmark::State& state) {
  const auto& data = LofarCached(static_cast<size_t>(state.range(0)));
  auto columns = FluxColumns(*data.table);
  core::MapOptions opt;
  opt.sample_size = 2000;  // paper operating point
  opt.fixed_k = 4;
  uint64_t seed = 1;
  for (auto _ : state) {
    opt.seed = seed++;
    auto map = core::BuildMap(
        *data.table, monet::SelectionVector::All(data.table->num_rows()),
        columns, opt);
    if (!map.ok()) state.SkipWithError(map.status().ToString().c_str());
    benchmark::DoNotOptimize(map);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

void BM_MapUnsampled(benchmark::State& state) {
  const auto& data = LofarCached(static_cast<size_t>(state.range(0)));
  auto columns = FluxColumns(*data.table);
  core::MapOptions opt;
  opt.sample_size = 0;  // cluster everything (CLARA beyond the threshold)
  opt.fixed_k = 4;
  uint64_t seed = 1;
  for (auto _ : state) {
    opt.seed = seed++;
    auto map = core::BuildMap(
        *data.table, monet::SelectionVector::All(data.table->num_rows()),
        columns, opt);
    if (!map.ok()) state.SkipWithError(map.status().ToString().c_str());
    benchmark::DoNotOptimize(map);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

// The full pipeline stage split at the operating point: preprocessing vs
// clustering vs description is visible via map metadata, so this reports
// the end-to-end figure per table size.
BENCHMARK(BM_MapSampled)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Arg(128000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

BENCHMARK(BM_MapUnsampled)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace

BENCHMARK_MAIN();
