// Parameterized property sweeps across the clustering / silhouette / map
// invariants (TEST_P style, per the repo's testing conventions).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <tuple>

#include "cluster/clara.h"
#include "cluster/kselect.h"
#include "cluster/pam.h"
#include "common/rng.h"
#include "core/map_builder.h"
#include "monet/csv.h"
#include "stats/metrics.h"
#include "stats/silhouette.h"
#include "workloads/gaussian.h"

namespace blaeu {
namespace {

using cluster::Pam;
using stats::DistanceMatrix;
using stats::Matrix;

// ---------------------------------------------------------------------------
// PAM invariants over (n, k, dims).
// ---------------------------------------------------------------------------

class PamPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(PamPropertyTest, Invariants) {
  auto [n, k, dims] = GetParam();
  Rng rng(n * 131 + k * 17 + dims);
  Matrix data(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t f = 0; f < dims; ++f) {
      data.At(i, f) = rng.NextGaussian();
    }
  }
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  auto result = *Pam(dist, k);

  // 1. Exactly k medoids, all distinct, all in range.
  EXPECT_EQ(result.medoids.size(), k);
  std::set<size_t> medoid_set(result.medoids.begin(), result.medoids.end());
  EXPECT_EQ(medoid_set.size(), k);
  for (size_t m : result.medoids) EXPECT_LT(m, n);

  // 2. Labels in range and consistent with nearest-medoid assignment.
  ASSERT_EQ(result.labels.size(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_GE(result.labels[i], 0);
    ASSERT_LT(result.labels[i], static_cast<int>(k));
    double assigned = dist.At(i, result.medoids[result.labels[i]]);
    for (size_t m : result.medoids) {
      EXPECT_LE(assigned, dist.At(i, m) + 1e-9);
    }
  }

  // 3. Every medoid labels itself.
  for (size_t m = 0; m < k; ++m) {
    EXPECT_EQ(result.labels[result.medoids[m]], static_cast<int>(m));
  }

  // 4. Cost is the sum of assigned distances.
  double cost = 0;
  for (size_t i = 0; i < n; ++i) {
    cost += dist.At(i, result.medoids[result.labels[i]]);
  }
  EXPECT_NEAR(result.total_cost, cost, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PamPropertyTest,
    ::testing::Values(std::make_tuple(20, 2, 2), std::make_tuple(50, 3, 4),
                      std::make_tuple(80, 5, 2), std::make_tuple(120, 4, 8),
                      std::make_tuple(40, 8, 3), std::make_tuple(30, 1, 5)));

// ---------------------------------------------------------------------------
// Silhouette bounds under random labelings.
// ---------------------------------------------------------------------------

class SilhouettePropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(SilhouettePropertyTest, AlwaysWithinBounds) {
  auto [n, k] = GetParam();
  Rng rng(n * 7 + k);
  Matrix data(n, 3);
  for (size_t i = 0; i < n; ++i) {
    for (size_t f = 0; f < 3; ++f) data.At(i, f) = rng.NextGaussian();
  }
  std::vector<int> labels(n);
  for (auto& l : labels) l = static_cast<int>(rng.NextBounded(k));
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  std::vector<double> values = stats::SilhouetteValues(dist, labels);
  for (double v : values) {
    EXPECT_GE(v, -1.0 - 1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
  double mean = stats::MeanSilhouette(dist, labels);
  EXPECT_GE(mean, -1.0);
  EXPECT_LE(mean, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SilhouettePropertyTest,
                         ::testing::Values(std::make_tuple(30, 2),
                                           std::make_tuple(60, 3),
                                           std::make_tuple(60, 6),
                                           std::make_tuple(100, 4)));

// ---------------------------------------------------------------------------
// CLARA approximation quality as separation grows.
// ---------------------------------------------------------------------------

class ClaraPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(ClaraPropertyTest, RecoversWellSeparatedMixtures) {
  double separation = GetParam();
  workloads::MixtureSpec spec;
  spec.rows = 1500;
  spec.num_clusters = 3;
  spec.dims = 4;
  spec.separation = separation;
  spec.seed = static_cast<uint64_t>(separation * 100);
  auto data = workloads::MakeGaussianMixture(spec);
  // Build a feature matrix straight from the numeric columns.
  Matrix features(1500, 4);
  for (size_t r = 0; r < 1500; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      features.At(r, c) = data.table->column(c)->doubles()[r];
    }
  }
  auto dist_fn = [&](size_t i, size_t j) {
    return stats::EuclideanDistance(features.RowPtr(i), features.RowPtr(j),
                                    4);
  };
  auto result = *cluster::Clara(1500, dist_fn, 3);
  double ari =
      stats::AdjustedRandIndex(result.labels, data.truth.row_clusters);
  EXPECT_GT(ari, 0.9) << "separation " << separation;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClaraPropertyTest,
                         ::testing::Values(6.0, 8.0, 12.0));

// ---------------------------------------------------------------------------
// Map regions always form a partition-tree regardless of scale.
// ---------------------------------------------------------------------------

class MapPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(MapPropertyTest, RegionTreeInvariants) {
  auto [rows, k] = GetParam();
  workloads::MixtureSpec spec;
  spec.rows = rows;
  spec.num_clusters = k;
  spec.dims = 3;
  spec.seed = rows + k;
  auto data = workloads::MakeGaussianMixture(spec);
  core::MapOptions opt;
  opt.sample_size = 0;  // exact counts
  opt.k_max = 6;
  auto map = *core::BuildMap(*data.table, opt);

  // Root covers everything; children partition parents; leaf labels valid.
  EXPECT_EQ(map.root().tuple_count, rows);
  for (const core::MapRegion& region : map.regions) {
    if (region.is_leaf()) {
      EXPECT_GE(region.cluster_label, 0);
      EXPECT_LT(region.cluster_label,
                static_cast<int>(map.num_clusters));
      continue;
    }
    size_t child_sum = 0;
    for (int c : region.children) {
      child_sum += map.region(c).tuple_count;
      EXPECT_EQ(map.region(c).parent, region.id);
    }
    EXPECT_EQ(child_sum, region.tuple_count);
  }
  // Depth-first ids: children have larger ids than parents.
  for (const core::MapRegion& region : map.regions) {
    for (int c : region.children) EXPECT_GT(c, region.id);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MapPropertyTest,
                         ::testing::Values(std::make_tuple(200, 2),
                                           std::make_tuple(400, 3),
                                           std::make_tuple(600, 4),
                                           std::make_tuple(300, 5)));

// ---------------------------------------------------------------------------
// CSV round-trips across generated tables of varying shape.
// ---------------------------------------------------------------------------

class CsvRoundTripTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(CsvRoundTripTest, WriteReadIdentity) {
  auto [rows, null_rate] = GetParam();
  workloads::MixtureSpec spec;
  spec.rows = rows;
  spec.dims = 3;
  spec.null_rate = null_rate;
  spec.with_categorical = true;
  spec.with_id = true;
  spec.seed = rows + static_cast<uint64_t>(null_rate * 100);
  auto data = workloads::MakeGaussianMixture(spec);

  std::ostringstream out;
  ASSERT_TRUE(monet::WriteCsv(*data.table, out).ok());
  std::istringstream in(out.str());
  auto reread = *monet::ReadCsv(in);
  ASSERT_EQ(reread->num_rows(), data.table->num_rows());
  ASSERT_EQ(reread->num_columns(), data.table->num_columns());
  for (size_t r = 0; r < rows; r += 7) {
    for (size_t c = 0; c < data.table->num_columns(); ++c) {
      monet::Value original = data.table->GetValue(r, c);
      monet::Value round = reread->GetValue(r, c);
      if (original.is_null()) {
        EXPECT_TRUE(round.is_null());
      } else if (original.type() == monet::DataType::kDouble) {
        // Doubles go through %.6g formatting: compare loosely.
        EXPECT_NEAR(original.AsDouble(), round.AsDouble(),
                    std::abs(original.AsDouble()) * 1e-5 + 1e-9);
      } else {
        EXPECT_EQ(original.ToString(), round.ToString());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CsvRoundTripTest,
                         ::testing::Values(std::make_tuple(50, 0.0),
                                           std::make_tuple(120, 0.1),
                                           std::make_tuple(200, 0.3)));

// ---------------------------------------------------------------------------
// k-selection recovers the planted k across mixture sizes.
// ---------------------------------------------------------------------------

class KSelectPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(KSelectPropertyTest, FindsPlantedK) {
  auto [planted_k, rows] = GetParam();
  workloads::MixtureSpec spec;
  spec.rows = rows;
  spec.num_clusters = planted_k;
  spec.dims = 4;
  spec.separation = 10.0;
  spec.seed = planted_k * 1000 + rows;
  auto data = workloads::MakeGaussianMixture(spec);
  Matrix features(rows, 4);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      features.At(r, c) = data.table->column(c)->doubles()[r];
    }
  }
  DistanceMatrix dist = DistanceMatrix::Euclidean(features);
  cluster::KSelectOptions opt;
  opt.k_min = 2;
  opt.k_max = 7;
  auto result = *cluster::SelectKWithPam(dist, opt);
  EXPECT_EQ(result.best_k, planted_k);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KSelectPropertyTest,
                         ::testing::Values(std::make_tuple(2, 150),
                                           std::make_tuple(3, 150),
                                           std::make_tuple(4, 200),
                                           std::make_tuple(5, 250)));

}  // namespace
}  // namespace blaeu
