// Entropy and mutual information over discrete label sequences. MI is
// Blaeu's column-dependency measure: "it copes with mixed values and it is
// sensitive to non-linear relationships" (paper §3).
#pragma once

#include <cstdint>
#include <vector>

namespace blaeu::stats {

/// Shannon entropy (nats) of a label sequence.
double Entropy(const std::vector<int>& labels);

/// Joint entropy H(X, Y). The sequences must have equal length.
double JointEntropy(const std::vector<int>& xs, const std::vector<int>& ys);

/// Mutual information I(X;Y) = H(X) + H(Y) - H(X,Y), clamped at >= 0.
double MutualInformation(const std::vector<int>& xs,
                         const std::vector<int>& ys);

/// MI normalized to [0, 1] by sqrt(H(X) * H(Y)); 0 when either marginal
/// entropy is 0 (a constant column carries no dependency signal).
double NormalizedMutualInformation(const std::vector<int>& xs,
                                   const std::vector<int>& ys);

/// Bias-corrected mutual information (Miller-Madow): the plug-in MI of two
/// independent variables is positively biased by roughly
/// (Kx*Ky - Kx - Ky + 1) / (2n); this subtracts that term (clamped at 0).
/// Use for dependency estimation on sampled rows, where the bias would
/// otherwise drown weak structure.
double MutualInformationMM(const std::vector<int>& xs,
                           const std::vector<int>& ys);

/// Normalized Miller-Madow MI in [0, 1] (sqrt normalization with plug-in
/// marginal entropies).
double NormalizedMutualInformationMM(const std::vector<int>& xs,
                                     const std::vector<int>& ys);

/// Pearson correlation of two equal-length numeric sequences; 0 for
/// degenerate (constant) inputs. Provided as the ablation alternative to MI.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Spearman rank correlation (Pearson on average ranks).
double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys);

}  // namespace blaeu::stats
