// Unit tests for the preprocessing stage (Figure 3, first box).
#include "core/preprocess.h"

#include <gtest/gtest.h>

#include <cmath>

namespace blaeu::core {
namespace {

using monet::DataType;
using monet::Schema;
using monet::SelectionVector;
using monet::TableBuilder;
using monet::TablePtr;
using monet::Value;

TablePtr MixedTable() {
  TableBuilder b(Schema({{"user_id", DataType::kInt64},
                         {"income", DataType::kDouble},
                         {"genre", DataType::kString},
                         {"hours", DataType::kDouble}}));
  const char* genres[] = {"a", "b", "a", "c", "b", "a"};
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(b.AppendRow({Value::Int(i), Value::Double(10.0 + i),
                             Value::Str(genres[i]),
                             Value::Double(40.0 - 2.0 * i)})
                    .ok());
  }
  return *b.Finish();
}

TEST(PreprocessTest, DropsPrimaryKeys) {
  auto t = MixedTable();
  auto pre = *Preprocess(*t, SelectionVector::All(6));
  EXPECT_EQ(pre.dropped_keys, (std::vector<size_t>{0}));
  for (const FeatureInfo& f : pre.feature_info) {
    EXPECT_NE(f.source_name, "user_id");
  }
}

TEST(PreprocessTest, DummyCodingLayout) {
  auto t = MixedTable();
  auto pre = *Preprocess(*t, SelectionVector::All(6));
  // income (1) + genre dummies (3) + hours (1) = 5 features.
  EXPECT_EQ(pre.features.cols(), 5u);
  EXPECT_EQ(pre.features.rows(), 6u);
  size_t dummies = 0;
  for (const FeatureInfo& f : pre.feature_info) {
    if (f.is_categorical) {
      ++dummies;
      EXPECT_EQ(f.source_name, "genre");
      EXPECT_FALSE(f.category.empty());
    }
  }
  EXPECT_EQ(dummies, 3u);
}

TEST(PreprocessTest, DummiesAreOneHot) {
  auto t = MixedTable();
  auto pre = *Preprocess(*t, SelectionVector::All(6));
  for (size_t r = 0; r < pre.features.rows(); ++r) {
    double sum = 0;
    for (size_t f = 0; f < pre.feature_info.size(); ++f) {
      if (pre.feature_info[f].is_categorical) sum += pre.features.At(r, f);
    }
    EXPECT_DOUBLE_EQ(sum, 1.0);  // exactly one dummy set per row
  }
}

TEST(PreprocessTest, ContinuousColumnsZScored) {
  auto t = MixedTable();
  auto pre = *Preprocess(*t, SelectionVector::All(6));
  // Find the income feature and check mean ~ 0, sd ~ 1.
  for (size_t f = 0; f < pre.feature_info.size(); ++f) {
    if (pre.feature_info[f].source_name != "income") continue;
    double sum = 0, sum_sq = 0;
    for (size_t r = 0; r < 6; ++r) {
      sum += pre.features.At(r, f);
      sum_sq += pre.features.At(r, f) * pre.features.At(r, f);
    }
    EXPECT_NEAR(sum / 6.0, 0.0, 1e-9);
    EXPECT_NEAR(sum_sq / 6.0, 1.0, 1e-9);
  }
}

TEST(PreprocessTest, MissingNumericImputedAtMean) {
  TableBuilder b(Schema({{"x", DataType::kDouble},
                         {"y", DataType::kDouble}}));
  ASSERT_TRUE(b.AppendRow({Value::Double(1), Value::Double(5)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Null(), Value::Double(7)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Double(3), Value::Double(9)}).ok());
  auto t = *b.Finish();
  auto pre = *Preprocess(*t, SelectionVector::All(3));
  // Row 1's x is the mean of the normalized non-nulls = 0.
  EXPECT_NEAR(pre.features.At(1, 0), 0.0, 1e-9);
}

TEST(PreprocessTest, GowerEncodingKeepsNaNs) {
  TableBuilder b(Schema({{"x", DataType::kDouble},
                         {"g", DataType::kString}}));
  ASSERT_TRUE(b.AppendRow({Value::Double(1), Value::Str("a")}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Null(), Value::Str("b")}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Double(3), Value::Null()}).ok());
  auto t = *b.Finish();
  PreprocessOptions opt;
  opt.encoding = CategoricalEncoding::kGower;
  auto pre = *Preprocess(*t, SelectionVector::All(3), opt);
  EXPECT_EQ(pre.features.cols(), 2u);  // one feature per column
  EXPECT_TRUE(std::isnan(pre.features.At(1, 0)));
  EXPECT_TRUE(std::isnan(pre.features.At(2, 1)));
  std::vector<bool> mask = pre.categorical_mask();
  EXPECT_FALSE(mask[0]);
  EXPECT_TRUE(mask[1]);
}

TEST(PreprocessTest, ConstantAndAllNullColumnsSkipped) {
  TableBuilder b(Schema({{"constant", DataType::kDouble},
                         {"all_null", DataType::kDouble},
                         {"useful", DataType::kDouble}}));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(b.AppendRow({Value::Double(7), Value::Null(),
                             Value::Double(i)})
                    .ok());
  }
  auto t = *b.Finish();
  auto pre = *Preprocess(*t, SelectionVector::All(4));
  EXPECT_EQ(pre.features.cols(), 1u);
  EXPECT_EQ(pre.feature_info[0].source_name, "useful");
}

TEST(PreprocessTest, CategoryCapSharesOtherBucket) {
  TableBuilder b(Schema({{"g", DataType::kString},
                         {"x", DataType::kDouble}}));
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(b.AppendRow({Value::Str("cat" + std::to_string(i % 20)),
                             Value::Double(i)})
                    .ok());
  }
  auto t = *b.Finish();
  PreprocessOptions opt;
  opt.max_categories = 5;
  auto pre = *Preprocess(*t, SelectionVector::All(40), opt);
  size_t dummies = 0;
  for (const auto& f : pre.feature_info) {
    if (f.is_categorical) ++dummies;
  }
  EXPECT_EQ(dummies, 5u);
}

TEST(PreprocessTest, SelectionRespected) {
  auto t = MixedTable();
  SelectionVector sel({0, 2, 4});
  auto pre = *Preprocess(*t, sel);
  EXPECT_EQ(pre.features.rows(), 3u);
  EXPECT_EQ(pre.rows, sel.rows());
}

TEST(PreprocessTest, EmptySelectionRejected) {
  auto t = MixedTable();
  EXPECT_FALSE(Preprocess(*t, SelectionVector()).ok());
}

TEST(PreprocessTest, SmallDomainNumericTreatedCategorical) {
  TableBuilder b(Schema({{"year", DataType::kInt64},
                         {"x", DataType::kDouble}}));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(b.AppendRow({Value::Int(2007 + (i % 3)),
                             Value::Double(i * 1.1)})
                    .ok());
  }
  auto t = *b.Finish();
  auto pre = *Preprocess(*t, SelectionVector::All(50));
  size_t year_dummies = 0;
  for (const auto& f : pre.feature_info) {
    if (f.source_name == "year") {
      EXPECT_TRUE(f.is_categorical);
      ++year_dummies;
    }
  }
  EXPECT_EQ(year_dummies, 3u);
}

}  // namespace
}  // namespace blaeu::core
