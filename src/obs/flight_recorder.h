// Flight recorder: a fixed-capacity, thread-safe ring buffer of structured
// session events — the durable "what did this session do" record that spans
// (obs/trace.h) and metrics (obs/metrics.h) do not keep.
//
// Events are coarse-grained (one per user-visible action or pipeline
// milestone: map built, cache hit/miss, zoom/project/rollback, query
// executed, error), never per-row, so recording is always on and costs one
// short critical section per event. When the buffer is full the oldest
// event is overwritten; `dropped()` says how many were lost, and the tail
// that survives is exactly what a bug report needs to replay a navigation
// session.
//
// The global recorder is what library instrumentation writes to by default;
// tests and embedders inject their own through the options structs
// (core::MapOptions::flight / core::SessionOptions), exactly like the
// tracer. The REPL's `flightlog [n]` command prints the tail; `flightlog
// dump <path>` writes it as JSON.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace blaeu::obs {

/// \brief What kind of thing happened. Keep coarse: one value per class of
/// user-visible action, not per call site.
enum class FlightEventKind {
  kMapBuilt,     ///< a map came out of the build pipeline
  kCacheHit,     ///< whole-map cache hit
  kCacheMiss,    ///< whole-map cache miss (a build follows)
  kCacheEvict,   ///< cache invalidation (table reload / session close)
  kNavigation,   ///< zoom / project / select_theme / rollback
  kQuery,        ///< a Select-Project query executed
  kLoad,         ///< a table (re-)loaded into the catalog
  kError,        ///< a user-visible operation failed
  kNote,         ///< anything else worth keeping (tests, embedders)
};

/// Stable lowercase name of a kind ("map_built", "cache_hit", ...).
const char* FlightEventKindName(FlightEventKind kind);

/// \brief One recorded event.
struct FlightEvent {
  uint64_t seq = 0;     ///< global sequence number (monotonic, never reused)
  int64_t t_ns = 0;     ///< monotonic time since the recorder's epoch
  FlightEventKind kind = FlightEventKind::kNote;
  std::string name;     ///< what happened, e.g. "core.map.build", "zoom(3)"
  uint64_t thread = 0;  ///< stable small id of the recording thread
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// \brief Fixed-capacity ring buffer of FlightEvents; thread-safe.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 512;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-global recorder (never destroyed), enabled by default.
  static FlightRecorder& Global();

  /// Recording can be switched off entirely (one relaxed load per event).
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one event, overwriting the oldest when full.
  void Record(FlightEventKind kind, std::string name,
              std::vector<std::pair<std::string, std::string>> attrs = {});

  size_t capacity() const { return capacity_; }
  /// Events currently retained (<= capacity()).
  size_t size() const;
  /// Events recorded over the recorder's whole life (including overwritten).
  uint64_t total_recorded() const;
  /// Events lost to overwriting (Clear() does not count).
  uint64_t dropped() const;

  /// The last `n` events, oldest first (n = 0: everything retained).
  std::vector<FlightEvent> Tail(size_t n = 0) const;

  /// JSON dump of Tail(n):
  /// {"capacity":...,"total_recorded":...,"dropped":...,"events":[
  ///   {"seq":...,"t_us":...,"kind":"...","name":"...","thread":...,
  ///    "attrs":{...}}]}
  std::string ToJson(size_t n = 0) const;

  /// Human-readable rendering of Tail(n), one line per event (the REPL's
  /// `flightlog` output).
  std::string ToText(size_t n = 0) const;

  /// Discards every retained event (counters keep running).
  void Clear();

 private:
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{true};

  mutable std::mutex mu_;
  std::vector<FlightEvent> ring_;  ///< fixed size once full; ring semantics
  size_t next_ = 0;                ///< write position when ring_ is full
  uint64_t total_ = 0;             ///< events ever recorded
  uint64_t dropped_ = 0;           ///< events overwritten
};

}  // namespace blaeu::obs
