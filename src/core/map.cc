#include "core/map.h"

namespace blaeu::core {

std::vector<int> DataMap::LeafIds() const {
  std::vector<int> out;
  for (const MapRegion& r : regions) {
    if (r.is_leaf()) out.push_back(r.id);
  }
  return out;
}

Status DataMap::ValidateRegionId(int id) const {
  if (id < 0 || static_cast<size_t>(id) >= regions.size()) {
    return Status::IndexError("region id " + std::to_string(id) +
                              " out of range (map has " +
                              std::to_string(regions.size()) + " regions)");
  }
  return Status::OK();
}

}  // namespace blaeu::core
