// Ablation (DESIGN.md §5): categorical encoding and missing-value handling
// in the preprocessing stage.
//
// The paper's pipeline dummy-codes categoricals and clusters with Euclidean
// distance; the alternative kept in this repo is Gower distance on raw
// mixed features (NaN-aware). This bench compares the two on mixed tables
// with growing missingness: map accuracy (ARI vs planted clusters) and
// latency.

#include <cstdio>

#include "common/timer.h"
#include "core/map_builder.h"
#include "stats/metrics.h"
#include "workloads/gaussian.h"

using namespace blaeu;

namespace {

std::vector<int> MapPartition(const core::DataMap& map,
                              const monet::Table& table) {
  std::vector<int> labels(table.num_rows(), -1);
  int next = 0;
  for (int leaf : map.LeafIds()) {
    auto rows = map.region(leaf).predicate.Evaluate(table);
    if (!rows.ok()) continue;
    for (uint32_t r : rows->rows()) labels[r] = next;
    ++next;
  }
  return labels;
}

}  // namespace

int main() {
  std::printf("Blaeu bench: preprocessing ablation (dummy+Euclidean vs "
              "Gower), mixed data with missing values\n\n");
  std::printf("%10s %12s %14s %12s\n", "null_rate", "encoding",
              "ari_vs_truth", "latency_ms");
  for (double null_rate : {0.0, 0.1, 0.25}) {
    workloads::MixtureSpec spec;
    spec.rows = 1500;
    spec.num_clusters = 3;
    spec.dims = 4;
    spec.separation = 7.0;
    spec.null_rate = null_rate;
    spec.with_categorical = true;
    spec.seed = 11 + static_cast<uint64_t>(null_rate * 100);
    auto data = workloads::MakeGaussianMixture(spec);

    for (auto encoding : {core::CategoricalEncoding::kDummy,
                          core::CategoricalEncoding::kGower}) {
      core::MapOptions opt;
      opt.sample_size = 1000;
      opt.fixed_k = 3;
      opt.preprocess.encoding = encoding;
      Timer timer;
      auto map = core::BuildMap(*data.table, opt);
      double ms = timer.ElapsedMillis();
      if (!map.ok()) {
        std::printf("%10.2f %12s failed: %s\n", null_rate,
                    encoding == core::CategoricalEncoding::kDummy ? "dummy"
                                                                  : "gower",
                    map.status().ToString().c_str());
        continue;
      }
      std::vector<int> partition = MapPartition(*map, *data.table);
      std::printf("%10.2f %12s %14.3f %12.1f\n", null_rate,
                  encoding == core::CategoricalEncoding::kDummy ? "dummy"
                                                                : "gower",
                  stats::AdjustedRandIndex(partition,
                                           data.truth.row_clusters),
                  ms);
    }
  }
  std::printf("\nExpected shape: both encodings recover the planted "
              "clusters at low missingness; Gower degrades more slowly as "
              "nulls grow (pairwise deletion vs mean imputation), at a "
              "latency premium.\n");
  return 0;
}
