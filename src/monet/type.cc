#include "monet/type.h"

#include <cassert>

#include "common/string_util.h"

namespace blaeu::monet {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kDouble:
      return "double";
    case DataType::kInt64:
      return "int64";
    case DataType::kString:
      return "string";
    case DataType::kBool:
      return "bool";
  }
  return "?";
}

double Value::AsDouble() const {
  if (is_null_) return 0.0;
  switch (type_) {
    case DataType::kDouble:
      return double_;
    case DataType::kInt64:
      return static_cast<double>(int_);
    case DataType::kBool:
      return bool_ ? 1.0 : 0.0;
    case DataType::kString:
      assert(false && "AsDouble on string value");
      return 0.0;
  }
  return 0.0;
}

int64_t Value::AsInt() const {
  if (is_null_) return 0;
  switch (type_) {
    case DataType::kInt64:
      return int_;
    case DataType::kDouble:
      return static_cast<int64_t>(double_);
    case DataType::kBool:
      return bool_ ? 1 : 0;
    case DataType::kString:
      assert(false && "AsInt on string value");
      return 0;
  }
  return 0;
}

bool Value::AsBool() const {
  if (is_null_) return false;
  assert(type_ == DataType::kBool);
  return bool_;
}

const std::string& Value::AsString() const {
  assert(!is_null_ && type_ == DataType::kString);
  return str_;
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  switch (type_) {
    case DataType::kDouble:
      return FormatDouble(double_);
    case DataType::kInt64:
      return std::to_string(int_);
    case DataType::kString:
      return str_;
    case DataType::kBool:
      return bool_ ? "true" : "false";
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  if (is_null_ != other.is_null_) return false;
  if (is_null_) return true;
  if (type_ != other.type_) return false;
  switch (type_) {
    case DataType::kDouble:
      return double_ == other.double_;
    case DataType::kInt64:
      return int_ == other.int_;
    case DataType::kString:
      return str_ == other.str_;
    case DataType::kBool:
      return bool_ == other.bool_;
  }
  return false;
}

}  // namespace blaeu::monet
