// The atlas: one map per theme, built up front, with optional bootstrap
// stability scores. The demo shows one map at a time; the journal version
// of Blaeu pre-computes alternatives so the user can glance across every
// "aspect" of the data at once. Stability quantifies how much a map is an
// artifact of the sample: maps rebuilt from independent samples should
// agree (high ARI) if the structure is real.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/map_builder.h"
#include "core/theme.h"

namespace blaeu::core {

/// One atlas page.
struct AtlasEntry {
  int theme_id = 0;
  DataMap map;
  /// Mean pairwise ARI between `stability_replicas` maps rebuilt from
  /// independent samples (1.0 = perfectly stable; 0 when replicas < 2).
  double stability = 0.0;
};

/// Atlas options.
struct AtlasOptions {
  MapOptions map;
  /// Replicated builds per theme for the stability score (0/1 disables).
  size_t stability_replicas = 0;
  /// Skip themes with fewer columns than this.
  size_t min_theme_columns = 1;
};

/// \brief All themes mapped over one selection.
struct Atlas {
  std::vector<AtlasEntry> entries;  ///< theme order of the ThemeSet
};

/// Builds one map per qualifying theme over `sel`.
Result<Atlas> BuildAtlas(const monet::Table& table,
                         const monet::SelectionVector& sel,
                         const ThemeSet& themes,
                         const AtlasOptions& options = {});

/// Compact text overview: one block per theme with cluster count,
/// silhouette, stability and the top-level split.
std::string RenderAtlas(const Atlas& atlas, const ThemeSet& themes);

/// Mean pairwise ARI between the leaf partitions of maps built with
/// distinct seeds over the same selection — the stability primitive,
/// exposed for tests and benches.
Result<double> MapStability(const monet::Table& table,
                            const monet::SelectionVector& sel,
                            const std::vector<std::string>& columns,
                            const MapOptions& options, size_t replicas);

}  // namespace blaeu::core
