// Experiments D1-D3: the three demo scenarios (paper §4.2), measured.
//
// For each dataset — Hollywood (900x12), OECD (6,823x378), LOFAR
// (200,000x40) — this bench opens a session and times every navigational
// action: theme detection, initial map, zoom, project, highlight and
// rollback. The paper's demo promise is that all of these feel
// interactive; the table shows where sampling and CLARA keep them so.

#include <cstdio>

#include "common/timer.h"
#include "core/navigation.h"
#include "workloads/hollywood.h"
#include "workloads/lofar.h"
#include "workloads/oecd.h"

using namespace blaeu;

namespace {

int LargestLeaf(const core::DataMap& map) {
  int best = -1;
  size_t best_count = 0;
  for (int leaf : map.LeafIds()) {
    if (map.region(leaf).tuple_count > best_count) {
      best_count = map.region(leaf).tuple_count;
      best = leaf;
    }
  }
  return best;
}

void RunScenario(const char* name, monet::TablePtr table,
                 const std::string& highlight_column) {
  std::printf("== %s: %zu rows x %zu columns ==\n", name, table->num_rows(),
              table->num_columns());
  core::SessionOptions options;
  options.themes.dependency.sample_rows = 2000;
  options.map.sample_size = 2000;

  Timer timer;
  auto session_or = core::Session::Start(table, name, options);
  if (!session_or.ok()) {
    std::printf("  start failed: %s\n",
                session_or.status().ToString().c_str());
    return;
  }
  core::Session session = std::move(session_or).ValueOrDie();
  std::printf("  %-28s %8.1f ms   (%zu themes, map: %s, k=%zu, "
              "fidelity %.2f)\n",
              "start (themes + map)", timer.ElapsedMillis(),
              session.themes().size(), session.current().map.algorithm.c_str(),
              session.current().map.num_clusters,
              session.current().map.tree_fidelity);

  // Zoom.
  int leaf = LargestLeaf(session.current().map);
  if (leaf >= 0) {
    timer.Reset();
    if (session.Zoom(leaf).ok()) {
      std::printf("  %-28s %8.1f ms   (selection %zu -> %zu tuples)\n",
                  "zoom", timer.ElapsedMillis(),
                  session.state(session.history_size() - 2).selection.size(),
                  session.current().selection.size());
    }
  }

  // Project onto another theme.
  if (session.themes().size() > 1) {
    size_t other = session.current().theme_id == 0 ? 1 : 0;
    timer.Reset();
    if (session.Project(other).ok()) {
      std::printf("  %-28s %8.1f ms\n", "project", timer.ElapsedMillis());
    }
  }

  // Highlight.
  timer.Reset();
  auto h = session.Highlight(highlight_column);
  if (h.ok()) {
    std::printf("  %-28s %8.1f ms   ('%s' over %zu regions)\n", "highlight",
                timer.ElapsedMillis(), highlight_column.c_str(),
                h->regions.size());
  }

  // Implicit SQL + rollback.
  timer.Reset();
  std::string sql = session.CurrentQuery().ToSql();
  while (session.history_size() > 1) {
    if (!session.Rollback().ok()) break;
  }
  std::printf("  %-28s %8.1f ms\n", "rollback to start",
              timer.ElapsedMillis());
  std::printf("  final query was: %.100s...\n\n", sql.c_str());
}

}  // namespace

int main() {
  std::printf("Blaeu bench: demo scenarios (D1-D3)\n\n");
  RunScenario("hollywood", workloads::MakeHollywood().table, "genre");
  {
    workloads::OecdSpec spec;  // paper-scale: 6,823 x 378
    auto data = workloads::MakeOecd(spec);
    RunScenario("oecd", data.table, "country");
  }
  {
    workloads::LofarSpec spec;  // paper-scale: 200,000 x 40
    auto data = workloads::MakeLofar(spec);
    RunScenario("lofar", data.table, "source_class");
  }
  std::printf("Expected shape: every action stays interactive (well under "
              "a second for maps on sampled data; theme detection on 378 "
              "columns is the heaviest step).\n");
  return 0;
}
