// Unit tests for discretizers.
#include "stats/discretize.h"

#include <gtest/gtest.h>

namespace blaeu::stats {
namespace {

TEST(EqualWidthTest, SplitsRangeEvenly) {
  std::vector<double> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 10};
  Discretizer d = Discretizer::EqualWidth(v, 5);
  EXPECT_EQ(d.num_bins(), 5u);
  EXPECT_EQ(d.Bin(0.0), 0);
  EXPECT_EQ(d.Bin(9.9), 4);
  EXPECT_EQ(d.Bin(5.0), 2);
  // Out-of-range clamps.
  EXPECT_EQ(d.Bin(-100), 0);
  EXPECT_EQ(d.Bin(100), 4);
}

TEST(EqualWidthTest, ConstantInputSingleBin) {
  Discretizer d = Discretizer::EqualWidth({3, 3, 3}, 4);
  EXPECT_EQ(d.num_bins(), 1u);
  EXPECT_EQ(d.Bin(3), 0);
}

TEST(EqualWidthTest, EmptyInputSingleBin) {
  Discretizer d = Discretizer::EqualWidth({}, 4);
  EXPECT_EQ(d.num_bins(), 1u);
}

TEST(EqualFrequencyTest, BalancedCounts) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  Discretizer d = Discretizer::EqualFrequency(v, 4);
  EXPECT_EQ(d.num_bins(), 4u);
  std::vector<int> bins = d.BinAll(v);
  int counts[4] = {0, 0, 0, 0};
  for (int b : bins) ++counts[b];
  for (int c : counts) EXPECT_NEAR(c, 25, 2);
}

TEST(EqualFrequencyTest, SkewedDataMergesDuplicateCuts) {
  // 90% of mass at one value: fewer realized bins, none empty-by-design.
  std::vector<double> v(90, 1.0);
  for (int i = 0; i < 10; ++i) v.push_back(2.0 + i);
  Discretizer d = Discretizer::EqualFrequency(v, 5);
  EXPECT_LT(d.num_bins(), 5u);
  EXPECT_GE(d.num_bins(), 2u);
  EXPECT_LT(d.Bin(1.0), d.Bin(11.0));
}

TEST(EqualFrequencyTest, MonotoneBinning) {
  std::vector<double> v;
  for (int i = 0; i < 50; ++i) v.push_back(i * i);  // skewed
  Discretizer d = Discretizer::EqualFrequency(v, 6);
  int prev = -1;
  for (double x : v) {
    int b = d.Bin(x);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(DiscretizerTest, BinAllMatchesBin) {
  std::vector<double> v = {5, 1, 9, 3};
  Discretizer d = Discretizer::EqualWidth(v, 3);
  std::vector<int> bins = d.BinAll(v);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_EQ(bins[i], d.Bin(v[i]));
}

}  // namespace
}  // namespace blaeu::stats
