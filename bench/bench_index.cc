// Extension experiment: VP-tree-indexed neighborhoods vs the O(n^2)
// distance matrix for density-based map detection (DBSCAN). The index is
// what lets the arbitrary-shape detector participate at the same scales as
// CLARA.

#include <benchmark/benchmark.h>

#include "cluster/dbscan.h"
#include "cluster/vptree.h"
#include "common/rng.h"
#include "stats/distance.h"

using namespace blaeu;

namespace {

const stats::Matrix& BlobsCached(size_t n) {
  static std::map<size_t, stats::Matrix>* cache =
      new std::map<size_t, stats::Matrix>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    Rng rng(n);
    stats::Matrix data(n, 3);
    for (size_t i = 0; i < n; ++i) {
      int c = static_cast<int>(i % 4);
      for (size_t f = 0; f < 3; ++f) {
        data.At(i, f) = rng.NextGaussian(8.0 * ((c >> f) & 1), 0.5);
      }
    }
    it = cache->emplace(n, std::move(data)).first;
  }
  return it->second;
}

void BM_DbscanMatrix(benchmark::State& state) {
  const stats::Matrix& data = BlobsCached(static_cast<size_t>(state.range(0)));
  cluster::DbscanOptions opt;
  opt.eps = 0.35;
  opt.min_points = 5;
  size_t clusters = 0;
  for (auto _ : state) {
    auto dist = stats::DistanceMatrix::Euclidean(data);
    auto result = cluster::Dbscan(dist, opt);
    if (!result.ok()) state.SkipWithError("dbscan failed");
    clusters = result->num_clusters;
    benchmark::DoNotOptimize(result);
  }
  state.counters["clusters"] = static_cast<double>(clusters);
}

void BM_DbscanIndexed(benchmark::State& state) {
  const stats::Matrix& data = BlobsCached(static_cast<size_t>(state.range(0)));
  size_t clusters = 0;
  for (auto _ : state) {
    auto result = cluster::DbscanIndexed(data, 0.35, 5);
    clusters = result.num_clusters;
    benchmark::DoNotOptimize(result);
  }
  state.counters["clusters"] = static_cast<double>(clusters);
}

void BM_VpTreeBuild(benchmark::State& state) {
  const stats::Matrix& data = BlobsCached(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    cluster::VpTree tree(data);
    benchmark::DoNotOptimize(tree);
  }
}

BENCHMARK(BM_DbscanMatrix)->Arg(500)->Arg(2000)->Arg(5000)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_DbscanIndexed)->Arg(500)->Arg(2000)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_VpTreeBuild)->Arg(2000)->Arg(20000)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

BENCHMARK_MAIN();
