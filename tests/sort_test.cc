// Unit tests for table sorting and top-k.
#include "monet/sort.h"

#include <gtest/gtest.h>

namespace blaeu::monet {
namespace {

TablePtr ScoresTable() {
  TableBuilder b(Schema({{"name", DataType::kString},
                         {"score", DataType::kDouble},
                         {"year", DataType::kInt64}}));
  struct Row {
    const char* name;
    double score;
    int64_t year;
  };
  Row rows[] = {
      {"c", 3.0, 2010}, {"a", 1.0, 2012}, {"e", 5.0, 2010},
      {"b", 2.0, 2011}, {"d", 4.0, 2012},
  };
  for (const Row& r : rows) {
    EXPECT_TRUE(b.AppendRow({Value::Str(r.name), Value::Double(r.score),
                             Value::Int(r.year)})
                    .ok());
  }
  return *b.Finish();
}

SelectionVector All5() { return SelectionVector::All(5); }

TEST(SortTest, AscendingNumeric) {
  auto t = ScoresTable();
  auto sorted = *SortTable(*t, All5(), {{"score", true}});
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_DOUBLE_EQ(sorted->GetValue(r, 1).AsDouble(),
                     static_cast<double>(r + 1));
  }
}

TEST(SortTest, DescendingString) {
  auto t = ScoresTable();
  auto sorted = *SortTable(*t, All5(), {{"name", false}});
  EXPECT_EQ(sorted->GetValue(0, 0).AsString(), "e");
  EXPECT_EQ(sorted->GetValue(4, 0).AsString(), "a");
}

TEST(SortTest, MultiKeyWithStability) {
  auto t = ScoresTable();
  // year asc, then score desc within a year.
  auto sorted = *SortTable(*t, All5(),
                           {{"year", true}, {"score", false}});
  EXPECT_EQ(sorted->GetValue(0, 2).AsInt(), 2010);
  EXPECT_DOUBLE_EQ(sorted->GetValue(0, 1).AsDouble(), 5.0);  // e before c
  EXPECT_DOUBLE_EQ(sorted->GetValue(1, 1).AsDouble(), 3.0);
  EXPECT_EQ(sorted->GetValue(2, 2).AsInt(), 2011);
  EXPECT_EQ(sorted->GetValue(3, 2).AsInt(), 2012);
  EXPECT_DOUBLE_EQ(sorted->GetValue(3, 1).AsDouble(), 4.0);  // d before a
}

TEST(SortTest, NullsSortLastBothDirections) {
  TableBuilder b(Schema({{"v", DataType::kDouble}}));
  ASSERT_TRUE(b.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Double(2)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Double(1)}).ok());
  auto t = *b.Finish();
  auto asc = *SortTable(*t, SelectionVector::All(3), {{"v", true}});
  EXPECT_DOUBLE_EQ(asc->GetValue(0, 0).AsDouble(), 1.0);
  EXPECT_TRUE(asc->GetValue(2, 0).is_null());
  auto desc = *SortTable(*t, SelectionVector::All(3), {{"v", false}});
  EXPECT_DOUBLE_EQ(desc->GetValue(0, 0).AsDouble(), 2.0);
  EXPECT_TRUE(desc->GetValue(2, 0).is_null());
}

TEST(SortTest, RestrictedSelection) {
  auto t = ScoresTable();
  SelectionVector sel({0, 2, 4});  // c, e, d
  auto sorted = *SortIndices(*t, sel, {{"score", false}});
  EXPECT_EQ(sorted.rows(), (std::vector<uint32_t>{2, 4, 0}));  // e, d, c
}

TEST(SortTest, UnknownColumnAndEmptyKeysRejected) {
  auto t = ScoresTable();
  EXPECT_EQ(SortIndices(*t, All5(), {{"ghost", true}}).status().code(),
            StatusCode::kKeyError);
  EXPECT_EQ(SortIndices(*t, All5(), {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TopKTest, MatchesFullSortPrefix) {
  auto t = ScoresTable();
  auto full = *SortIndices(*t, All5(), {{"score", false}});
  auto top = *TopKIndices(*t, All5(), {{"score", false}}, 3);
  ASSERT_EQ(top.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(top[i], full[i]);
}

TEST(TopKTest, KLargerThanInputSortsEverything) {
  auto t = ScoresTable();
  auto top = *TopKIndices(*t, All5(), {{"score", true}}, 50);
  EXPECT_EQ(top.size(), 5u);
  EXPECT_EQ(top[0], 1u);  // score 1.0 at row 1
}

}  // namespace
}  // namespace blaeu::monet
