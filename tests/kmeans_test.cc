// Unit tests for the k-means baseline.
#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/metrics.h"

namespace blaeu::cluster {
namespace {

using stats::Matrix;

Matrix Blobs(size_t k, size_t per, double gap, uint64_t seed,
             std::vector<int>* truth) {
  Rng rng(seed);
  Matrix data(k * per, 2);
  truth->clear();
  for (size_t c = 0; c < k; ++c) {
    for (size_t i = 0; i < per; ++i) {
      size_t row = c * per + i;
      data.At(row, 0) = rng.NextGaussian(gap * static_cast<double>(c), 0.5);
      data.At(row, 1) = rng.NextGaussian(gap * static_cast<double>(c % 2),
                                         0.5);
      truth->push_back(static_cast<int>(c));
    }
  }
  return data;
}

TEST(KMeansTest, RecoversPlantedClusters) {
  std::vector<int> truth;
  Matrix data = Blobs(3, 100, 10.0, 1, &truth);
  auto result = *KMeans(data, 3);
  EXPECT_GT(stats::AdjustedRandIndex(result.assignment.labels, truth), 0.95);
  EXPECT_EQ(result.centroids.rows(), 3u);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  std::vector<int> truth;
  Matrix data = Blobs(4, 50, 6.0, 2, &truth);
  double prev = 1e300;
  for (size_t k = 1; k <= 5; ++k) {
    KMeansOptions opt;
    opt.seed = 3;
    auto result = *KMeans(data, k, opt);
    EXPECT_LE(result.inertia, prev * 1.001);
    prev = result.inertia;
  }
}

TEST(KMeansTest, MedoidsAreRealPointsNearCentroids) {
  std::vector<int> truth;
  Matrix data = Blobs(2, 60, 8.0, 4, &truth);
  auto result = *KMeans(data, 2);
  for (size_t c = 0; c < 2; ++c) {
    size_t m = result.assignment.medoids[c];
    ASSERT_LT(m, data.rows());
    EXPECT_EQ(result.assignment.labels[m], static_cast<int>(c));
  }
}

TEST(KMeansTest, DeterministicGivenSeed) {
  std::vector<int> truth;
  Matrix data = Blobs(3, 40, 7.0, 5, &truth);
  KMeansOptions opt;
  opt.seed = 11;
  auto a = *KMeans(data, 3, opt);
  auto b = *KMeans(data, 3, opt);
  EXPECT_EQ(a.assignment.labels, b.assignment.labels);
}

TEST(KMeansTest, InvalidKRejected) {
  Matrix data(3, 1);
  EXPECT_FALSE(KMeans(data, 0).ok());
  EXPECT_FALSE(KMeans(data, 4).ok());
}

TEST(KMeansTest, DuplicatePointsDoNotCrash) {
  Matrix data(10, 2);  // all zeros
  auto result = *KMeans(data, 3);
  EXPECT_EQ(result.assignment.labels.size(), 10u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

}  // namespace
}  // namespace blaeu::cluster
