// Vantage-point tree: exact metric nearest-neighbor and radius queries in
// O(log n) expected time. The index that makes density-based map detection
// (DBSCAN) scale past the O(n^2) distance matrix — the same role a spatial
// index plays inside a DBMS.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "cluster/clustering.h"
#include "stats/matrix.h"

namespace blaeu::cluster {

/// \brief VP-tree over the rows of a Euclidean feature matrix.
///
/// The tree references the matrix; the matrix must outlive the tree.
/// Construction is O(n log n) expected; queries are exact (not
/// approximate) for the Euclidean metric.
class VpTree {
 public:
  /// Builds the index over all rows of `data`.
  explicit VpTree(const stats::Matrix& data, uint64_t seed = 42);

  size_t size() const { return data_->rows(); }

  /// Row ids within distance `radius` of row `query` (inclusive, and
  /// including the query row itself), in ascending id order.
  std::vector<size_t> RadiusQuery(size_t query, double radius) const;

  /// The `k` nearest rows to row `query` (including itself), closest
  /// first. Ties broken by id.
  std::vector<size_t> KnnQuery(size_t query, size_t k) const;

  /// Distance from row `query` to its k-th nearest neighbor (k >= 1;
  /// k = 1 is the query itself at distance 0).
  double KnnDistance(size_t query, size_t k) const;

 private:
  struct Node {
    size_t point = 0;        ///< vantage row
    double threshold = 0.0;  ///< median distance to the vantage point
    int inside = -1;         ///< child index: points within threshold
    int outside = -1;        ///< child index: points beyond threshold
  };

  double Distance(size_t a, size_t b) const;
  int Build(std::vector<size_t>* items, size_t begin, size_t end, Rng* rng);
  void SearchRadius(int node, size_t query, double radius,
                    std::vector<size_t>* out) const;
  void SearchKnn(int node, size_t query, size_t k,
                 std::vector<std::pair<double, size_t>>* heap) const;

  const stats::Matrix* data_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

/// DBSCAN over matrix rows using a VP-tree for neighborhoods: same results
/// as the O(n^2) `Dbscan` (up to cluster numbering) at
/// O(n log n * neighborhood) cost.
struct IndexedDbscanResult {
  std::vector<int> labels;  ///< cluster ids, -1 for noise
  size_t num_clusters = 0;
  size_t num_noise = 0;
};
IndexedDbscanResult DbscanIndexed(const stats::Matrix& data, double eps,
                                  size_t min_points, uint64_t seed = 42);

}  // namespace blaeu::cluster
