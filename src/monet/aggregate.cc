#include "monet/aggregate.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace blaeu::monet {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kMean:
      return "AVG";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kCountDistinct:
      return "COUNT_DISTINCT";
  }
  return "?";
}

std::string AggSpec::OutputName() const {
  if (!as.empty()) return as;
  std::string base = AggFnName(fn);
  std::transform(base.begin(), base.end(), base.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (column.empty()) return base;
  return base + "_" + column;
}

namespace {

/// Running state of one aggregate within one group.
struct AggState {
  size_t count = 0;
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::unordered_set<std::string> distinct;       // non-string columns
  std::unordered_set<int32_t> distinct_codes;     // string columns
};

/// Appends an unambiguous encoding of one key cell to `out`: a type tag
/// byte followed by a fixed-width payload (or a length-delimited rendering
/// for doubles). Unlike a separator-joined rendering, no cell content can
/// collide with the framing — a value containing the separator byte, or the
/// literal string "NULL", used to merge distinct key tuples.
void AppendKeyCell(const Column& col, uint32_t row, std::string* out) {
  auto append_raw = [out](const void* p, size_t n) {
    out->append(reinterpret_cast<const char*>(p), n);
  };
  if (col.IsNull(row)) {
    out->push_back('n');
    return;
  }
  switch (col.type()) {
    case DataType::kString: {
      // Rows of one column share one dictionary, so code identity is
      // string identity: 4 bytes, no rendering.
      out->push_back('s');
      const int32_t code = col.codes()[row];
      append_raw(&code, sizeof(code));
      break;
    }
    case DataType::kInt64: {
      out->push_back('i');
      const int64_t v = col.ints()[row];
      append_raw(&v, sizeof(v));
      break;
    }
    case DataType::kBool:
      out->push_back(col.bools()[row] ? 't' : 'f');
      break;
    case DataType::kDouble: {
      // Doubles group by rendering (the historical semantics — %.6g merges
      // values that print alike), so the payload is the rendered string
      // with an explicit length prefix.
      out->push_back('d');
      const std::string repr = FormatDouble(col.doubles()[row]);
      const uint32_t len = static_cast<uint32_t>(repr.size());
      append_raw(&len, sizeof(len));
      out->append(repr);
      break;
    }
  }
}

}  // namespace

Result<TablePtr> GroupBy(const Table& table, const SelectionVector& rows,
                         const std::vector<std::string>& keys,
                         const std::vector<AggSpec>& aggs) {
  // Resolve key columns.
  std::vector<const Column*> key_cols;
  std::vector<DataType> key_types;
  for (const std::string& k : keys) {
    BLAEU_ASSIGN_OR_RETURN(size_t idx, table.schema().RequireFieldIndex(k));
    key_cols.push_back(table.column(idx).get());
    key_types.push_back(table.schema().field(idx).type);
  }
  // Resolve aggregate targets and validate types.
  std::vector<const Column*> agg_cols(aggs.size(), nullptr);
  for (size_t a = 0; a < aggs.size(); ++a) {
    const AggSpec& spec = aggs[a];
    if (spec.column.empty()) {
      if (spec.fn != AggFn::kCount) {
        return Status::Invalid(std::string(AggFnName(spec.fn)) +
                               " requires a target column");
      }
      continue;
    }
    BLAEU_ASSIGN_OR_RETURN(size_t idx,
                           table.schema().RequireFieldIndex(spec.column));
    const Column* col = table.column(idx).get();
    bool numeric_fn = spec.fn == AggFn::kSum || spec.fn == AggFn::kMean ||
                      spec.fn == AggFn::kMin || spec.fn == AggFn::kMax;
    if (numeric_fn && col->type() == DataType::kString) {
      return Status::TypeError(std::string(AggFnName(spec.fn)) + "(" +
                               spec.column + "): column is not numeric");
    }
    agg_cols[a] = col;
  }

  // Group rows by the rendered key tuple, preserving first-seen order.
  std::unordered_map<std::string, size_t> group_of;
  std::vector<std::vector<Value>> group_keys;
  std::vector<std::vector<AggState>> group_states;

  std::string key_repr;
  for (uint32_t r : rows.rows()) {
    key_repr.clear();
    for (const Column* col : key_cols) AppendKeyCell(*col, r, &key_repr);
    auto [it, inserted] = group_of.emplace(key_repr, group_keys.size());
    if (inserted) {
      std::vector<Value> key_values;
      key_values.reserve(key_cols.size());
      for (const Column* col : key_cols) key_values.push_back(col->GetValue(r));
      group_keys.push_back(std::move(key_values));
      group_states.emplace_back(aggs.size());
    }
    std::vector<AggState>& states = group_states[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggSpec& spec = aggs[a];
      AggState& st = states[a];
      if (agg_cols[a] == nullptr) {  // COUNT(*)
        ++st.count;
        continue;
      }
      const Column* col = agg_cols[a];
      if (col->IsNull(r)) continue;
      ++st.count;
      if (spec.fn == AggFn::kCountDistinct) {
        // Distinct codes are distinct strings; other types keep the
        // rendering-keyed set.
        if (col->type() == DataType::kString) {
          st.distinct_codes.insert(col->codes()[r]);
        } else {
          st.distinct.insert(col->GetValue(r).ToString());
        }
        continue;
      }
      if (spec.fn != AggFn::kCount) {
        double x = col->GetNumeric(r);
        st.sum += x;
        st.min = std::min(st.min, x);
        st.max = std::max(st.max, x);
      }
    }
  }

  // Assemble the output table: key columns followed by aggregates.
  std::vector<Field> fields;
  std::vector<ColumnPtr> columns;
  for (size_t k = 0; k < keys.size(); ++k) {
    fields.push_back({keys[k], key_types[k]});
    columns.push_back(std::make_shared<Column>(key_types[k]));
  }
  for (const AggSpec& spec : aggs) {
    DataType out_type =
        (spec.fn == AggFn::kCount || spec.fn == AggFn::kCountDistinct)
            ? DataType::kInt64
            : DataType::kDouble;
    fields.push_back({spec.OutputName(), out_type});
    columns.push_back(std::make_shared<Column>(out_type));
  }

  for (size_t g = 0; g < group_keys.size(); ++g) {
    for (size_t k = 0; k < keys.size(); ++k) {
      BLAEU_RETURN_NOT_OK(columns[k]->AppendValue(group_keys[g][k]));
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggSpec& spec = aggs[a];
      const AggState& st = group_states[g][a];
      Column* out = columns[keys.size() + a].get();
      switch (spec.fn) {
        case AggFn::kCount:
          out->AppendInt(static_cast<int64_t>(st.count));
          break;
        case AggFn::kCountDistinct:
          out->AppendInt(static_cast<int64_t>(st.distinct.size() +
                                              st.distinct_codes.size()));
          break;
        case AggFn::kSum:
          if (st.count == 0) {
            out->AppendNull();
          } else {
            out->AppendDouble(st.sum);
          }
          break;
        case AggFn::kMean:
          if (st.count == 0) {
            out->AppendNull();
          } else {
            out->AppendDouble(st.sum / static_cast<double>(st.count));
          }
          break;
        case AggFn::kMin:
          if (st.count == 0) {
            out->AppendNull();
          } else {
            out->AppendDouble(st.min);
          }
          break;
        case AggFn::kMax:
          if (st.count == 0) {
            out->AppendNull();
          } else {
            out->AppendDouble(st.max);
          }
          break;
      }
    }
  }
  return Table::Make(Schema(std::move(fields)), std::move(columns));
}

Result<TablePtr> GroupBy(const Table& table,
                         const std::vector<std::string>& keys,
                         const std::vector<AggSpec>& aggs) {
  return GroupBy(table, SelectionVector::All(table.num_rows()), keys, aggs);
}

}  // namespace blaeu::monet
