// Unit tests for theme detection (vertical clustering).
#include "core/theme.h"

#include <gtest/gtest.h>

#include <set>

#include "workloads/gaussian.h"
#include "workloads/oecd.h"

namespace blaeu::core {
namespace {

TEST(ThemeTest, RecoversTwoPlantedThemes) {
  auto data = workloads::MakeTwoThemeMixture(800, 4, 3, 3, /*seed=*/1);
  ThemeOptions opt;
  opt.max_themes = 5;
  auto themes = *DetectThemes(*data.table, opt);
  ASSERT_EQ(themes.size(), 2u);
  // Each detected theme must be exactly one planted column group.
  for (const Theme& theme : themes.themes) {
    std::set<char> prefixes;
    for (const std::string& name : theme.names) {
      prefixes.insert(name[0]);  // 'a' or 'b'
    }
    EXPECT_EQ(prefixes.size(), 1u) << "theme mixes column groups";
    EXPECT_EQ(theme.columns.size(), 4u);
  }
}

TEST(ThemeTest, CohesionSortedDescending) {
  auto data = workloads::MakeTwoThemeMixture(600, 4, 3, 4, 2);
  auto themes = *DetectThemes(*data.table);
  for (size_t i = 1; i < themes.size(); ++i) {
    EXPECT_GE(themes.theme(i - 1).cohesion, themes.theme(i).cohesion);
  }
  for (const Theme& t : themes.themes) {
    EXPECT_GE(t.cohesion, 0.0);
    EXPECT_LE(t.cohesion, 1.0);
  }
}

TEST(ThemeTest, GraphHasOneVertexPerNonKeyColumn) {
  auto data = workloads::MakeTwoThemeMixture(400, 3, 2, 2, 3);
  auto themes = *DetectThemes(*data.table);
  EXPECT_EQ(themes.graph.num_vertices(), 6u);
  EXPECT_EQ(themes.graph_columns.size(), 6u);
}

TEST(ThemeTest, MedoidColumnBelongsToTheme) {
  auto data = workloads::MakeTwoThemeMixture(500, 4, 3, 3, 4);
  auto themes = *DetectThemes(*data.table);
  for (const Theme& t : themes.themes) {
    EXPECT_NE(std::find(t.columns.begin(), t.columns.end(), t.medoid_column),
              t.columns.end());
  }
}

TEST(ThemeTest, PrimaryKeysExcluded) {
  workloads::MixtureSpec spec;
  spec.rows = 300;
  spec.dims = 4;
  spec.with_id = true;
  auto data = workloads::MakeGaussianMixture(spec);
  auto themes = *DetectThemes(*data.table);
  for (const Theme& t : themes.themes) {
    for (const std::string& name : t.names) {
      EXPECT_NE(name, "row_id");
    }
  }
}

TEST(ThemeTest, TinyTablesYieldSingleTheme) {
  workloads::MixtureSpec spec;
  spec.rows = 100;
  spec.dims = 2;
  auto data = workloads::MakeGaussianMixture(spec);
  auto themes = *DetectThemes(*data.table);
  EXPECT_EQ(themes.size(), 1u);
  EXPECT_EQ(themes.theme(0).columns.size(), 2u);
}

TEST(ThemeTest, ThemeLabelTruncates) {
  Theme t;
  t.names = {"a", "b", "c", "d", "e"};
  std::string label = t.Label(3);
  EXPECT_NE(label.find("a, b, c"), std::string::npos);
  EXPECT_NE(label.find("+2"), std::string::npos);
}

TEST(ThemeTest, EveryColumnAssignedExactlyOnce) {
  auto data = workloads::MakeTwoThemeMixture(500, 5, 3, 3, 5);
  auto themes = *DetectThemes(*data.table);
  std::set<size_t> seen;
  size_t total = 0;
  for (const Theme& t : themes.themes) {
    for (size_t c : t.columns) {
      seen.insert(c);
      ++total;
    }
  }
  EXPECT_EQ(seen.size(), total);  // no duplicates
  EXPECT_EQ(total, 10u);          // all columns covered
}

TEST(ThemeTest, OecdLaborColumnsShareATheme) {
  // Scaled-down OECD: the named labor lead indicators must co-occur.
  workloads::OecdSpec spec;
  spec.rows = 1200;
  spec.indicator_columns = 40;
  auto data = workloads::MakeOecd(spec);
  ThemeOptions opt;
  opt.dependency.sample_rows = 800;
  opt.max_themes = 10;
  auto themes = *DetectThemes(*data.table, opt);
  auto find_theme = [&](const std::string& column) -> int {
    for (const Theme& t : themes.themes) {
      for (const std::string& name : t.names) {
        if (name == column) return t.id;
      }
    }
    return -1;
  };
  int unemp = find_theme("unemployment_rate");
  int lt_unemp = find_theme("long_term_unemployment_rate");
  int female = find_theme("female_unemployment_rate");
  ASSERT_GE(unemp, 0);
  EXPECT_EQ(unemp, lt_unemp);
  EXPECT_EQ(unemp, female);
}

}  // namespace
}  // namespace blaeu::core
