// External clustering-agreement metrics, used to score maps against planted
// ground truth and sampled clusterings against full-data clusterings
// (experiment C2: "the loss of accuracy is minimal").
#pragma once

#include <cstddef>
#include <vector>

namespace blaeu::stats {

/// Adjusted Rand Index between two labelings of the same points, in
/// [-1, 1]; 1 = identical partitions, ~0 = random agreement.
double AdjustedRandIndex(const std::vector<int>& a, const std::vector<int>& b);

/// Normalized mutual information between two labelings, in [0, 1]
/// (sqrt normalization).
double ClusteringNMI(const std::vector<int>& a, const std::vector<int>& b);

/// Purity of `predicted` against `truth`: each predicted cluster votes for
/// its majority true class; fraction of points covered by the votes.
double Purity(const std::vector<int>& predicted,
              const std::vector<int>& truth);

/// Classification accuracy: fraction of exact label matches. Use only when
/// the two labelings share an alphabet (e.g. CART fidelity to PAM labels).
double Accuracy(const std::vector<int>& predicted,
                const std::vector<int>& truth);

}  // namespace blaeu::stats
