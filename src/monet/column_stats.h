// Per-column summary statistics. Used by preprocessing (primary-key
// detection, normalization parameters, categorical detection) and by the
// highlight action's univariate summaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "monet/column.h"
#include "monet/selection.h"
#include "monet/table.h"

namespace blaeu::monet {

/// \brief Summary of one column.
struct ColumnStats {
  size_t count = 0;        ///< total rows
  size_t null_count = 0;   ///< NULL rows
  size_t distinct = 0;     ///< distinct non-null values
  // Numeric moments (valid when the column is numeric and has non-nulls).
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;
  /// Most frequent non-null values, rendered as strings, with counts,
  /// descending; capped at 16 entries.
  std::vector<std::pair<std::string, size_t>> top_values;

  /// All non-null values distinct and no NULLs: a key candidate.
  bool IsUniqueKey() const {
    return count > 0 && null_count == 0 && distinct == count;
  }
};

/// Computes stats over the whole column.
ColumnStats ComputeColumnStats(const Column& col);

/// Computes stats over the rows in `sel` only.
ColumnStats ComputeColumnStats(const Column& col, const SelectionVector& sel);

/// Planning-grade stats: exact counts/moments, but distinct tracking stops
/// once more than `distinct_cap` distinct values have been seen (the result
/// then reports `distinct_cap + 1`) and `top_values` is left empty. Distinct
/// values below the cap are exact and keyed by rendering, identical to
/// ComputeColumnStats. Use when the consumer only compares `distinct`
/// against a threshold <= `distinct_cap`.
ColumnStats ComputeColumnStatsBounded(const Column& col,
                                      const SelectionVector& sel,
                                      size_t distinct_cap);

/// Indices of columns that look like primary keys: unique-valued columns,
/// and string/int columns whose lower-cased name is "id", ends in "_id" or
/// "id" following a letter. These are excluded from clustering (paper §3:
/// "Blaeu removes the primary keys").
std::vector<size_t> DetectPrimaryKeyColumns(const Table& table);

/// Heuristic: a numeric column with at most `max_distinct` distinct values
/// behaves like a categorical (e.g. a year or a small code domain).
bool LooksCategorical(const Column& col, const ColumnStats& stats,
                      size_t max_distinct = 10);

}  // namespace blaeu::monet
