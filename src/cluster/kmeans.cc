#include "cluster/kmeans.h"

#include <algorithm>
#include <limits>

#include "stats/distance.h"

namespace blaeu::cluster {

using stats::Matrix;

Result<KMeansResult> KMeans(const Matrix& data, size_t k,
                            const KMeansOptions& options) {
  const size_t n = data.rows();
  const size_t dims = data.cols();
  if (k == 0) return Status::Invalid("k must be >= 1");
  if (k > n) {
    return Status::Invalid("k = " + std::to_string(k) + " exceeds n = " +
                           std::to_string(n));
  }
  Rng rng(options.seed);

  // k-means++ seeding.
  Matrix centroids(k, dims);
  std::vector<double> min_sq(n, std::numeric_limits<double>::infinity());
  size_t first = rng.NextBounded(n);
  std::copy(data.RowPtr(first), data.RowPtr(first) + dims,
            centroids.MutableRowPtr(0));
  for (size_t c = 1; c < k; ++c) {
    for (size_t i = 0; i < n; ++i) {
      double d = stats::SquaredEuclideanDistance(
          data.RowPtr(i), centroids.RowPtr(c - 1), dims);
      min_sq[i] = std::min(min_sq[i], d);
    }
    double total = 0.0;
    for (double d : min_sq) total += d;
    size_t pick;
    if (total <= 0) {
      pick = rng.NextBounded(n);  // all points coincide with a centroid
    } else {
      double r = rng.NextDouble() * total;
      double acc = 0.0;
      pick = n - 1;
      for (size_t i = 0; i < n; ++i) {
        acc += min_sq[i];
        if (r < acc) {
          pick = i;
          break;
        }
      }
    }
    std::copy(data.RowPtr(pick), data.RowPtr(pick) + dims,
              centroids.MutableRowPtr(c));
  }

  std::vector<int> labels(n, 0);
  double prev_inertia = std::numeric_limits<double>::infinity();
  double inertia = prev_inertia;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment step.
    inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        double d = stats::SquaredEuclideanDistance(data.RowPtr(i),
                                                   centroids.RowPtr(c), dims);
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      labels[i] = best_c;
      inertia += best;
    }
    // Update step.
    Matrix sums(k, dims);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      double* srow = sums.MutableRowPtr(labels[i]);
      const double* drow = data.RowPtr(i);
      for (size_t f = 0; f < dims; ++f) srow[f] += drow[f];
      ++counts[labels[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        size_t pick = rng.NextBounded(n);
        std::copy(data.RowPtr(pick), data.RowPtr(pick) + dims,
                  centroids.MutableRowPtr(c));
        continue;
      }
      double* crow = centroids.MutableRowPtr(c);
      const double* srow = sums.RowPtr(c);
      for (size_t f = 0; f < dims; ++f) {
        crow[f] = srow[f] / static_cast<double>(counts[c]);
      }
    }
    if (prev_inertia - inertia <
        options.tolerance * std::max(prev_inertia, 1e-12)) {
      break;
    }
    prev_inertia = inertia;
  }

  KMeansResult out;
  out.centroids = centroids;
  out.inertia = inertia;
  out.assignment.labels = labels;
  out.assignment.total_cost = 0.0;
  // Nearest real point to each centroid, for medoid-style reporting.
  out.assignment.medoids.assign(k, 0);
  std::vector<double> best(k, std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < n; ++i) {
    size_t c = static_cast<size_t>(labels[i]);
    double d = stats::SquaredEuclideanDistance(data.RowPtr(i),
                                               centroids.RowPtr(c), dims);
    if (d < best[c]) {
      best[c] = d;
      out.assignment.medoids[c] = i;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    out.assignment.total_cost += stats::EuclideanDistance(
        data.RowPtr(i), data.RowPtr(out.assignment.medoids[labels[i]]), dims);
  }
  return out;
}

}  // namespace blaeu::cluster
