// Unit tests for PAM (k-medoids).
#include "cluster/pam.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/metrics.h"

namespace blaeu::cluster {
namespace {

using stats::DistanceMatrix;
using stats::Matrix;

/// `k` tight Gaussian blobs along one axis, `per` points each.
Matrix Blobs(size_t k, size_t per, double gap, uint64_t seed,
             std::vector<int>* truth) {
  Rng rng(seed);
  Matrix data(k * per, 2);
  truth->clear();
  for (size_t c = 0; c < k; ++c) {
    for (size_t i = 0; i < per; ++i) {
      size_t row = c * per + i;
      data.At(row, 0) = rng.NextGaussian(gap * static_cast<double>(c), 0.4);
      data.At(row, 1) = rng.NextGaussian(0.0, 0.4);
      truth->push_back(static_cast<int>(c));
    }
  }
  return data;
}

TEST(PamTest, RecoversPlantedClusters) {
  std::vector<int> truth;
  Matrix data = Blobs(3, 40, 10.0, 1, &truth);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  auto result = *Pam(dist, 3);
  EXPECT_EQ(result.num_clusters(), 3u);
  EXPECT_GT(stats::AdjustedRandIndex(result.labels, truth), 0.98);
}

TEST(PamTest, LabelsPointToNearestMedoid) {
  std::vector<int> truth;
  Matrix data = Blobs(2, 30, 8.0, 2, &truth);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  auto result = *Pam(dist, 2);
  for (size_t i = 0; i < data.rows(); ++i) {
    double assigned = dist.At(i, result.medoids[result.labels[i]]);
    for (size_t m : result.medoids) {
      EXPECT_LE(assigned, dist.At(i, m) + 1e-12);
    }
  }
}

TEST(PamTest, MedoidBelongsToItsOwnCluster) {
  std::vector<int> truth;
  Matrix data = Blobs(3, 20, 6.0, 3, &truth);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  auto result = *Pam(dist, 3);
  for (size_t m = 0; m < result.medoids.size(); ++m) {
    EXPECT_EQ(result.labels[result.medoids[m]], static_cast<int>(m));
  }
}

TEST(PamTest, CostMatchesLabelAssignment) {
  std::vector<int> truth;
  Matrix data = Blobs(2, 25, 7.0, 4, &truth);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  auto result = *Pam(dist, 2);
  double cost = 0;
  for (size_t i = 0; i < data.rows(); ++i) {
    cost += dist.At(i, result.medoids[result.labels[i]]);
  }
  EXPECT_NEAR(result.total_cost, cost, 1e-9);
}

TEST(PamTest, SwapImprovesOnBuildForHardInput) {
  // Random points: SWAP should never worsen the BUILD objective. We check
  // against a naive random-medoid assignment instead (strictly worse).
  Rng rng(5);
  Matrix data(60, 3);
  for (size_t i = 0; i < 60; ++i) {
    for (size_t f = 0; f < 3; ++f) data.At(i, f) = rng.NextGaussian();
  }
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  auto result = *Pam(dist, 4);
  ClusteringResult random = AssignToMedoids(
      60, {0, 1, 2, 3}, [&](size_t i, size_t j) { return dist.At(i, j); });
  EXPECT_LE(result.total_cost, random.total_cost + 1e-9);
}

TEST(PamTest, KOneGroupsEverything) {
  std::vector<int> truth;
  Matrix data = Blobs(2, 10, 5.0, 6, &truth);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  auto result = *Pam(dist, 1);
  EXPECT_EQ(result.num_clusters(), 1u);
  for (int l : result.labels) EXPECT_EQ(l, 0);
}

TEST(PamTest, KEqualsNMakesSingletons) {
  Matrix data(4, 1);
  for (size_t i = 0; i < 4; ++i) data.At(i, 0) = static_cast<double>(i);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  auto result = *Pam(dist, 4);
  EXPECT_EQ(result.num_clusters(), 4u);
  EXPECT_NEAR(result.total_cost, 0.0, 1e-12);
}

TEST(PamTest, InvalidKRejected) {
  Matrix data(3, 1);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  EXPECT_FALSE(Pam(dist, 0).ok());
  EXPECT_FALSE(Pam(dist, 4).ok());
}

TEST(PamTest, DeterministicOnSameInput) {
  std::vector<int> truth;
  Matrix data = Blobs(3, 30, 6.0, 7, &truth);
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  auto a = *Pam(dist, 3);
  auto b = *Pam(dist, 3);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.medoids, b.medoids);
}

TEST(PamTest, FastSwapMatchesNaiveSwap) {
  // FastPAM1 must choose the same swaps as the textbook scan: identical
  // medoids and cost on a sweep of random inputs.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    size_t n = 40 + seed * 15;
    size_t k = 2 + seed % 4;
    Matrix data(n, 3);
    for (size_t i = 0; i < n; ++i) {
      for (size_t f = 0; f < 3; ++f) data.At(i, f) = rng.NextGaussian();
    }
    DistanceMatrix dist = DistanceMatrix::Euclidean(data);
    auto fast = *Pam(dist, k);
    auto naive = *PamNaive(dist, k);
    EXPECT_NEAR(fast.total_cost, naive.total_cost, 1e-9)
        << "seed " << seed << " n " << n << " k " << k;
    EXPECT_EQ(fast.medoids, naive.medoids) << "seed " << seed;
  }
}

TEST(ClusterSizesTest, CountsPerLabel) {
  std::vector<size_t> sizes = ClusterSizes({0, 1, 1, 2, 2, 2});
  EXPECT_EQ(sizes, (std::vector<size_t>{1, 2, 3}));
}

}  // namespace
}  // namespace blaeu::cluster
