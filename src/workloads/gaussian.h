// Generic Gaussian-mixture tables with planted clusters and themes — the
// calibration workload for the k-selection, sampling-accuracy and
// silhouette experiments (C2-C4).
#pragma once

#include <cstdint>

#include "workloads/dataset.h"

namespace blaeu::workloads {

/// Mixture parameters.
struct MixtureSpec {
  size_t rows = 1000;
  size_t num_clusters = 3;
  /// Numeric feature columns.
  size_t dims = 6;
  /// Distance between neighbouring cluster centers, in within-cluster
  /// standard deviations; >= 4 gives well-separated clusters.
  double separation = 6.0;
  /// Cluster weights (empty = uniform).
  std::vector<double> weights;
  /// Fraction of cells set to NULL.
  double null_rate = 0.0;
  /// Appends a categorical column correlated with the cluster id.
  bool with_categorical = false;
  /// Appends a unique int id column (a primary key to be dropped).
  bool with_id = false;
  uint64_t seed = 42;
};

/// Generates a mixture table. Cluster centers are placed on a simplex-like
/// grid scaled by `separation`; all features belong to theme 0 (plus theme
/// -1 for the id column).
Dataset MakeGaussianMixture(const MixtureSpec& spec);

/// Two independent Gaussian-mixture column groups glued side by side: the
/// minimal table with two planted themes whose row clusterings disagree.
/// Used by theme-detection tests (each group is mutually dependent through
/// its own latent cluster variable, and independent of the other group).
Dataset MakeTwoThemeMixture(size_t rows, size_t dims_per_theme,
                            size_t clusters_a, size_t clusters_b,
                            uint64_t seed);

}  // namespace blaeu::workloads
