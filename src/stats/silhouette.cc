#include "stats/silhouette.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace blaeu::stats {

std::vector<double> SilhouetteValues(const DistanceMatrix& dist,
                                     const std::vector<int>& labels) {
  const size_t n = labels.size();
  assert(dist.size() == n);
  int k = 0;
  for (int l : labels) k = std::max(k, l + 1);
  std::vector<size_t> cluster_size(k, 0);
  for (int l : labels) ++cluster_size[l];

  std::vector<double> out(n, 0.0);
  std::vector<double> sums(k, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const int li = labels[i];
    if (cluster_size[li] <= 1) {
      out[i] = 0.0;  // singleton convention
      continue;
    }
    std::fill(sums.begin(), sums.end(), 0.0);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sums[labels[j]] += dist.At(i, j);
    }
    double a = sums[li] / static_cast<double>(cluster_size[li] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (int c = 0; c < k; ++c) {
      if (c == li || cluster_size[c] == 0) continue;
      b = std::min(b, sums[c] / static_cast<double>(cluster_size[c]));
    }
    if (!std::isfinite(b)) {
      out[i] = 0.0;  // only one non-empty cluster
      continue;
    }
    double denom = std::max(a, b);
    out[i] = denom > 0 ? (b - a) / denom : 0.0;
  }
  return out;
}

double MeanSilhouette(const DistanceMatrix& dist,
                      const std::vector<int>& labels) {
  std::vector<double> values = SilhouetteValues(dist, labels);
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double MeanSilhouetteEuclidean(const Matrix& data,
                               const std::vector<int>& labels) {
  return MeanSilhouette(DistanceMatrix::Euclidean(data), labels);
}

namespace {

/// Stratified sub-sample of point indices: proportional per-cluster quotas
/// with a floor of 2 for clusters of size >= 2 (a silhouette needs within-
/// cluster company).
std::vector<size_t> StratifiedSubsample(const std::vector<int>& labels,
                                        size_t target, Rng* rng) {
  std::unordered_map<int, std::vector<size_t>> by_cluster;
  for (size_t i = 0; i < labels.size(); ++i) {
    by_cluster[labels[i]].push_back(i);
  }
  const double n = static_cast<double>(labels.size());
  std::vector<size_t> picks;
  for (auto& [label, members] : by_cluster) {
    size_t quota = static_cast<size_t>(
        std::round(static_cast<double>(target) *
                   static_cast<double>(members.size()) / n));
    if (members.size() >= 2) quota = std::max<size_t>(quota, 2);
    quota = std::min(quota, members.size());
    for (size_t p : rng->SampleWithoutReplacement(members.size(), quota)) {
      picks.push_back(members[p]);
    }
  }
  return picks;
}

}  // namespace

double MonteCarloSilhouette(
    size_t num_rows, const std::vector<int>& labels,
    const std::function<double(size_t, size_t)>& row_distance,
    const MonteCarloSilhouetteOptions& options) {
  assert(labels.size() == num_rows);
  if (num_rows <= options.subsample_size) {
    // Small input: one exact pass.
    DistanceMatrix dist(num_rows);
    for (size_t i = 0; i < num_rows; ++i) {
      for (size_t j = i + 1; j < num_rows; ++j) {
        dist.Set(i, j, row_distance(i, j));
      }
    }
    return MeanSilhouette(dist, labels);
  }
  Rng rng(options.seed);
  double total = 0.0;
  for (size_t s = 0; s < options.num_subsamples; ++s) {
    std::vector<size_t> picks =
        StratifiedSubsample(labels, options.subsample_size, &rng);
    const size_t m = picks.size();
    DistanceMatrix dist(m);
    std::vector<int> sub_labels(m);
    for (size_t i = 0; i < m; ++i) sub_labels[i] = labels[picks[i]];
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        dist.Set(i, j, row_distance(picks[i], picks[j]));
      }
    }
    total += MeanSilhouette(dist, sub_labels);
  }
  return total / static_cast<double>(options.num_subsamples);
}

double MonteCarloSilhouette(const Matrix& data, const std::vector<int>& labels,
                            const MonteCarloSilhouetteOptions& options) {
  return MonteCarloSilhouette(
      data.rows(), labels,
      [&](size_t i, size_t j) {
        return EuclideanDistance(data.RowPtr(i), data.RowPtr(j), data.cols());
      },
      options);
}

}  // namespace blaeu::stats
