// Cross-cutting coverage: option combinations the per-module suites don't
// reach (alternative dependency measures in theme detection, Gower-encoded
// sessions, CLARA with explicit sample sizes, importances surfaced through
// maps).
#include <gtest/gtest.h>

#include "cluster/clara.h"
#include "core/map_builder.h"
#include "core/navigation.h"
#include "core/theme.h"
#include "stats/distance.h"
#include "stats/metrics.h"
#include "tree/cart.h"
#include "workloads/gaussian.h"
#include "workloads/hollywood.h"

namespace blaeu {
namespace {

TEST(ThemeMeasureTest, PearsonMeasureRecoversLinearThemes) {
  auto data = workloads::MakeTwoThemeMixture(600, 4, 3, 3, 11);
  core::ThemeOptions opt;
  opt.dependency.measure = stats::DependencyMeasure::kAbsPearson;
  auto themes = *core::DetectThemes(*data.table, opt);
  EXPECT_EQ(themes.size(), 2u);
  for (const core::Theme& t : themes.themes) {
    std::set<char> prefixes;
    for (const std::string& name : t.names) prefixes.insert(name[0]);
    EXPECT_EQ(prefixes.size(), 1u);
  }
}

TEST(ThemeMeasureTest, SpearmanMeasureWorksToo) {
  auto data = workloads::MakeTwoThemeMixture(400, 3, 2, 2, 12);
  core::ThemeOptions opt;
  opt.dependency.measure = stats::DependencyMeasure::kAbsSpearman;
  auto themes = *core::DetectThemes(*data.table, opt);
  EXPECT_GE(themes.size(), 2u);
}

TEST(GowerSessionTest, EndToEndWithGowerEncoding) {
  workloads::MixtureSpec spec;
  spec.rows = 500;
  spec.num_clusters = 3;
  spec.dims = 4;
  spec.with_categorical = true;
  spec.null_rate = 0.15;  // plenty of missing values
  auto data = workloads::MakeGaussianMixture(spec);
  core::SessionOptions opt;
  opt.map.sample_size = 500;
  opt.map.preprocess.encoding = core::CategoricalEncoding::kGower;
  auto session_or = core::Session::Start(data.table, "gower", opt);
  ASSERT_TRUE(session_or.ok()) << session_or.status().ToString();
  core::Session s = std::move(session_or).ValueOrDie();
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_FALSE(leaves.empty());
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  ASSERT_TRUE(s.Rollback().ok());
}

TEST(ClaraOptionsTest, ExplicitSampleSizeHonored) {
  workloads::MixtureSpec spec;
  spec.rows = 2000;
  spec.num_clusters = 3;
  spec.dims = 3;
  auto data = workloads::MakeGaussianMixture(spec);
  stats::Matrix features(2000, 3);
  for (size_t r = 0; r < 2000; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      features.At(r, c) = data.table->column(c)->doubles()[r];
    }
  }
  auto dist_fn = [&](size_t i, size_t j) {
    return stats::EuclideanDistance(features.RowPtr(i), features.RowPtr(j),
                                    3);
  };
  cluster::ClaraOptions opt;
  opt.sample_size = 200;  // much larger than the 40+2k default
  opt.num_samples = 2;
  auto result = *cluster::Clara(2000, dist_fn, 3, opt);
  EXPECT_GT(
      stats::AdjustedRandIndex(result.labels, data.truth.row_clusters),
      0.95);
}

TEST(MapOptionsTest, FixedKOverridesSweep) {
  workloads::MixtureSpec spec;
  spec.rows = 400;
  spec.num_clusters = 3;
  spec.dims = 3;
  auto data = workloads::MakeGaussianMixture(spec);
  for (size_t k : {2, 5}) {
    core::MapOptions opt;
    opt.fixed_k = k;
    auto map = *core::BuildMap(*data.table, opt);
    EXPECT_EQ(map.num_clusters, k);
  }
}

TEST(MapOptionsTest, MonteCarloThresholdSwitchesScoring) {
  workloads::MixtureSpec spec;
  spec.rows = 900;
  spec.num_clusters = 3;
  spec.dims = 3;
  auto data = workloads::MakeGaussianMixture(spec);
  core::MapOptions mc;
  mc.sample_size = 900;
  mc.monte_carlo_threshold = 100;  // forces MC scoring
  auto map_mc = *core::BuildMap(*data.table, mc);
  core::MapOptions exact = mc;
  exact.monte_carlo_threshold = 100000;  // forces exact scoring
  auto map_exact = *core::BuildMap(*data.table, exact);
  // Both find the planted structure.
  EXPECT_EQ(map_mc.num_clusters, 3u);
  EXPECT_EQ(map_exact.num_clusters, 3u);
}

TEST(ImportanceTest, MapSplitsTrackImportantColumns) {
  // Train the description tree directly and confirm the split columns of
  // the resulting map carry the importance mass.
  auto data = workloads::MakeHollywood();
  core::MapOptions opt;
  opt.sample_size = 900;
  opt.fixed_k = 2;
  auto map = *core::BuildMap(*data.table, opt);
  // Every internal region's edge references a column of the active set.
  for (const core::MapRegion& r : map.regions) {
    if (r.parent < 0) continue;
    for (const auto& cond : r.edge.conditions()) {
      EXPECT_NE(std::find(map.active_columns.begin(),
                          map.active_columns.end(), cond.column),
                map.active_columns.end())
          << cond.column;
    }
  }
}

TEST(SessionOptionsTest, MultiscaleGrowthConfigurable) {
  workloads::MixtureSpec spec;
  spec.rows = 10000;
  spec.num_clusters = 2;
  spec.dims = 3;
  auto data = workloads::MakeGaussianMixture(spec);
  core::SessionOptions opt;
  opt.multiscale_base = 500;
  opt.multiscale_growth = 2.0;
  opt.map.sample_size = 500;
  auto session = *core::Session::Start(data.table, "ms", opt);
  EXPECT_EQ(session.current().map.total_tuples, 10000u);
  // Zoom still works at scale.
  std::vector<int> leaves = session.current().map.LeafIds();
  ASSERT_TRUE(session.Zoom(leaves[0]).ok());
}

}  // namespace
}  // namespace blaeu
