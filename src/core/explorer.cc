#include "core/explorer.h"

namespace blaeu::core {

Status Explorer::LoadCsv(const std::string& path, const std::string& name,
                         const monet::CsvOptions& csv_options) {
  BLAEU_ASSIGN_OR_RETURN(monet::TablePtr table,
                         monet::ReadCsvFile(path, csv_options));
  return catalog_.Register(name, std::move(table));
}

Status Explorer::LoadTable(monet::TablePtr table, const std::string& name) {
  return catalog_.Register(name, std::move(table));
}

Result<Session*> Explorer::OpenSession(const std::string& name) {
  BLAEU_ASSIGN_OR_RETURN(monet::TablePtr table, catalog_.Get(name));
  BLAEU_ASSIGN_OR_RETURN(Session session,
                         Session::Start(table, name, options_));
  auto owned = std::make_unique<Session>(std::move(session));
  Session* raw = owned.get();
  sessions_[name] = std::move(owned);
  return raw;
}

Result<Session*> Explorer::GetSession(const std::string& name) {
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    return Status::KeyError("no open session on '" + name + "'");
  }
  return it->second.get();
}

Status Explorer::CloseSession(const std::string& name) {
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    return Status::KeyError("no open session on '" + name + "'");
  }
  sessions_.erase(it);
  return Status::OK();
}

}  // namespace blaeu::core
