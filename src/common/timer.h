// Wall-clock timing helpers used by benches and latency reporting.
#pragma once

#include <chrono>
#include <string>

#include "obs/metrics.h"

namespace blaeu {

/// \brief Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief RAII stopwatch that reports its elapsed seconds into a
/// MetricsRegistry histogram when it goes out of scope.
///
///   {
///     ScopedTimer t(&obs::MetricsRegistry::Global(), "core.map.build_seconds");
///     ...work...
///   }  // histogram records the elapsed time here
class ScopedTimer {
 public:
  /// Reports into `histogram` (no-op when null).
  explicit ScopedTimer(obs::Histogram* histogram) : histogram_(histogram) {}

  /// Reports into `registry`'s histogram `name` (no-op when registry null).
  ScopedTimer(obs::MetricsRegistry* registry, const std::string& name)
      : histogram_(registry != nullptr ? registry->histogram(name) : nullptr) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Observe(timer_.ElapsedSeconds());
  }

  /// Elapsed seconds so far (the destructor reports the final figure).
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  obs::Histogram* histogram_;
  Timer timer_;
};

}  // namespace blaeu
