// Unit tests for the catalog and Select-Project query execution.
#include "monet/catalog.h"
#include "monet/query.h"

#include <gtest/gtest.h>

namespace blaeu::monet {
namespace {

TablePtr SmallTable() {
  TableBuilder b(Schema({{"x", DataType::kInt64},
                         {"name", DataType::kString}}));
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(
        b.AppendRow({Value::Int(i), Value::Str("n" + std::to_string(i))})
            .ok());
  }
  return *b.Finish();
}

TEST(CatalogTest, RegisterGetDrop) {
  Catalog cat;
  ASSERT_TRUE(cat.Register("t", SmallTable()).ok());
  EXPECT_TRUE(cat.Contains("t"));
  EXPECT_EQ(cat.size(), 1u);
  auto t = cat.Get("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 5u);
  EXPECT_EQ(cat.Register("t", SmallTable()).code(),
            StatusCode::kInvalidArgument);  // duplicate
  ASSERT_TRUE(cat.Drop("t").ok());
  EXPECT_FALSE(cat.Contains("t"));
  EXPECT_EQ(cat.Drop("t").code(), StatusCode::kKeyError);
  EXPECT_EQ(cat.Get("t").status().code(), StatusCode::kKeyError);
}

TEST(CatalogTest, RegisterOrReplaceOverwrites) {
  Catalog cat;
  cat.RegisterOrReplace("t", SmallTable());
  cat.RegisterOrReplace("t", SmallTable()->Take({0}));
  EXPECT_EQ((*cat.Get("t"))->num_rows(), 1u);
}

TEST(CatalogTest, ListIsSorted) {
  Catalog cat;
  cat.RegisterOrReplace("zeta", SmallTable());
  cat.RegisterOrReplace("alpha", SmallTable());
  EXPECT_EQ(cat.List(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(CatalogTest, NullTableRejected) {
  Catalog cat;
  EXPECT_EQ(cat.Register("t", nullptr).code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, SqlRendering) {
  SelectProjectQuery q;
  q.table_name = "movies";
  q.columns = {"budget", "gross"};
  q.where.Add(Condition::Compare("budget", CompareOp::kGe,
                                 Value::Double(100)));
  EXPECT_EQ(q.ToSql(),
            "SELECT \"budget\", \"gross\" FROM \"movies\" WHERE "
            "\"budget\" >= 100;");
  SelectProjectQuery star;
  star.table_name = "t";
  EXPECT_EQ(star.ToSql(), "SELECT * FROM \"t\";");
}

TEST(QueryTest, ExecutesAgainstCatalog) {
  Catalog cat;
  ASSERT_TRUE(cat.Register("t", SmallTable()).ok());
  SelectProjectQuery q;
  q.table_name = "t";
  q.columns = {"name"};
  q.where.Add(Condition::Compare("x", CompareOp::kGt, Value::Int(2)));
  auto result = q.Execute(cat);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 2u);
  EXPECT_EQ((*result)->num_columns(), 1u);
  EXPECT_EQ((*result)->GetValue(0, 0).AsString(), "n3");
}

TEST(QueryTest, MissingTableFails) {
  Catalog cat;
  SelectProjectQuery q;
  q.table_name = "ghost";
  EXPECT_EQ(q.Execute(cat).status().code(), StatusCode::kKeyError);
}

TEST(QueryTest, MissingColumnFails) {
  Catalog cat;
  ASSERT_TRUE(cat.Register("t", SmallTable()).ok());
  SelectProjectQuery q;
  q.table_name = "t";
  q.columns = {"nope"};
  EXPECT_EQ(q.Execute(cat).status().code(), StatusCode::kKeyError);
}

}  // namespace
}  // namespace blaeu::monet
