#include "workloads/hollywood.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace blaeu::workloads {

using monet::Column;
using monet::DataType;
using monet::Field;
using monet::Schema;
using monet::Table;

namespace {

struct Profile {
  double budget_mean, budget_sd;      // million USD, log-ish via clamping
  double gross_mult_mean, gross_mult_sd;  // worldwide gross / budget
  double critics_mean, critics_sd;    // 0-100
  double audience_mean, audience_sd;  // 0-100
  double theaters_mean, theaters_sd;
};

constexpr Profile kProfiles[] = {
    // blockbuster
    {160.0, 40.0, 3.2, 0.8, 55.0, 15.0, 72.0, 8.0, 4000.0, 400.0},
    // critical darling
    {12.0, 6.0, 2.4, 1.0, 88.0, 6.0, 78.0, 7.0, 900.0, 350.0},
    // flop
    {60.0, 20.0, 0.6, 0.25, 32.0, 10.0, 40.0, 9.0, 2600.0, 500.0},
    // mid-range
    {45.0, 15.0, 1.6, 0.5, 58.0, 10.0, 58.0, 8.0, 2800.0, 450.0},
};

const char* kGenres[] = {"Action", "Drama",  "Comedy",
                         "Horror", "Sci-Fi", "Animation"};
const char* kStudios[] = {"WB",       "Universal", "Disney", "Paramount",
                          "Sony",     "Fox",       "Lionsgate"};
// Genre preference per profile (index into kGenres, weights).
const double kGenreWeights[4][6] = {
    {4, 0.5, 1, 0.3, 3, 2},   // blockbuster: action/sci-fi/animation
    {0.3, 4, 1.5, 0.4, 0.8, 0.3},  // darling: drama/comedy
    {1.5, 1, 1.5, 2, 1, 0.5},      // flop: spread, horror-leaning
    {1.5, 1.5, 2.5, 1, 0.8, 0.7},  // mid-range: comedy-leaning
};

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

Dataset MakeHollywood(const HollywoodSpec& spec) {
  Rng rng(spec.seed);
  std::vector<Field> fields = {
      {"film_id", DataType::kInt64},
      {"title", DataType::kString},
      {"genre", DataType::kString},
      {"studio", DataType::kString},
      {"year", DataType::kInt64},
      {"budget_musd", DataType::kDouble},
      {"domestic_gross_musd", DataType::kDouble},
      {"worldwide_gross_musd", DataType::kDouble},
      {"profitability", DataType::kDouble},
      {"rt_critics", DataType::kDouble},
      {"audience_score", DataType::kDouble},
      {"theaters", DataType::kInt64},
  };
  std::vector<monet::ColumnPtr> columns;
  for (const Field& f : fields) {
    auto col = std::make_shared<Column>(f.type);
    col->Reserve(spec.rows);
    columns.push_back(col);
  }

  Dataset out;
  out.name = "hollywood";
  out.truth.num_clusters = 4;
  out.truth.num_themes = 3;
  //                     id  title genre studio year  bud  dom  ww   prof
  out.truth.column_themes = {-1, -1, 2, 2, 2, 0, 0, 0, 0, 1, 1, 2};
  // cluster mix: 15% blockbusters, 20% darlings, 25% flops, 40% mid.
  std::vector<double> weights = {0.15, 0.20, 0.25, 0.40};

  for (size_t r = 0; r < spec.rows; ++r) {
    size_t c = rng.NextDiscrete(weights);
    out.truth.row_clusters.push_back(static_cast<int>(c));
    const Profile& p = kProfiles[c];

    double budget = Clamp(rng.NextGaussian(p.budget_mean, p.budget_sd), 1.0,
                          400.0);
    double mult = Clamp(rng.NextGaussian(p.gross_mult_mean, p.gross_mult_sd),
                        0.05, 12.0);
    double worldwide = budget * mult;
    double domestic_share = Clamp(rng.NextGaussian(0.45, 0.08), 0.15, 0.9);
    double domestic = worldwide * domestic_share;
    double critics = Clamp(rng.NextGaussian(p.critics_mean, p.critics_sd),
                           2.0, 100.0);
    double audience = Clamp(rng.NextGaussian(p.audience_mean, p.audience_sd),
                            5.0, 100.0);
    int64_t theaters = static_cast<int64_t>(
        Clamp(rng.NextGaussian(p.theaters_mean, p.theaters_sd), 40.0, 4500.0));
    int64_t year = rng.NextInt(2007, 2013);

    std::vector<double> genre_w(std::begin(kGenreWeights[c]),
                                std::end(kGenreWeights[c]));
    const char* genre = kGenres[rng.NextDiscrete(genre_w)];
    const char* studio = kStudios[rng.NextBounded(7)];

    size_t i = 0;
    columns[i++]->AppendInt(static_cast<int64_t>(r + 1));
    columns[i++]->AppendString("Film #" + std::to_string(r + 1));
    columns[i++]->AppendString(genre);
    columns[i++]->AppendString(studio);
    columns[i++]->AppendInt(year);
    columns[i++]->AppendDouble(budget);
    columns[i++]->AppendDouble(domestic);
    columns[i++]->AppendDouble(worldwide);
    columns[i++]->AppendDouble(mult);
    if (rng.NextBernoulli(spec.missing_rate)) {
      columns[i++]->AppendNull();
    } else {
      columns[i++]->AppendDouble(critics);
    }
    if (rng.NextBernoulli(spec.missing_rate)) {
      columns[i++]->AppendNull();
    } else {
      columns[i++]->AppendDouble(audience);
    }
    columns[i++]->AppendInt(theaters);
  }
  out.table = *Table::Make(Schema(std::move(fields)), std::move(columns));
  return out;
}

}  // namespace blaeu::workloads
