// Unit tests for conditions, conjunctions and their SQL rendering.
#include "monet/predicate.h"

#include <gtest/gtest.h>

namespace blaeu::monet {
namespace {

TablePtr TestTable() {
  TableBuilder b(Schema({{"x", DataType::kDouble},
                         {"genre", DataType::kString},
                         {"n", DataType::kInt64}}));
  auto add = [&](double x, const char* g, int64_t n) {
    EXPECT_TRUE(b.AppendRow({Value::Double(x), Value::Str(g), Value::Int(n)})
                    .ok());
  };
  add(1.0, "Drama", 10);
  add(2.0, "Comedy", 20);
  add(3.0, "Drama", 30);
  EXPECT_TRUE(b.AppendRow({Value::Null(), Value::Null(), Value::Int(40)}).ok());
  add(5.0, "Action", 50);
  return *b.Finish();
}

TEST(ConditionTest, NumericComparisons) {
  auto t = TestTable();
  const Column& x = *t->column(0);
  Condition lt = Condition::Compare("x", CompareOp::kLt, Value::Double(2.5));
  EXPECT_TRUE(lt.Matches(x, 0));
  EXPECT_TRUE(lt.Matches(x, 1));
  EXPECT_FALSE(lt.Matches(x, 2));
  Condition ge = Condition::Compare("x", CompareOp::kGe, Value::Double(3.0));
  EXPECT_TRUE(ge.Matches(x, 2));
  EXPECT_FALSE(ge.Matches(x, 1));
}

TEST(ConditionTest, NullsFailComparisons) {
  auto t = TestTable();
  Condition c = Condition::Compare("x", CompareOp::kLt, Value::Double(100));
  EXPECT_FALSE(c.Matches(*t->column(0), 3));  // NULL row
}

TEST(ConditionTest, NullTests) {
  auto t = TestTable();
  EXPECT_TRUE(Condition::IsNull("x").Matches(*t->column(0), 3));
  EXPECT_FALSE(Condition::IsNull("x").Matches(*t->column(0), 0));
  EXPECT_TRUE(Condition::NotNull("x").Matches(*t->column(0), 0));
}

TEST(ConditionTest, StringEqualityAndOrdering) {
  auto t = TestTable();
  const Column& g = *t->column(1);
  Condition eq = Condition::Compare("genre", CompareOp::kEq,
                                    Value::Str("Drama"));
  EXPECT_TRUE(eq.Matches(g, 0));
  EXPECT_FALSE(eq.Matches(g, 1));
  // Cross-type comparison fails closed.
  Condition cross = Condition::Compare("genre", CompareOp::kEq,
                                       Value::Double(1.0));
  EXPECT_FALSE(cross.Matches(g, 0));
}

TEST(ConditionTest, InSetAndNegation) {
  auto t = TestTable();
  const Column& g = *t->column(1);
  Condition in = Condition::InSet("genre", {"Drama", "Action"});
  EXPECT_TRUE(in.Matches(g, 0));
  EXPECT_FALSE(in.Matches(g, 1));
  EXPECT_FALSE(in.Matches(g, 3));  // NULL fails IN
  Condition not_in = Condition::InSet("genre", {"Drama"}, /*negated=*/true);
  EXPECT_FALSE(not_in.Matches(g, 0));
  EXPECT_TRUE(not_in.Matches(g, 1));
  EXPECT_FALSE(not_in.Matches(g, 3));  // NULL fails NOT IN too
}

TEST(ConditionTest, SqlRendering) {
  EXPECT_EQ(
      Condition::Compare("x", CompareOp::kGe, Value::Double(22)).ToSql(),
      "\"x\" >= 22");
  EXPECT_EQ(Condition::Compare("g", CompareOp::kEq, Value::Str("a")).ToSql(),
            "\"g\" = 'a'");
  EXPECT_EQ(Condition::InSet("g", {"a", "b"}).ToSql(),
            "\"g\" IN ('a', 'b')");
  EXPECT_EQ(Condition::InSet("g", {"a"}, true).ToSql(),
            "\"g\" NOT IN ('a')");
  EXPECT_EQ(Condition::IsNull("g").ToSql(), "\"g\" IS NULL");
}

TEST(ConjunctionTest, EvaluateAll) {
  auto t = TestTable();
  Conjunction conj;
  conj.Add(Condition::Compare("x", CompareOp::kGt, Value::Double(1.5)));
  conj.Add(Condition::Compare("genre", CompareOp::kEq, Value::Str("Drama")));
  auto sel = *conj.Evaluate(*t);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0], 2u);
}

TEST(ConjunctionTest, EmptyConjunctionKeepsEverything) {
  auto t = TestTable();
  Conjunction conj;
  auto sel = *conj.Evaluate(*t);
  EXPECT_EQ(sel.size(), t->num_rows());
  EXPECT_EQ(conj.ToSql(), "TRUE");
}

TEST(ConjunctionTest, EvaluateOnRestrictsToBase) {
  auto t = TestTable();
  Conjunction conj;
  conj.Add(Condition::Compare("n", CompareOp::kGe, Value::Int(20)));
  SelectionVector base({0, 1, 2});
  auto sel = *conj.EvaluateOn(*t, base);
  EXPECT_EQ(sel.rows(), (std::vector<uint32_t>{1, 2}));
}

TEST(ConjunctionTest, UnknownColumnIsKeyError) {
  auto t = TestTable();
  Conjunction conj;
  conj.Add(Condition::Compare("zz", CompareOp::kLt, Value::Double(1)));
  EXPECT_EQ(conj.Evaluate(*t).status().code(), StatusCode::kKeyError);
}

TEST(ConjunctionTest, AndConcatenates) {
  Conjunction a, b;
  a.Add(Condition::Compare("x", CompareOp::kLt, Value::Double(1)));
  b.Add(Condition::IsNull("g"));
  Conjunction c = a.And(b);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.ToSql(), "\"x\" < 1 AND \"g\" IS NULL");
}

TEST(ConjunctionTest, MatchesRow) {
  auto t = TestTable();
  Conjunction conj;
  conj.Add(Condition::Compare("x", CompareOp::kLe, Value::Double(1.0)));
  EXPECT_TRUE(*conj.MatchesRow(*t, 0));
  EXPECT_FALSE(*conj.MatchesRow(*t, 1));
}

TEST(CompareOpTest, Symbols) {
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kLe), "<=");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kNe), "<>");
}

}  // namespace
}  // namespace blaeu::monet
