#include "obs/trace.h"

#include <atomic>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/json_writer.h"

namespace blaeu::obs {

uint64_t ThisThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {

/// Stack of open spans per (thread, tracer). Lexical nesting means RAII
/// spans close LIFO, so a plain vector is enough; entries from different
/// tracers interleave safely because parents are looked up per tracer.
struct OpenSpan {
  const Tracer* tracer;
  int id;
  int depth;
};
thread_local std::vector<OpenSpan> tls_open_spans;

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* global = new Tracer();  // leaked: see MetricsRegistry
  return *global;
}

int Tracer::BeginSpan(const std::string& name, int parent, int depth) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord rec;
  rec.name = name;
  rec.id = static_cast<int>(spans_.size());
  rec.parent = parent;
  rec.depth = depth;
  rec.thread = ThisThreadId();
  rec.start_ns = NowNs();
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

void Tracer::EndSpan(int id,
                     std::vector<std::pair<std::string, std::string>> attrs) {
  int64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord& rec = spans_[id];
  rec.duration_ns = now - rec.start_ns;
  rec.attrs = std::move(attrs);
}

std::vector<SpanRecord> Tracer::Finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

namespace {

void WriteSpanTree(const std::vector<SpanRecord>& spans,
                   const std::vector<std::vector<int>>& children, int id,
                   JsonWriter* w) {
  const SpanRecord& s = spans[id];
  w->BeginObject();
  w->KV("name", s.name);
  w->KV("thread", static_cast<int64_t>(s.thread));
  w->KV("start_us", static_cast<double>(s.start_ns) / 1e3);
  w->KV("duration_us",
        s.duration_ns < 0 ? -1.0 : static_cast<double>(s.duration_ns) / 1e3);
  if (!s.attrs.empty()) {
    w->Key("attrs").BeginObject();
    for (const auto& [k, v] : s.attrs) w->KV(k, v);
    w->EndObject();
  }
  if (!children[id].empty()) {
    w->Key("children").BeginArray();
    for (int child : children[id]) {
      WriteSpanTree(spans, children, child, w);
    }
    w->EndArray();
  }
  w->EndObject();
}

}  // namespace

std::string Tracer::ToJson() const {
  std::vector<SpanRecord> spans = Finished();
  std::vector<std::vector<int>> children(spans.size());
  std::vector<int> roots;
  for (const SpanRecord& s : spans) {
    if (s.parent >= 0) {
      children[s.parent].push_back(s.id);
    } else {
      roots.push_back(s.id);
    }
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("spans").BeginArray();
  for (int root : roots) WriteSpanTree(spans, children, root, &w);
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string Tracer::ToChromeTrace() const {
  std::vector<SpanRecord> spans = Finished();
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const SpanRecord& s : spans) {
    if (s.duration_ns < 0) continue;  // still open
    w.BeginObject();
    w.KV("name", s.name);
    w.KV("cat", "blaeu");
    w.KV("ph", "X");  // complete event: ts + dur, microseconds
    w.KV("ts", static_cast<double>(s.start_ns) / 1e3);
    w.KV("dur", static_cast<double>(s.duration_ns) / 1e3);
    w.KV("pid", 1);
    w.KV("tid", static_cast<int64_t>(s.thread));
    if (!s.attrs.empty()) {
      w.Key("args").BeginObject();
      for (const auto& [k, v] : s.attrs) w.KV(k, v);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Span::Span(Tracer* tracer, std::string name) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  // Parent: innermost open span of the same tracer on this thread.
  int parent = -1;
  int depth = 0;
  for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend(); ++it) {
    if (it->tracer == tracer_) {
      parent = it->id;
      depth = it->depth + 1;
      break;
    }
  }
  id_ = tracer_->BeginSpan(name, parent, depth);
  tls_open_spans.push_back({tracer_, id_, depth});
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  // RAII spans close LIFO per thread; pop our entry (and tolerate a caller
  // that let spans escape strict nesting by searching from the top).
  for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend(); ++it) {
    if (it->tracer == tracer_ && it->id == id_) {
      tls_open_spans.erase(std::next(it).base());
      break;
    }
  }
  tracer_->EndSpan(id_, std::move(attrs_));
}

void Span::SetAttr(const std::string& key, const std::string& value) {
  if (tracer_ == nullptr) return;
  attrs_.emplace_back(key, value);
}

void Span::SetAttr(const std::string& key, int64_t value) {
  if (tracer_ == nullptr) return;
  attrs_.emplace_back(key, std::to_string(value));
}

void Span::SetAttr(const std::string& key, double value) {
  if (tracer_ == nullptr) return;
  std::ostringstream os;
  os << value;
  attrs_.emplace_back(key, os.str());
}

}  // namespace blaeu::obs
