#include "monet/catalog.h"

namespace blaeu::monet {

Status Catalog::Register(const std::string& name, TablePtr table) {
  if (table == nullptr) return Status::Invalid("null table");
  auto [it, inserted] = tables_.emplace(name, std::move(table));
  if (!inserted) {
    return Status::Invalid("table '" + name + "' already registered");
  }
  return Status::OK();
}

void Catalog::RegisterOrReplace(const std::string& name, TablePtr table) {
  tables_[name] = std::move(table);
}

Result<TablePtr> Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::KeyError("no table named '" + name + "'");
  }
  return it->second;
}

Status Catalog::Drop(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::KeyError("no table named '" + name + "'");
  }
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::List() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

}  // namespace blaeu::monet
