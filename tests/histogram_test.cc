// Unit tests for histogram / frequency / scatter summaries.
#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace blaeu::stats {
namespace {

using monet::Column;
using monet::DataType;
using monet::SelectionVector;

TEST(NumericHistogramTest, CountsFallInBins) {
  Column col(DataType::kDouble);
  for (int i = 0; i < 100; ++i) col.AppendDouble(i);
  auto h = *NumericHistogram(col, SelectionVector::All(100), 10);
  EXPECT_EQ(h.counts.size(), 10u);
  for (size_t c : h.counts) EXPECT_EQ(c, 10u);
  EXPECT_DOUBLE_EQ(h.min, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 99.0);
  EXPECT_EQ(h.total(), 100u);
}

TEST(NumericHistogramTest, NullsCountedSeparately) {
  Column col(DataType::kDouble);
  col.AppendDouble(1);
  col.AppendNull();
  col.AppendDouble(2);
  auto h = *NumericHistogram(col, SelectionVector::All(3), 2);
  EXPECT_EQ(h.null_count, 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(NumericHistogramTest, ConstantDataSingleOccupiedBin) {
  Column col(DataType::kDouble);
  for (int i = 0; i < 5; ++i) col.AppendDouble(7.0);
  auto h = *NumericHistogram(col, SelectionVector::All(5), 4);
  EXPECT_EQ(h.counts[0], 5u);
}

TEST(NumericHistogramTest, StringColumnRejected) {
  Column col(DataType::kString);
  col.AppendString("x");
  auto r = NumericHistogram(col, SelectionVector::All(1), 4);
  EXPECT_EQ(r.status().code(), blaeu::StatusCode::kTypeError);
}

TEST(NumericHistogramTest, ZeroBinsRejected) {
  Column col(DataType::kDouble);
  col.AppendDouble(1);
  auto r = NumericHistogram(col, SelectionVector::All(1), 0);
  EXPECT_EQ(r.status().code(), blaeu::StatusCode::kInvalidArgument);
}

TEST(NumericHistogramTest, AsciiRenderingHasBars) {
  Column col(DataType::kDouble);
  for (int i = 0; i < 20; ++i) col.AppendDouble(i % 4);
  auto h = *NumericHistogram(col, SelectionVector::All(20), 4);
  std::string text = h.ToAscii();
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(FrequencyTest, OrderedByCount) {
  Column col(DataType::kString);
  for (const char* v : {"b", "a", "a", "c", "a", "b"}) col.AppendString(v);
  FrequencyTable t = CategoricalFrequencies(col, SelectionVector::All(6));
  ASSERT_EQ(t.entries.size(), 3u);
  EXPECT_EQ(t.entries[0].first, "a");
  EXPECT_EQ(t.entries[0].second, 3u);
  EXPECT_EQ(t.distinct, 3u);
}

TEST(FrequencyTest, TruncatesToMaxEntries) {
  Column col(DataType::kInt64);
  for (int i = 0; i < 50; ++i) col.AppendInt(i);
  FrequencyTable t = CategoricalFrequencies(col, SelectionVector::All(50), 5);
  EXPECT_EQ(t.entries.size(), 5u);
  EXPECT_EQ(t.distinct, 50u);
  EXPECT_NE(t.ToAscii().find("more values"), std::string::npos);
}

TEST(ScatterTest, GridCountsMatchPoints) {
  Column x(DataType::kDouble), y(DataType::kDouble);
  for (int i = 0; i < 10; ++i) {
    x.AppendDouble(i);
    y.AppendDouble(i);
  }
  auto s = *BivariateScatter(x, y, SelectionVector::All(10), 5, 5);
  size_t total = 0;
  for (size_t c : s.counts) total += c;
  EXPECT_EQ(total, 10u);
  // Diagonal data: corners occupied.
  EXPECT_GT(s.At(0, 0), 0u);
  EXPECT_GT(s.At(4, 4), 0u);
  EXPECT_EQ(s.At(0, 4), 0u);
}

TEST(ScatterTest, NullPairsSkipped) {
  Column x(DataType::kDouble), y(DataType::kDouble);
  x.AppendDouble(1);
  y.AppendNull();
  x.AppendDouble(2);
  y.AppendDouble(2);
  auto s = *BivariateScatter(x, y, SelectionVector::All(2), 2, 2);
  size_t total = 0;
  for (size_t c : s.counts) total += c;
  EXPECT_EQ(total, 1u);
}

TEST(ScatterTest, AsciiRendersGrid) {
  Column x(DataType::kDouble), y(DataType::kDouble);
  for (int i = 0; i < 40; ++i) {
    x.AppendDouble(i % 8);
    y.AppendDouble(i / 8);
  }
  auto s = *BivariateScatter(x, y, SelectionVector::All(40), 8, 5);
  std::string text = s.ToAscii();
  EXPECT_NE(text.find('|'), std::string::npos);
  EXPECT_NE(text.find("x: ["), std::string::npos);
}

}  // namespace
}  // namespace blaeu::stats
