// Process metrics: named counters, gauges and log-scale latency histograms.
//
// The registry is the measurement side of the observability subsystem (the
// tracer in obs/trace.h is the timeline side). Metrics are cheap enough to
// leave on in production builds: counters are single relaxed atomics, and
// histograms take one short critical section per observation.
//
// Naming convention (see ROADMAP.md "Observability"):
//   <layer>.<component>.<metric>[_<unit>]
// e.g. "core.map.build_seconds", "cluster.pam.swap_iterations",
// "monet.csv.rows_read". Durations are always seconds, sizes always rows.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace blaeu::obs {

/// \brief Monotonically increasing integer metric (events, rows, iterations).
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Last-write-wins floating-point metric (sizes, ratios, levels).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Aggregated view of a histogram at one point in time.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// \brief Log-scale histogram for positive measurements (latencies, sizes).
///
/// Buckets are powers of 2 starting at 1 nanosecond-equivalent (1e-9), so
/// the whole range from nanoseconds to hours fits in 64 buckets with a
/// constant ~2x relative error on the reported quantiles. Quantiles are
/// estimated at the geometric midpoint of the containing bucket, clamped to
/// the observed min/max.
class Histogram {
 public:
  void Observe(double value);

  HistogramSnapshot Snapshot() const;

 private:
  static constexpr size_t kNumBuckets = 64;
  static constexpr double kFirstBound = 1e-9;

  static size_t BucketIndex(double value);
  double QuantileLocked(double q) const;

  mutable std::mutex mu_;
  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Point-in-time copy of every metric in a registry — what the
/// exporters (obs/export.h) consume.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// \brief Named metric families. Thread-safe; metric pointers returned are
/// stable for the registry's lifetime, so hot paths can look up once and
/// keep the pointer.
///
/// `Global()` is the process-wide instance that instrumentation in the
/// library reports to by default; tests inject their own registry through
/// the options structs (e.g. core::MapOptions::metrics) to observe a single
/// operation in isolation.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-global registry (never destroyed).
  static MetricsRegistry& Global();

  /// Returns the named metric, creating it on first use.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Copies every metric's current value (histograms as snapshots).
  MetricsSnapshot Snapshot() const;

  /// Serializes every metric:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,...}}}
  std::string ToJson() const;

  /// Drops every metric (tests and long-lived sessions between reports).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace blaeu::obs
