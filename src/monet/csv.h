// CSV import/export with type inference — the "CSV File" ingest path of
// Figure 4.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "monet/table.h"

namespace blaeu::monet {

/// Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Tokens treated as NULL (case-sensitive, compared after trimming).
  std::vector<std::string> null_tokens = {"", "NA", "NULL", "null", "nan"};
  /// Rows scanned for type inference (0 = all rows).
  size_t inference_rows = 1000;
};

/// Parses CSV from a stream. Column types are inferred per column over the
/// first `inference_rows` data rows, choosing the narrowest of
/// bool < int64 < double < string that fits every non-null token. Later
/// rows that contradict the inferred type make the read fail with
/// TypeError (no silent coercion).
Result<TablePtr> ReadCsv(std::istream& in, const CsvOptions& options = {});

/// Reads a CSV file from disk.
Result<TablePtr> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

/// Writes `table` as RFC-4180 CSV (header + rows, fields escaped).
Status WriteCsv(const Table& table, std::ostream& out, char delimiter = ',');

/// Writes `table` to a file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace blaeu::monet
