// Unit tests for typed nullable columns.
#include "monet/column.h"

#include <gtest/gtest.h>

namespace blaeu::monet {
namespace {

TEST(ValueTest, FactoriesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  Value d = Value::Double(2.5);
  EXPECT_EQ(d.type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 2.5);
  Value i = Value::Int(7);
  EXPECT_EQ(i.AsInt(), 7);
  EXPECT_DOUBLE_EQ(i.AsDouble(), 7.0);  // widening
  Value s = Value::Str("hi");
  EXPECT_EQ(s.AsString(), "hi");
  Value b = Value::Boolean(true);
  EXPECT_TRUE(b.AsBool());
  EXPECT_DOUBLE_EQ(b.AsDouble(), 1.0);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(3).ToString(), "3");
  EXPECT_EQ(Value::Str("x").ToString(), "x");
  EXPECT_EQ(Value::Boolean(false).ToString(), "false");
  EXPECT_EQ(Value::Double(1.25).ToString(), "1.25");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_FALSE(Value::Int(3) == Value::Int(4));
  EXPECT_FALSE(Value::Int(3) == Value::Double(3.0));  // type-sensitive
  EXPECT_FALSE(Value::Null() == Value::Int(0));
}

TEST(ColumnTest, AppendAndGet) {
  Column col(DataType::kDouble);
  col.AppendDouble(1.0);
  col.AppendNull();
  col.AppendDouble(3.0);
  EXPECT_EQ(col.size(), 3u);
  EXPECT_EQ(col.null_count(), 1u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_DOUBLE_EQ(col.GetValue(0).AsDouble(), 1.0);
  EXPECT_TRUE(col.GetValue(1).is_null());
}

TEST(ColumnTest, StringColumn) {
  Column col(DataType::kString);
  col.AppendString("a");
  col.AppendString("b");
  EXPECT_EQ(col.StringAt(1), "b");
  EXPECT_EQ(col.GetValue(0).AsString(), "a");
}

TEST(ColumnTest, AppendValueTypeChecks) {
  Column col(DataType::kInt64);
  EXPECT_TRUE(col.AppendValue(Value::Int(1)).ok());
  EXPECT_TRUE(col.AppendValue(Value::Double(2.9)).ok());  // narrowing allowed
  EXPECT_EQ(col.ints()[1], 2);
  EXPECT_TRUE(col.AppendValue(Value::Null()).ok());
  Status s = col.AppendValue(Value::Str("nope"));
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_EQ(col.size(), 3u);
}

TEST(ColumnTest, AppendValueStringColumnRejectsNumbers) {
  Column col(DataType::kString);
  EXPECT_EQ(col.AppendValue(Value::Int(1)).code(), StatusCode::kTypeError);
  EXPECT_TRUE(col.AppendValue(Value::Str("ok")).ok());
}

TEST(ColumnTest, GetNumericWidens) {
  Column ints(DataType::kInt64);
  ints.AppendInt(5);
  EXPECT_DOUBLE_EQ(ints.GetNumeric(0), 5.0);
  Column bools(DataType::kBool);
  bools.AppendBool(true);
  EXPECT_DOUBLE_EQ(bools.GetNumeric(0), 1.0);
}

TEST(ColumnTest, TakeGathersWithDuplicatesAndNulls) {
  Column col(DataType::kInt64);
  for (int i = 0; i < 5; ++i) col.AppendInt(i * 10);
  col.AppendNull();
  Column taken = col.Take({5, 0, 0, 3});
  ASSERT_EQ(taken.size(), 4u);
  EXPECT_TRUE(taken.IsNull(0));
  EXPECT_EQ(taken.ints()[1], 0);
  EXPECT_EQ(taken.ints()[2], 0);
  EXPECT_EQ(taken.ints()[3], 30);
  EXPECT_EQ(taken.null_count(), 1u);
}

TEST(ColumnTest, TakeEmpty) {
  Column col(DataType::kString);
  col.AppendString("x");
  Column taken = col.Take({});
  EXPECT_EQ(taken.size(), 0u);
}

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeName(DataType::kDouble), "double");
  EXPECT_STREQ(DataTypeName(DataType::kString), "string");
  EXPECT_TRUE(IsNumeric(DataType::kInt64));
  EXPECT_FALSE(IsNumeric(DataType::kString));
}

}  // namespace
}  // namespace blaeu::monet
