// Unit tests for entropy, mutual information and correlations.
#include "stats/entropy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace blaeu::stats {
namespace {

TEST(EntropyTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Entropy({1, 1, 1, 1}), 0.0);
  EXPECT_NEAR(Entropy({0, 1}), std::log(2.0), 1e-12);
  EXPECT_NEAR(Entropy({0, 1, 2, 3}), std::log(4.0), 1e-12);
  EXPECT_DOUBLE_EQ(Entropy({}), 0.0);
}

TEST(JointEntropyTest, IndependentAddsUp) {
  // Perfectly crossed design: H(X,Y) = H(X) + H(Y).
  std::vector<int> xs, ys;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 3; ++y) {
      xs.push_back(x);
      ys.push_back(y);
    }
  }
  EXPECT_NEAR(JointEntropy(xs, ys), Entropy(xs) + Entropy(ys), 1e-12);
  EXPECT_NEAR(MutualInformation(xs, ys), 0.0, 1e-12);
}

TEST(MutualInformationTest, PerfectDependence) {
  std::vector<int> xs = {0, 1, 2, 0, 1, 2};
  std::vector<int> ys = {5, 7, 9, 5, 7, 9};  // bijection of xs
  EXPECT_NEAR(MutualInformation(xs, ys), Entropy(xs), 1e-12);
  EXPECT_NEAR(NormalizedMutualInformation(xs, ys), 1.0, 1e-12);
}

TEST(MutualInformationTest, NonNegativeAndSymmetric) {
  Rng rng(1);
  std::vector<int> xs, ys;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(static_cast<int>(rng.NextBounded(4)));
    ys.push_back(static_cast<int>(rng.NextBounded(4)));
  }
  double mi_xy = MutualInformation(xs, ys);
  double mi_yx = MutualInformation(ys, xs);
  EXPECT_GE(mi_xy, 0.0);
  EXPECT_NEAR(mi_xy, mi_yx, 1e-12);
  // Independent draws: MI close to 0.
  EXPECT_LT(NormalizedMutualInformation(xs, ys), 0.1);
}

TEST(NmiTest, ConstantColumnScoresZero) {
  std::vector<int> xs = {0, 0, 0, 0};
  std::vector<int> ys = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(xs, ys), 0.0);
}

TEST(NmiTest, NegativeLabelsSupported) {
  // -1 is the NULL code used by column encoding.
  std::vector<int> xs = {-1, 0, 1, -1, 0, 1};
  std::vector<int> ys = {2, 3, 4, 2, 3, 4};
  EXPECT_NEAR(NormalizedMutualInformation(xs, ys), 1.0, 1e-12);
}

TEST(MillerMadowTest, ShrinksIndependentMIToZero) {
  Rng rng(2);
  std::vector<int> xs, ys;
  for (int i = 0; i < 800; ++i) {
    xs.push_back(static_cast<int>(rng.NextBounded(8)));
    ys.push_back(static_cast<int>(rng.NextBounded(8)));
  }
  // Plug-in MI of independent 8x8 variables on 800 samples is visibly
  // positive; the corrected estimator should be near zero and smaller.
  double plugin = MutualInformation(xs, ys);
  double corrected = MutualInformationMM(xs, ys);
  EXPECT_GT(plugin, 0.02);
  EXPECT_LT(corrected, plugin);
  EXPECT_LT(corrected, 0.01);
}

TEST(MillerMadowTest, PreservesStrongDependence) {
  std::vector<int> xs, ys;
  for (int i = 0; i < 600; ++i) {
    xs.push_back(i % 4);
    ys.push_back((i % 4) + 10);
  }
  EXPECT_NEAR(MutualInformationMM(xs, ys), MutualInformation(xs, ys),
              0.02);
  EXPECT_GT(NormalizedMutualInformationMM(xs, ys), 0.95);
}

TEST(MillerMadowTest, NeverNegative) {
  std::vector<int> xs = {0, 1, 0, 1};
  std::vector<int> ys = {2, 2, 3, 3};
  EXPECT_GE(MutualInformationMM(xs, ys), 0.0);
  EXPECT_GE(NormalizedMutualInformationMM(xs, ys), 0.0);
}

TEST(PearsonTest, LinearRelationships) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, neg), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateInputsScoreZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {2}), 0.0);
}

TEST(PearsonTest, MissesNonMonotoneDependence) {
  // y = x^2 on symmetric x: Pearson ~ 0 even though fully dependent.
  std::vector<double> xs, ys;
  for (double x = -10; x <= 10; x += 0.5) {
    xs.push_back(x);
    ys.push_back(x * x);
  }
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 0.0, 1e-9);
}

TEST(SpearmanTest, MonotoneNonlinearIsPerfect) {
  std::vector<double> xs, ys;
  for (double x = 1; x <= 20; ++x) {
    xs.push_back(x);
    ys.push_back(x * x * x);  // monotone, nonlinear
  }
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(SpearmanTest, HandlesTies) {
  std::vector<double> xs = {1, 2, 2, 3};
  std::vector<double> ys = {1, 2, 2, 3};
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 1.0, 1e-12);
}

}  // namespace
}  // namespace blaeu::stats
