// The data-map model (paper §2): a hierarchy of regions over the current
// selection. Internal edges carry interpretable split predicates (from the
// CART description), leaves are clusters, and leaf "area" is the tuple
// count. Maps are both output (a summary) and input (zoom targets).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "monet/predicate.h"
#include "obs/resource.h"

namespace blaeu::core {

/// \brief One region (node) of a data map.
struct MapRegion {
  int id = 0;           ///< index into DataMap::regions
  int parent = -1;      ///< parent region id; -1 for the root
  std::vector<int> children;

  /// Predicate of the edge from the parent ("% long hours >= 20"); the
  /// root's edge is empty.
  monet::Conjunction edge;
  /// Full predicate from the map root (conjunction of edges on the path).
  monet::Conjunction predicate;

  size_t tuple_count = 0;   ///< tuples of the full selection in the region
  int cluster_label = -1;   ///< leaf: cluster id; internal: -1
  /// Representative tuple (table row id) — the cluster medoid; leaves only.
  uint32_t medoid_row = 0;
  bool has_medoid = false;

  bool is_leaf() const { return children.empty(); }
  /// Human-readable edge label ("TRUE" for the root).
  std::string EdgeLabel() const { return edge.ToSql(); }
};

/// \brief A complete data map over one selection and one column set.
struct DataMap {
  /// Regions in depth-first order; regions[0] is the root.
  std::vector<MapRegion> regions;
  /// Active (theme) columns the map was built on.
  std::vector<std::string> active_columns;

  size_t num_clusters = 0;
  double silhouette = 0.0;      ///< quality of the underlying clustering
  double tree_fidelity = 0.0;   ///< CART agreement with the clustering
  size_t sample_size = 0;       ///< tuples actually clustered
  size_t total_tuples = 0;      ///< size of the selection summarized
  std::string algorithm;        ///< "pam", "clara", ...
  double build_seconds = 0.0;   ///< wall-clock build latency
  /// What producing this map cost for THIS interaction (obs/resource.h). A
  /// map served from the cache reports cache_hits = 1 and zero work; a cold
  /// build reports the sampled row count, distance evaluations, per-stage
  /// times etc. Not part of the map's identity: canonical JSON and the
  /// golden fixtures exclude it.
  obs::ResourceProfile resources;

  const MapRegion& root() const { return regions.front(); }
  const MapRegion& region(int id) const { return regions[id]; }

  /// Ids of the leaf regions, in depth-first order.
  std::vector<int> LeafIds() const;

  /// Checks id range; IndexError otherwise.
  Status ValidateRegionId(int id) const;
};

}  // namespace blaeu::core
