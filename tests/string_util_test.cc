// Unit tests for string helpers.
#include "common/string_util.h"

#include <gtest/gtest.h>

namespace blaeu {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(TrimTest, RemovesOuterWhitespaceOnly) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("AbC_1"), "abc_1");
}

TEST(ParseDoubleTest, AcceptsNumbersRejectsJunk) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(ParseDouble("3.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("inf", &v));  // non-finite rejected
}

TEST(ParseIntTest, AcceptsIntsRejectsFloats) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt("4.2", &v));
  EXPECT_FALSE(ParseInt("", &v));
}

TEST(FormatDoubleTest, CompactRendering) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(0.125, 3), "0.125");
}

TEST(StartsWithTest, PrefixChecks) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(CsvEscapeTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

}  // namespace
}  // namespace blaeu
