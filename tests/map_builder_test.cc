// Unit tests for the map builder (Figure 3 pipeline + Figure 1b model).
#include "core/map_builder.h"

#include <gtest/gtest.h>

#include <set>

#include "stats/metrics.h"
#include "workloads/gaussian.h"
#include "workloads/lofar.h"

namespace blaeu::core {
namespace {

using monet::SelectionVector;

workloads::Dataset Mixture(size_t rows, size_t k, uint64_t seed) {
  workloads::MixtureSpec spec;
  spec.rows = rows;
  spec.num_clusters = k;
  spec.dims = 4;
  spec.separation = 8.0;
  spec.seed = seed;
  return workloads::MakeGaussianMixture(spec);
}

std::vector<std::string> ColumnNames(const monet::Table& t) {
  std::vector<std::string> names;
  for (const auto& f : t.schema().fields()) names.push_back(f.name);
  return names;
}

TEST(MapBuilderTest, RecoversPlantedClustersThroughLeafRegions) {
  auto data = Mixture(600, 3, 1);
  MapOptions opt;
  opt.fixed_k = 3;
  auto map = *BuildMap(*data.table, opt);
  EXPECT_EQ(map.num_clusters, 3u);
  // Assign each row to its leaf region; compare against planted truth.
  std::vector<int> predicted(600, -1);
  for (int leaf : map.LeafIds()) {
    const MapRegion& region = map.region(leaf);
    auto sel = *region.predicate.Evaluate(*data.table);
    for (uint32_t r : sel.rows()) predicted[r] = leaf;
  }
  EXPECT_GT(stats::AdjustedRandIndex(predicted, data.truth.row_clusters),
            0.9);
}

TEST(MapBuilderTest, RegionsFormATree) {
  auto data = Mixture(400, 3, 2);
  auto map = *BuildMap(*data.table);
  ASSERT_FALSE(map.regions.empty());
  EXPECT_EQ(map.root().parent, -1);
  for (const MapRegion& r : map.regions) {
    for (int child : r.children) {
      EXPECT_EQ(map.region(child).parent, r.id);
    }
    // Internal nodes have exactly two children (binary CART splits).
    if (!r.is_leaf()) EXPECT_EQ(r.children.size(), 2u);
  }
}

TEST(MapBuilderTest, ChildCountsPartitionParent) {
  auto data = Mixture(500, 3, 3);
  MapOptions opt;
  opt.sample_size = 0;  // exact counts: no sampling noise
  opt.fixed_k = 3;
  auto map = *BuildMap(*data.table, opt);
  for (const MapRegion& r : map.regions) {
    if (r.is_leaf()) continue;
    size_t child_total = 0;
    for (int c : r.children) child_total += map.region(c).tuple_count;
    EXPECT_EQ(child_total, r.tuple_count)
        << "region " << r.id << " children do not partition it";
  }
  EXPECT_EQ(map.root().tuple_count, 500u);
}

TEST(MapBuilderTest, LeafAreasMatchFigureOneSemantics) {
  // "The area of the leaves shows the number of tuples covered": leaf
  // counts must sum to the selection size.
  auto data = Mixture(450, 4, 4);
  MapOptions opt;
  opt.sample_size = 0;
  auto map = *BuildMap(*data.table, opt);
  size_t total = 0;
  for (int leaf : map.LeafIds()) total += map.region(leaf).tuple_count;
  EXPECT_EQ(total, 450u);
}

TEST(MapBuilderTest, EdgePredicatesComposeIntoPathPredicate) {
  auto data = Mixture(300, 3, 5);
  auto map = *BuildMap(*data.table);
  for (const MapRegion& r : map.regions) {
    if (r.parent < 0) continue;
    // predicate == parent.predicate AND edge
    monet::Conjunction expected =
        map.region(r.parent).predicate.And(r.edge);
    EXPECT_EQ(r.predicate.ToSql(), expected.ToSql());
  }
}

TEST(MapBuilderTest, SamplingKeepsAccuracy) {
  // Experiment C2 in miniature: a sampled map recovers the same structure.
  auto data = Mixture(4000, 3, 6);
  MapOptions sampled;
  sampled.sample_size = 400;
  sampled.fixed_k = 3;
  auto map = *BuildMap(*data.table, sampled);
  EXPECT_EQ(map.sample_size, 400u);
  EXPECT_EQ(map.total_tuples, 4000u);
  std::vector<int> predicted(4000, -1);
  for (int leaf : map.LeafIds()) {
    auto sel = *map.region(leaf).predicate.Evaluate(*data.table);
    for (uint32_t r : sel.rows()) predicted[r] = leaf;
  }
  EXPECT_GT(stats::AdjustedRandIndex(predicted, data.truth.row_clusters),
            0.85);
}

TEST(MapBuilderTest, MedoidsAttachedToLeaves) {
  auto data = Mixture(300, 3, 7);
  MapOptions opt;
  opt.fixed_k = 3;
  auto map = *BuildMap(*data.table, opt);
  std::set<int> leaf_clusters;
  for (int leaf : map.LeafIds()) {
    const MapRegion& r = map.region(leaf);
    EXPECT_GE(r.cluster_label, 0);
    leaf_clusters.insert(r.cluster_label);
    if (r.has_medoid) EXPECT_LT(r.medoid_row, 300u);
  }
  EXPECT_EQ(leaf_clusters.size(), 3u);
}

TEST(MapBuilderTest, TreeFidelityHighOnSeparatedData) {
  auto data = Mixture(500, 3, 8);
  auto map = *BuildMap(*data.table);
  EXPECT_GT(map.tree_fidelity, 0.9);
  EXPECT_GT(map.silhouette, 0.4);
}

TEST(MapBuilderTest, AlgorithmSelectionAuto) {
  auto small = Mixture(300, 2, 9);
  MapOptions opt;
  opt.clara_threshold = 1200;
  opt.sample_size = 0;
  auto map_small = *BuildMap(*small.table, opt);
  EXPECT_EQ(map_small.algorithm, "pam");
  auto big = Mixture(3000, 2, 10);
  auto map_big = *BuildMap(*big.table, opt);
  EXPECT_EQ(map_big.algorithm, "clara");
}

TEST(MapBuilderTest, ExplicitAlgorithms) {
  auto data = Mixture(250, 3, 11);
  for (MapAlgorithm algo : {MapAlgorithm::kPam, MapAlgorithm::kClara,
                            MapAlgorithm::kKMeans,
                            MapAlgorithm::kAgglomerative}) {
    MapOptions opt;
    opt.algorithm = algo;
    opt.fixed_k = 3;
    auto map = *BuildMap(*data.table, opt);
    EXPECT_EQ(map.num_clusters, 3u);
  }
}

TEST(MapBuilderTest, SelectionRestrictsMap) {
  auto data = Mixture(400, 3, 12);
  SelectionVector sel = SelectionVector::All(200);
  auto map = *BuildMap(*data.table, sel, ColumnNames(*data.table));
  EXPECT_EQ(map.total_tuples, 200u);
  EXPECT_EQ(map.root().tuple_count, 200u);
}

TEST(MapBuilderTest, DegenerateTinySelectionYieldsTrivialMap) {
  auto data = Mixture(100, 2, 13);
  SelectionVector sel({0, 1});
  auto map = *BuildMap(*data.table, sel, ColumnNames(*data.table));
  EXPECT_EQ(map.regions.size(), 1u);
  EXPECT_EQ(map.algorithm, "trivial");
  EXPECT_EQ(map.root().tuple_count, 2u);
}

TEST(MapBuilderTest, InvalidInputsRejected) {
  auto data = Mixture(100, 2, 14);
  EXPECT_FALSE(
      BuildMap(*data.table, SelectionVector::All(100), {}).ok());
  EXPECT_FALSE(BuildMap(*data.table, SelectionVector(),
                        ColumnNames(*data.table))
                   .ok());
  EXPECT_FALSE(
      BuildMap(*data.table, SelectionVector::All(100), {"ghost"}).ok());
}

TEST(MapBuilderTest, KSweepPicksPlantedK) {
  auto data = Mixture(500, 3, 15);
  MapOptions opt;
  opt.k_min = 2;
  opt.k_max = 6;
  auto map = *BuildMap(*data.table, opt);
  EXPECT_EQ(map.num_clusters, 3u);
}

TEST(MapBuilderTest, BuildRecordsStageSpans) {
  auto data = Mixture(500, 3, 20);
  obs::Tracer tracer;
  tracer.set_enabled(true);
  obs::MetricsRegistry metrics;
  MapOptions opt;
  opt.fixed_k = 3;
  opt.sample_size = 200;
  opt.tracer = &tracer;
  opt.metrics = &metrics;
  auto map = *BuildMap(*data.table, monet::SelectionVector::All(500),
                       ColumnNames(*data.table), opt);
  ASSERT_EQ(map.num_clusters, 3u);

  // The pipeline must record one root span with the four paper stages
  // (sample -> preprocess -> cluster -> describe) as its children, each
  // closed with a non-zero duration.
  auto spans = tracer.Finished();
  int build_id = -1;
  for (const auto& s : spans) {
    if (s.name == "core.map.build") build_id = s.id;
  }
  ASSERT_GE(build_id, 0);
  for (const char* stage :
       {"core.map.sample", "core.map.preprocess", "core.map.cluster",
        "core.map.describe"}) {
    bool found = false;
    for (const auto& s : spans) {
      if (s.name != stage) continue;
      found = true;
      EXPECT_EQ(s.parent, build_id) << stage;
      EXPECT_GT(s.duration_ns, 0) << stage;
    }
    EXPECT_TRUE(found) << "missing stage span " << stage;
  }
  // Cluster stage carries the chosen k as an attribute.
  for (const auto& s : spans) {
    if (s.name != "core.map.cluster") continue;
    bool has_k = false;
    for (const auto& [key, value] : s.attrs) {
      if (key == "k") {
        has_k = true;
        EXPECT_EQ(value, "3");
      }
    }
    EXPECT_TRUE(has_k);
  }
  // And the injected registry saw exactly this build.
  EXPECT_EQ(metrics.counter("core.map.builds")->value(), 1);
  EXPECT_EQ(metrics.histogram("core.map.build_seconds")->Snapshot().count,
            1u);
  // Chrome-trace export of a real build stays loadable (shape check).
  std::string trace = tracer.ToChromeTrace();
  EXPECT_EQ(trace.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(trace.find("core.map.cluster"), std::string::npos);
}

/// Field-by-field equality of two maps, with readable failure messages.
/// Everything the user can observe must match: regions, predicates, counts,
/// medoids and quality scores.
void ExpectMapsIdentical(const DataMap& a, const DataMap& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.silhouette, b.silhouette);  // bit-identical, not approximate
  EXPECT_EQ(a.tree_fidelity, b.tree_fidelity);
  EXPECT_EQ(a.sample_size, b.sample_size);
  EXPECT_EQ(a.total_tuples, b.total_tuples);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (size_t i = 0; i < a.regions.size(); ++i) {
    const MapRegion& ra = a.regions[i];
    const MapRegion& rb = b.regions[i];
    EXPECT_EQ(ra.parent, rb.parent) << "region " << i;
    EXPECT_EQ(ra.children, rb.children) << "region " << i;
    EXPECT_EQ(ra.predicate.ToSql(), rb.predicate.ToSql()) << "region " << i;
    EXPECT_EQ(ra.edge.ToSql(), rb.edge.ToSql()) << "region " << i;
    EXPECT_EQ(ra.tuple_count, rb.tuple_count) << "region " << i;
    EXPECT_EQ(ra.cluster_label, rb.cluster_label) << "region " << i;
    EXPECT_EQ(ra.has_medoid, rb.has_medoid) << "region " << i;
    if (ra.has_medoid && rb.has_medoid) {
      EXPECT_EQ(ra.medoid_row, rb.medoid_row) << "region " << i;
    }
  }
}

TEST(MapBuilderTest, ThreadCountDoesNotChangeTheMapOnGaussian) {
  // The parallel layer's core promise: 1 thread and 8 threads produce the
  // same map, bit for bit. Gaussian path: PAM + exact-silhouette k sweep +
  // distance matrix.
  auto data = Mixture(600, 3, 21);
  MapOptions serial;
  serial.num_threads = 1;
  MapOptions parallel = serial;
  parallel.num_threads = 8;
  auto map1 = *BuildMap(*data.table, serial);
  auto map8 = *BuildMap(*data.table, parallel);
  ExpectMapsIdentical(map1, map8);
}

TEST(MapBuilderTest, ThreadCountDoesNotChangeTheMapOnLofar) {
  // LOFAR path at a scaled-down operating point: sampling, CLARA k sweep,
  // Monte-Carlo silhouette, CART description, incremental region counting.
  workloads::LofarSpec spec;
  spec.rows = 8000;
  spec.seed = 5;
  auto data = workloads::MakeLofar(spec);
  MapOptions serial;
  serial.sample_size = 2000;  // above clara_threshold: CLARA + MC silhouette
  serial.seed = 99;
  serial.num_threads = 1;
  MapOptions parallel = serial;
  parallel.num_threads = 8;
  auto sel = SelectionVector::All(data.table->num_rows());
  auto columns = ColumnNames(*data.table);
  auto map1 = *BuildMap(*data.table, sel, columns, serial);
  auto map8 = *BuildMap(*data.table, sel, columns, parallel);
  EXPECT_EQ(map1.algorithm, "clara");
  ExpectMapsIdentical(map1, map8);
}

TEST(MapBuilderTest, ThreadCountDoesNotChangeTheMapAcrossAlgorithms) {
  auto data = Mixture(400, 3, 22);
  for (MapAlgorithm algo :
       {MapAlgorithm::kPam, MapAlgorithm::kClara, MapAlgorithm::kKMeans,
        MapAlgorithm::kAgglomerative, MapAlgorithm::kDbscan}) {
    MapOptions serial;
    serial.algorithm = algo;
    serial.num_threads = 1;
    MapOptions parallel = serial;
    parallel.num_threads = 8;
    auto map1 = *BuildMap(*data.table, serial);
    auto map8 = *BuildMap(*data.table, parallel);
    ExpectMapsIdentical(map1, map8);
  }
}

TEST(MapBuilderTest, ValidateRegionId) {
  auto data = Mixture(200, 2, 16);
  auto map = *BuildMap(*data.table);
  EXPECT_TRUE(map.ValidateRegionId(0).ok());
  EXPECT_FALSE(map.ValidateRegionId(-1).ok());
  EXPECT_FALSE(
      map.ValidateRegionId(static_cast<int>(map.regions.size())).ok());
}

}  // namespace
}  // namespace blaeu::core
