// Predicates over table columns. Data-map regions are described by
// conjunctions of these conditions; rendering them as SQL realizes the
// paper's claim that every map state is an implicit Select-Project query.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "monet/selection.h"
#include "monet/table.h"

namespace blaeu::monet {

/// Comparison operators for scalar conditions.
enum class CompareOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// SQL spelling ("<", "<=", ...).
const char* CompareOpSymbol(CompareOp op);

/// \brief One atomic condition on a single column.
///
/// Three shapes: scalar comparison (numeric or string equality), categorical
/// set membership (`col IN {...}`, possibly negated), and null tests.
struct Condition {
  enum class Kind { kCompare, kInSet, kIsNull, kNotNull };

  std::string column;
  Kind kind = Kind::kCompare;
  CompareOp op = CompareOp::kLt;   ///< for kCompare
  Value value;                     ///< for kCompare
  std::vector<std::string> set;    ///< for kInSet
  bool negated = false;            ///< kInSet: NOT IN

  /// Scalar comparison factory.
  static Condition Compare(std::string column, CompareOp op, Value value);
  /// Set-membership factory.
  static Condition InSet(std::string column, std::vector<std::string> set,
                         bool negated = false);
  static Condition IsNull(std::string column);
  static Condition NotNull(std::string column);

  /// True if the row satisfies the condition. NULL cells fail every
  /// condition except kIsNull (SQL three-valued logic collapsed to false).
  bool Matches(const Column& col, size_t row) const;

  /// SQL rendering, e.g. `"income" >= 22` or `"genre" IN ('Drama','Comedy')`.
  std::string ToSql() const;
};

/// \brief A conjunction of conditions (the WHERE clause of a region).
class Conjunction {
 public:
  Conjunction() = default;
  explicit Conjunction(std::vector<Condition> conditions)
      : conditions_(std::move(conditions)) {}

  void Add(Condition c) { conditions_.push_back(std::move(c)); }
  const std::vector<Condition>& conditions() const { return conditions_; }
  bool empty() const { return conditions_.empty(); }
  size_t size() const { return conditions_.size(); }

  /// Concatenation of two conjunctions (used when zooming: the child region
  /// inherits the parent's constraints).
  Conjunction And(const Conjunction& other) const;

  /// Rows of `table` satisfying all conditions. KeyError on unknown columns.
  Result<SelectionVector> Evaluate(const Table& table) const;

  /// Like Evaluate but restricted to the candidate rows in `base`.
  Result<SelectionVector> EvaluateOn(const Table& table,
                                     const SelectionVector& base) const;

  /// True if row `row` satisfies all conditions; columns resolved once via
  /// `table`. Returns TypeError/KeyError through the Result.
  Result<bool> MatchesRow(const Table& table, size_t row) const;

  /// SQL WHERE clause body ("TRUE" when empty).
  std::string ToSql() const;

 private:
  std::vector<Condition> conditions_;
};

}  // namespace blaeu::monet
