#include "monet/predicate.h"

#include <algorithm>

#include "common/string_util.h"

namespace blaeu::monet {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
  }
  return "?";
}

Condition Condition::Compare(std::string column, CompareOp op, Value value) {
  Condition c;
  c.column = std::move(column);
  c.kind = Kind::kCompare;
  c.op = op;
  c.value = std::move(value);
  return c;
}

Condition Condition::InSet(std::string column, std::vector<std::string> set,
                           bool negated) {
  Condition c;
  c.column = std::move(column);
  c.kind = Kind::kInSet;
  c.set = std::move(set);
  c.negated = negated;
  return c;
}

Condition Condition::IsNull(std::string column) {
  Condition c;
  c.column = std::move(column);
  c.kind = Kind::kIsNull;
  return c;
}

Condition Condition::NotNull(std::string column) {
  Condition c;
  c.column = std::move(column);
  c.kind = Kind::kNotNull;
  return c;
}

namespace {

bool CompareNumeric(double lhs, CompareOp op, double rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
  }
  return false;
}

bool CompareString(const std::string& lhs, CompareOp op,
                   const std::string& rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
  }
  return false;
}

}  // namespace

bool Condition::Matches(const Column& col, size_t row) const {
  const bool is_null = col.IsNull(row);
  switch (kind) {
    case Kind::kIsNull:
      return is_null;
    case Kind::kNotNull:
      return !is_null;
    case Kind::kCompare: {
      if (is_null || value.is_null()) return false;
      if (col.type() == DataType::kString) {
        if (value.type() != DataType::kString) return false;
        return CompareString(col.strings()[row], op, value.AsString());
      }
      if (value.type() == DataType::kString) return false;
      return CompareNumeric(col.GetNumeric(row), op, value.AsDouble());
    }
    case Kind::kInSet: {
      if (is_null) return false;
      std::string cell = col.GetValue(row).ToString();
      bool found = std::find(set.begin(), set.end(), cell) != set.end();
      return negated ? !found : found;
    }
  }
  return false;
}

std::string Condition::ToSql() const {
  std::string quoted = "\"" + column + "\"";
  switch (kind) {
    case Kind::kIsNull:
      return quoted + " IS NULL";
    case Kind::kNotNull:
      return quoted + " IS NOT NULL";
    case Kind::kCompare: {
      std::string rhs = value.type() == DataType::kString
                            ? "'" + value.AsString() + "'"
                            : value.ToString();
      return quoted + " " + CompareOpSymbol(op) + " " + rhs;
    }
    case Kind::kInSet: {
      std::string body;
      for (size_t i = 0; i < set.size(); ++i) {
        if (i > 0) body += ", ";
        body += "'" + set[i] + "'";
      }
      return quoted + (negated ? " NOT IN (" : " IN (") + body + ")";
    }
  }
  return "?";
}

Conjunction Conjunction::And(const Conjunction& other) const {
  Conjunction out(conditions_);
  for (const auto& c : other.conditions_) out.Add(c);
  return out;
}

Result<SelectionVector> Conjunction::Evaluate(const Table& table) const {
  return EvaluateOn(table, SelectionVector::All(table.num_rows()));
}

Result<SelectionVector> Conjunction::EvaluateOn(
    const Table& table, const SelectionVector& base) const {
  // Resolve columns once.
  std::vector<const Column*> cols;
  cols.reserve(conditions_.size());
  for (const auto& c : conditions_) {
    BLAEU_ASSIGN_OR_RETURN(size_t idx,
                           table.schema().RequireFieldIndex(c.column));
    cols.push_back(table.column(idx).get());
  }
  SelectionVector out;
  for (uint32_t row : base.rows()) {
    bool all = true;
    for (size_t i = 0; i < conditions_.size(); ++i) {
      if (!conditions_[i].Matches(*cols[i], row)) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(row);
  }
  return out;
}

Result<bool> Conjunction::MatchesRow(const Table& table, size_t row) const {
  for (const auto& c : conditions_) {
    BLAEU_ASSIGN_OR_RETURN(size_t idx,
                           table.schema().RequireFieldIndex(c.column));
    if (!c.Matches(*table.column(idx), row)) return false;
  }
  return true;
}

std::string Conjunction::ToSql() const {
  if (conditions_.empty()) return "TRUE";
  std::vector<std::string> parts;
  parts.reserve(conditions_.size());
  for (const auto& c : conditions_) parts.push_back(c.ToSql());
  return Join(parts, " AND ");
}

}  // namespace blaeu::monet
