// Univariate and bivariate summaries backing the highlight action's
// "classic univariate and bivariate visualization methods" (paper §2):
// histograms for numeric columns, frequency tables for categorical ones,
// and 2-D binned scatter summaries.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "monet/selection.h"
#include "monet/table.h"

namespace blaeu::stats {

/// \brief Fixed-width numeric histogram.
struct Histogram {
  double min = 0;
  double max = 0;
  std::vector<size_t> counts;  ///< one per bin
  size_t null_count = 0;

  size_t total() const {
    size_t t = null_count;
    for (size_t c : counts) t += c;
    return t;
  }

  /// ASCII rendering: one bar line per bin ("[lo, hi) ####### 42").
  std::string ToAscii(size_t width = 40) const;
};

/// Histogram of a numeric column over `sel` with `num_bins` equal-width
/// bins. TypeError on string columns.
Result<Histogram> NumericHistogram(const monet::Column& col,
                                   const monet::SelectionVector& sel,
                                   size_t num_bins = 10);

/// \brief Category frequency table.
struct FrequencyTable {
  std::vector<std::pair<std::string, size_t>> entries;  ///< desc by count
  size_t null_count = 0;
  size_t distinct = 0;  ///< before truncation

  std::string ToAscii(size_t width = 40) const;
};

/// Frequency table of any column over `sel`; keeps the top `max_entries`.
FrequencyTable CategoricalFrequencies(const monet::Column& col,
                                      const monet::SelectionVector& sel,
                                      size_t max_entries = 12);

/// \brief 2-D binned count grid (a poor man's scatter plot).
struct BinnedScatter {
  double x_min = 0, x_max = 0, y_min = 0, y_max = 0;
  size_t x_bins = 0, y_bins = 0;
  std::vector<size_t> counts;  ///< row-major [y][x]

  size_t At(size_t yi, size_t xi) const { return counts[yi * x_bins + xi]; }
  std::string ToAscii() const;  ///< density rendered with " .:*#@"
};

/// Joint distribution of two numeric columns over `sel`.
Result<BinnedScatter> BivariateScatter(const monet::Column& x,
                                       const monet::Column& y,
                                       const monet::SelectionVector& sel,
                                       size_t x_bins = 20, size_t y_bins = 10);

}  // namespace blaeu::stats
