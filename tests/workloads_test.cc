// Unit tests for the synthetic demo-dataset generators: they must match the
// dimensions the paper reports and carry coherent ground truth.
#include <gtest/gtest.h>

#include <set>

#include "stats/entropy.h"
#include "stats/metrics.h"
#include "workloads/gaussian.h"
#include "workloads/hollywood.h"
#include "workloads/lofar.h"
#include "workloads/oecd.h"

namespace blaeu::workloads {
namespace {

TEST(GaussianTest, ShapeAndTruth) {
  MixtureSpec spec;
  spec.rows = 500;
  spec.num_clusters = 4;
  spec.dims = 5;
  Dataset d = MakeGaussianMixture(spec);
  EXPECT_EQ(d.table->num_rows(), 500u);
  EXPECT_EQ(d.table->num_columns(), 5u);
  EXPECT_EQ(d.truth.row_clusters.size(), 500u);
  std::set<int> labels(d.truth.row_clusters.begin(),
                       d.truth.row_clusters.end());
  EXPECT_EQ(labels.size(), 4u);
}

TEST(GaussianTest, DeterministicGivenSeed) {
  MixtureSpec spec;
  spec.rows = 100;
  Dataset a = MakeGaussianMixture(spec);
  Dataset b = MakeGaussianMixture(spec);
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_EQ(a.table->GetValue(r, 0), b.table->GetValue(r, 0));
  }
  EXPECT_EQ(a.truth.row_clusters, b.truth.row_clusters);
}

TEST(GaussianTest, NullRateApplied) {
  MixtureSpec spec;
  spec.rows = 2000;
  spec.dims = 2;
  spec.null_rate = 0.1;
  Dataset d = MakeGaussianMixture(spec);
  size_t nulls = d.table->column(0)->null_count() +
                 d.table->column(1)->null_count();
  EXPECT_NEAR(static_cast<double>(nulls), 400.0, 80.0);
}

TEST(GaussianTest, OptionalColumns) {
  MixtureSpec spec;
  spec.rows = 50;
  spec.with_id = true;
  spec.with_categorical = true;
  Dataset d = MakeGaussianMixture(spec);
  EXPECT_EQ(d.table->schema().field(0).name, "row_id");
  EXPECT_EQ(d.table->schema()
                .field(d.table->num_columns() - 1)
                .name,
            "group");
  EXPECT_EQ(d.truth.column_themes.front(), -1);
}

TEST(TwoThemeTest, ColumnsSplitIntoGroups) {
  Dataset d = MakeTwoThemeMixture(300, 4, 2, 3, 1);
  EXPECT_EQ(d.table->num_columns(), 8u);
  EXPECT_EQ(d.truth.num_themes, 2u);
  for (size_t c = 0; c < 4; ++c) EXPECT_EQ(d.truth.column_themes[c], 0);
  for (size_t c = 4; c < 8; ++c) EXPECT_EQ(d.truth.column_themes[c], 1);
}

TEST(HollywoodTest, MatchesPaperDimensions) {
  Dataset d = MakeHollywood();
  EXPECT_EQ(d.table->num_rows(), 900u);   // "900 Hollywood movies"
  EXPECT_EQ(d.table->num_columns(), 12u); // "12 columns"
  // Years 2007-2013.
  auto year = *d.table->ColumnByName("year");
  for (size_t r = 0; r < 900; r += 50) {
    int64_t y = year->ints()[r];
    EXPECT_GE(y, 2007);
    EXPECT_LE(y, 2013);
  }
}

TEST(HollywoodTest, ProfitabilityConsistentWithGross) {
  Dataset d = MakeHollywood();
  auto budget = *d.table->ColumnByName("budget_musd");
  auto gross = *d.table->ColumnByName("worldwide_gross_musd");
  auto profit = *d.table->ColumnByName("profitability");
  for (size_t r = 0; r < 900; r += 97) {
    EXPECT_NEAR(gross->doubles()[r] / budget->doubles()[r],
                profit->doubles()[r], 1e-9);
  }
}

TEST(HollywoodTest, PlantedProfilesAreSeparable) {
  Dataset d = MakeHollywood();
  // Blockbusters (cluster 0) out-budget critical darlings (cluster 1).
  auto budget = *d.table->ColumnByName("budget_musd");
  double sum0 = 0, sum1 = 0;
  size_t n0 = 0, n1 = 0;
  for (size_t r = 0; r < 900; ++r) {
    if (d.truth.row_clusters[r] == 0) {
      sum0 += budget->doubles()[r];
      ++n0;
    } else if (d.truth.row_clusters[r] == 1) {
      sum1 += budget->doubles()[r];
      ++n1;
    }
  }
  ASSERT_GT(n0, 0u);
  ASSERT_GT(n1, 0u);
  EXPECT_GT(sum0 / n0, 4.0 * (sum1 / n1));
}

TEST(OecdTest, MatchesPaperDimensions) {
  OecdSpec spec;  // defaults reproduce the paper
  spec.rows = 1000;  // keep the test fast; column count is the claim
  Dataset d = MakeOecd(spec);
  EXPECT_EQ(d.table->num_columns(), 378u);  // "378 columns"
  EXPECT_EQ(d.table->num_rows(), 1000u);
  // 31 countries.
  std::set<std::string> countries;
  auto country = *d.table->ColumnByName("country");
  for (size_t r = 0; r < 1000; ++r) {
    countries.insert(country->StringAt(r));
  }
  EXPECT_EQ(countries.size(), 31u);
}

TEST(OecdTest, LeadIndicatorsFollowProfiles) {
  OecdSpec spec;
  spec.rows = 3000;
  spec.indicator_columns = 20;
  Dataset d = MakeOecd(spec);
  auto hours = *d.table->ColumnByName("pct_employees_working_long_hours");
  auto income = *d.table->ColumnByName("average_income_kusd");
  double hours_balance = 0, hours_long = 0, income_balance = 0,
         income_unemp = 0;
  size_t n_balance = 0, n_long = 0, n_unemp = 0;
  for (size_t r = 0; r < 3000; ++r) {
    if (hours->IsNull(r) || income->IsNull(r)) continue;
    switch (d.truth.row_clusters[r]) {
      case 0:
        hours_balance += hours->doubles()[r];
        income_balance += income->doubles()[r];
        ++n_balance;
        break;
      case 1:
        hours_long += hours->doubles()[r];
        ++n_long;
        break;
      case 2:
        income_unemp += income->doubles()[r];
        ++n_unemp;
        break;
      default:
        break;
    }
  }
  ASSERT_GT(n_balance, 0u);
  ASSERT_GT(n_long, 0u);
  ASSERT_GT(n_unemp, 0u);
  // Figure 1 structure: long-hours cluster well above 20%, balance cluster
  // well below; balance income above 22k, unemployment cluster below.
  EXPECT_GT(hours_long / n_long, 20.0);
  EXPECT_LT(hours_balance / n_balance, 20.0);
  EXPECT_GT(income_balance / n_balance, 22.0);
  EXPECT_LT(income_unemp / n_unemp, 22.0);
}

TEST(OecdTest, ThemeColumnsAreMutuallyDependent) {
  OecdSpec spec;
  spec.rows = 2000;
  spec.indicator_columns = 16;
  Dataset d = MakeOecd(spec);
  // Two unemployment indicators should correlate strongly; an
  // unemployment and an environment indicator should not.
  auto u1 = *d.table->ColumnByName("unemployment_rate");
  auto u2 = *d.table->ColumnByName("long_term_unemployment_rate");
  std::vector<double> x, y;
  for (size_t r = 0; r < 2000; ++r) {
    if (u1->IsNull(r) || u2->IsNull(r)) continue;
    x.push_back(u1->doubles()[r]);
    y.push_back(u2->doubles()[r]);
  }
  EXPECT_GT(stats::PearsonCorrelation(x, y), 0.5);
}

TEST(LofarTest, ScaleAndSchema) {
  LofarSpec spec;
  spec.rows = 20000;  // keep the test quick; default is 200k
  Dataset d = MakeLofar(spec);
  EXPECT_EQ(d.table->num_rows(), 20000u);
  EXPECT_EQ(d.table->num_columns(), 40u);  // "several dozens variables"
  EXPECT_EQ(d.truth.column_themes.size(), 40u);
  EXPECT_EQ(d.truth.num_clusters, 5u);
}

TEST(LofarTest, SpectralIndexSeparatesClasses) {
  LofarSpec spec;
  spec.rows = 10000;
  Dataset d = MakeLofar(spec);
  auto alpha = *d.table->ColumnByName("spectral_index");
  double flat = 0, steep = 0;
  size_t n_flat = 0, n_steep = 0;
  for (size_t r = 0; r < 10000; ++r) {
    if (d.truth.row_clusters[r] == 1) {  // quasar_flat
      flat += alpha->doubles()[r];
      ++n_flat;
    } else if (d.truth.row_clusters[r] == 3) {  // pulsar_like
      steep += alpha->doubles()[r];
      ++n_steep;
    }
  }
  EXPECT_GT(flat / n_flat, -0.4);
  EXPECT_LT(steep / n_steep, -1.2);
}

TEST(LofarTest, FluxFollowsPowerLaw) {
  LofarSpec spec;
  spec.rows = 500;
  spec.missing_rate = 0.0;
  Dataset d = MakeLofar(spec);
  auto low = *d.table->ColumnByName("flux_120mhz_mjy");
  auto high = *d.table->ColumnByName("flux_168mhz_mjy");
  auto alpha = *d.table->ColumnByName("spectral_index");
  // For steep negative spectra, low-frequency flux exceeds high-frequency.
  size_t consistent = 0, total = 0;
  for (size_t r = 0; r < 500; ++r) {
    if (alpha->doubles()[r] < -0.5) {
      ++total;
      if (low->doubles()[r] > high->doubles()[r]) ++consistent;
    }
  }
  ASSERT_GT(total, 50u);
  EXPECT_GT(static_cast<double>(consistent) / total, 0.9);
}

}  // namespace
}  // namespace blaeu::workloads
