// Distances between preprocessed tuples, and condensed distance matrices
// for the k-medoid algorithms.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/matrix.h"

namespace blaeu::stats {

/// Euclidean distance between two rows of equal length.
double EuclideanDistance(const double* a, const double* b, size_t dims);

/// Squared Euclidean distance.
double SquaredEuclideanDistance(const double* a, const double* b,
                                size_t dims);

/// Manhattan (L1) distance.
double ManhattanDistance(const double* a, const double* b, size_t dims);

/// \brief Gower dissimilarity for mixed data with missing values.
///
/// Feature f contributes |a_f - b_f| / range_f for numeric features and
/// 0/1 mismatch for categorical ones; features where either side is missing
/// (encoded as NaN) are skipped and the sum is averaged over the features
/// actually compared. Result in [0, 1]; rows with no comparable feature get
/// distance 1.
class GowerDistance {
 public:
  /// \param is_categorical  per-feature flag
  /// \param ranges          per-feature range (numeric features; ignored for
  ///                        categorical). Zero ranges contribute 0.
  GowerDistance(std::vector<bool> is_categorical, std::vector<double> ranges);

  /// Fits ranges from the data (NaN-aware) with the given categorical mask.
  static GowerDistance Fit(const Matrix& data,
                           std::vector<bool> is_categorical);

  double operator()(const double* a, const double* b) const;

  size_t dims() const { return is_categorical_.size(); }

 private:
  std::vector<bool> is_categorical_;
  std::vector<double> ranges_;
};

/// \brief Condensed symmetric distance matrix (lower triangle, no diagonal).
class DistanceMatrix {
 public:
  /// Pairwise Euclidean distances between rows of `data`.
  static DistanceMatrix Euclidean(const Matrix& data);

  /// Pairwise Gower distances with a fitted metric.
  static DistanceMatrix Gower(const Matrix& data, const GowerDistance& gower);

  explicit DistanceMatrix(size_t n) : n_(n), d_(n * (n - 1) / 2, 0.0) {}

  size_t size() const { return n_; }

  double At(size_t i, size_t j) const {
    if (i == j) return 0.0;
    return d_[Index(i, j)];
  }
  void Set(size_t i, size_t j, double v) { d_[Index(i, j)] = v; }

 private:
  size_t Index(size_t i, size_t j) const {
    if (i > j) std::swap(i, j);
    // Condensed index of pair (i, j), i < j, row-major over the upper
    // triangle.
    return n_ * i - (i * (i + 1)) / 2 + (j - i - 1);
  }
  size_t n_;
  std::vector<double> d_;
};

}  // namespace blaeu::stats
