// Session report export: writes every artifact of an exploration session
// to a directory — the headless equivalent of saving the demo's screen
// state (theme view, map views, dependency graph, the implicit queries and
// the region contents). Everything EXPERIMENTS.md shows regenerates from
// these files.
#pragma once

#include <string>

#include "common/status.h"
#include "core/navigation.h"

namespace blaeu::core {

/// Report options.
struct ReportOptions {
  /// Rows exported per leaf-region CSV (0 disables region CSVs).
  size_t region_csv_rows = 100;
  /// Edges below this dependency are omitted from the DOT graph.
  double dot_min_weight = 0.2;
};

/// Writes into `directory` (which must exist):
///   themes.txt / themes.json     — the theme list (Figure 1a)
///   dependency.dot               — the dependency graph (Figure 2)
///   state_<i>_map.txt / .json    — every navigation state's map
///   state_<i>_query.sql          — the implicit query of each state
///   session.json                 — the full action log with annotations
///   region_<id>.csv              — current map's leaf contents (capped)
/// Returns IOError if any file cannot be written.
Status ExportSessionReport(const Session& session,
                           const std::string& directory,
                           const ReportOptions& options = {});

}  // namespace blaeu::core
