// Table schemas: ordered, named, typed fields.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "monet/type.h"

namespace blaeu::monet {

/// One column declaration.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Ordered collection of fields with O(1) lookup by name.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or nullopt.
  std::optional<size_t> FieldIndex(const std::string& name) const;

  /// Result-returning variant of FieldIndex.
  Result<size_t> RequireFieldIndex(const std::string& name) const;

  /// New schema keeping only `indices`, in that order.
  Schema Select(const std::vector<size_t>& indices) const;

  /// "name:type, name:type, ..." for diagnostics.
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace blaeu::monet
