// Statistical dependency between table columns of any type: the edge
// weights of Blaeu's dependency graph (Figure 2).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "monet/selection.h"
#include "monet/table.h"

namespace blaeu::stats {

/// How to measure column dependency.
enum class DependencyMeasure {
  kMutualInformation,  ///< paper's choice: mixed types, non-linear
  kAbsPearson,         ///< |Pearson correlation| (ablation baseline)
  kAbsSpearman,        ///< |Spearman correlation| (ablation baseline)
};

/// Options for dependency estimation.
struct DependencyOptions {
  DependencyMeasure measure = DependencyMeasure::kMutualInformation;
  /// Bins used to discretize numeric columns for MI. Few bins keep the
  /// estimator's variance low on sampled rows (bias is Miller-Madow
  /// corrected).
  size_t num_bins = 5;
  /// Rows sampled for estimation (0 = use all rows).
  size_t sample_rows = 4000;
  uint64_t seed = 42;
};

/// Discrete encoding of one column over the given rows: numeric columns are
/// equal-frequency binned, categorical values are dictionary-coded, NULLs
/// get their own code. Used by MI and by the CART categorical handling.
std::vector<int> EncodeColumnDiscrete(const monet::Column& col,
                                      const std::vector<uint32_t>& rows,
                                      size_t num_bins);

/// Dependency in [0, 1] between two columns of `table` on `rows`:
/// normalized Miller-Madow MI, or |correlation| for the ablation measures (correlation
/// measures require both columns numeric and fall back to NMI otherwise).
double ColumnDependency(const monet::Table& table, size_t col_a, size_t col_b,
                        const std::vector<uint32_t>& rows,
                        const DependencyOptions& options);

/// \brief Symmetric dependency matrix over the (optionally sampled) table.
///
/// Entry (i, j) is the pairwise dependency of columns i and j; the diagonal
/// is 1. Column sampling happens once, shared by all pairs.
Result<std::vector<std::vector<double>>> DependencyMatrix(
    const monet::Table& table, const DependencyOptions& options = {});

}  // namespace blaeu::stats
