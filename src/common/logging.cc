#include "common/logging.h"

#include <cstdio>

namespace blaeu {
namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

void LogLine(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::fprintf(stderr, "[blaeu %s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace internal
}  // namespace blaeu
