// Select-Project queries: the query class Blaeu's maps quantize (§2 of the
// paper). A map state corresponds to exactly one of these.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "monet/catalog.h"
#include "monet/predicate.h"
#include "monet/table.h"

namespace blaeu::monet {

/// \brief SELECT <columns> FROM <table> WHERE <conjunction>.
struct SelectProjectQuery {
  std::string table_name;
  /// Projected column names; empty means SELECT *.
  std::vector<std::string> columns;
  Conjunction where;

  /// Renders the query as SQL text.
  std::string ToSql() const;

  /// Executes against a catalog, materializing the result.
  Result<TablePtr> Execute(const Catalog& catalog) const;

  /// Executes against a concrete table (ignores table_name).
  Result<TablePtr> ExecuteOn(const Table& table) const;
};

}  // namespace blaeu::monet
