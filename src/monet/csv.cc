#include "monet/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace blaeu::monet {

namespace {

/// Splits one CSV record, honouring double-quote escaping. Returns false on
/// an unterminated quote.
bool SplitCsvLine(const std::string& line, char delim,
                  std::vector<std::string>* fields) {
  fields->clear();
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields->push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // Tolerate CRLF endings.
    } else {
      cur.push_back(c);
    }
  }
  fields->push_back(std::move(cur));
  return !in_quotes;
}

bool IsNullToken(const std::string& token,
                 const std::vector<std::string>& null_tokens) {
  std::string trimmed(Trim(token));
  return std::find(null_tokens.begin(), null_tokens.end(), trimmed) !=
         null_tokens.end();
}

bool IsBoolToken(const std::string& token) {
  std::string t = ToLower(std::string(Trim(token)));
  return t == "true" || t == "false";
}

/// Narrowest type that fits a single token.
DataType TokenType(const std::string& token) {
  if (IsBoolToken(token)) return DataType::kBool;
  int64_t i;
  if (ParseInt(Trim(token), &i)) return DataType::kInt64;
  double d;
  if (ParseDouble(Trim(token), &d)) return DataType::kDouble;
  return DataType::kString;
}

/// Widening lattice: bool < int64 < double < string; any mix involving a
/// string becomes string; bool mixed with numbers becomes string (booleans
/// do not widen to numbers in CSV inference).
DataType WidenType(DataType a, DataType b) {
  if (a == b) return a;
  if (a == DataType::kString || b == DataType::kString) {
    return DataType::kString;
  }
  if (a == DataType::kBool || b == DataType::kBool) return DataType::kString;
  // remaining: {int64, double} mix
  return DataType::kDouble;
}

Status AppendToken(Column* col, const std::string& token,
                   const std::vector<std::string>& null_tokens,
                   size_t line_no) {
  if (IsNullToken(token, null_tokens)) {
    col->AppendNull();
    return Status::OK();
  }
  std::string trimmed(Trim(token));
  switch (col->type()) {
    case DataType::kBool: {
      if (!IsBoolToken(trimmed)) {
        return Status::TypeError("line " + std::to_string(line_no) +
                                 ": '" + trimmed + "' is not a bool");
      }
      col->AppendBool(ToLower(trimmed) == "true");
      return Status::OK();
    }
    case DataType::kInt64: {
      int64_t v;
      if (!ParseInt(trimmed, &v)) {
        return Status::TypeError("line " + std::to_string(line_no) +
                                 ": '" + trimmed + "' is not an int64");
      }
      col->AppendInt(v);
      return Status::OK();
    }
    case DataType::kDouble: {
      double v;
      if (!ParseDouble(trimmed, &v)) {
        return Status::TypeError("line " + std::to_string(line_no) +
                                 ": '" + trimmed + "' is not a double");
      }
      col->AppendDouble(v);
      return Status::OK();
    }
    case DataType::kString:
      col->AppendString(token);
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<TablePtr> ReadCsv(std::istream& in, const CsvOptions& options) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.counter("monet.csv.reads")->Increment();
  ScopedTimer latency(registry.histogram("monet.csv.read_seconds"));
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() || !in.eof()) lines.push_back(line);
  }
  // Drop trailing blank lines.
  while (!lines.empty() && Trim(lines.back()).empty()) lines.pop_back();
  if (lines.empty()) return Status::IOError("empty CSV input");

  std::vector<std::string> fields;
  size_t first_data = 0;
  std::vector<std::string> names;
  if (options.has_header) {
    if (!SplitCsvLine(lines[0], options.delimiter, &fields)) {
      return Status::IOError("unterminated quote in header");
    }
    for (auto& f : fields) names.emplace_back(Trim(f));
    first_data = 1;
  } else {
    if (!SplitCsvLine(lines[0], options.delimiter, &fields)) {
      return Status::IOError("unterminated quote on line 1");
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      names.push_back("c" + std::to_string(i));
    }
  }
  const size_t num_cols = names.size();

  // Pass 1: infer a type per column.
  std::vector<DataType> types(num_cols, DataType::kBool);
  std::vector<bool> saw_value(num_cols, false);
  size_t scan_end = lines.size();
  if (options.inference_rows > 0) {
    scan_end = std::min(lines.size(), first_data + options.inference_rows);
  }
  for (size_t li = first_data; li < scan_end; ++li) {
    if (!SplitCsvLine(lines[li], options.delimiter, &fields)) {
      return Status::IOError("unterminated quote on line " +
                             std::to_string(li + 1));
    }
    if (fields.size() != num_cols) {
      return Status::IOError("line " + std::to_string(li + 1) + " has " +
                             std::to_string(fields.size()) +
                             " fields, expected " + std::to_string(num_cols));
    }
    for (size_t c = 0; c < num_cols; ++c) {
      if (IsNullToken(fields[c], options.null_tokens)) continue;
      DataType t = TokenType(fields[c]);
      types[c] = saw_value[c] ? WidenType(types[c], t) : t;
      saw_value[c] = true;
    }
  }
  for (size_t c = 0; c < num_cols; ++c) {
    if (!saw_value[c]) types[c] = DataType::kString;  // all-null columns
  }

  // Pass 2: build columns.
  std::vector<Field> schema_fields;
  schema_fields.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    schema_fields.push_back({names[c], types[c]});
  }
  std::vector<ColumnPtr> columns;
  std::vector<Column*> raw;
  for (size_t c = 0; c < num_cols; ++c) {
    auto col = std::make_shared<Column>(types[c]);
    col->Reserve(lines.size() - first_data);
    raw.push_back(col.get());
    columns.push_back(std::move(col));
  }
  for (size_t li = first_data; li < lines.size(); ++li) {
    if (!SplitCsvLine(lines[li], options.delimiter, &fields)) {
      return Status::IOError("unterminated quote on line " +
                             std::to_string(li + 1));
    }
    if (fields.size() != num_cols) {
      return Status::IOError("line " + std::to_string(li + 1) + " has " +
                             std::to_string(fields.size()) +
                             " fields, expected " + std::to_string(num_cols));
    }
    for (size_t c = 0; c < num_cols; ++c) {
      BLAEU_RETURN_NOT_OK(
          AppendToken(raw[c], fields[c], options.null_tokens, li + 1));
    }
  }
  registry.counter("monet.csv.rows_read")
      ->Add(static_cast<int64_t>(lines.size() - first_data));
  // Dictionary accounting for the string columns this load interned.
  for (const ColumnPtr& col : columns) {
    if (col->type() != DataType::kString) continue;
    const Dictionary& dict = *col->dictionary();
    registry.counter("monet.dict.entries")
        ->Add(static_cast<int64_t>(dict.size()));
    registry.counter("monet.dict.bytes")
        ->Add(static_cast<int64_t>(dict.bytes()));
    registry.counter("monet.dict.intern_hits")
        ->Add(static_cast<int64_t>(dict.intern_hits()));
  }
  return Table::Make(Schema(std::move(schema_fields)), std::move(columns));
}

Result<TablePtr> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "'");
  }
  return ReadCsv(in, options);
}

Status WriteCsv(const Table& table, std::ostream& out, char delimiter) {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << delimiter;
    out << CsvEscape(table.schema().field(c).name, delimiter);
  }
  out << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << delimiter;
      Value v = table.GetValue(r, c);
      if (!v.is_null()) out << CsvEscape(v.ToString(), delimiter);
    }
    out << "\n";
  }
  if (!out.good()) return Status::IOError("write failure");
  return Status::OK();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return WriteCsv(table, out, delimiter);
}

}  // namespace blaeu::monet
