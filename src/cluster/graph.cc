#include "cluster/graph.h"

#include <cassert>
#include <deque>
#include <sstream>

#include "common/string_util.h"

namespace blaeu::cluster {

Graph::Graph(size_t n) : weights_(n * n, 0.0) {
  names_.reserve(n);
  for (size_t i = 0; i < n; ++i) names_.push_back("v" + std::to_string(i));
}

Graph::Graph(std::vector<std::string> names)
    : names_(std::move(names)), weights_(names_.size() * names_.size(), 0.0) {}

void Graph::SetWeight(size_t u, size_t v, double w) {
  assert(u < num_vertices() && v < num_vertices());
  weights_[u * num_vertices() + v] = w;
  weights_[v * num_vertices() + u] = w;
}

double Graph::Weight(size_t u, size_t v) const {
  assert(u < num_vertices() && v < num_vertices());
  return weights_[u * num_vertices() + v];
}

size_t Graph::CountEdges(double threshold) const {
  size_t count = 0;
  for (size_t u = 0; u < num_vertices(); ++u) {
    for (size_t v = u + 1; v < num_vertices(); ++v) {
      if (Weight(u, v) > threshold) ++count;
    }
  }
  return count;
}

std::vector<int> Graph::ConnectedComponents(double threshold) const {
  const size_t n = num_vertices();
  std::vector<int> comp(n, -1);
  int next = 0;
  for (size_t s = 0; s < n; ++s) {
    if (comp[s] >= 0) continue;
    comp[s] = next;
    std::deque<size_t> frontier{s};
    while (!frontier.empty()) {
      size_t u = frontier.front();
      frontier.pop_front();
      for (size_t v = 0; v < n; ++v) {
        if (comp[v] < 0 && Weight(u, v) > threshold) {
          comp[v] = next;
          frontier.push_back(v);
        }
      }
    }
    ++next;
  }
  return comp;
}

std::string Graph::ToDot(double min_weight,
                         const std::vector<int>* groups) const {
  static const char* kPalette[] = {"lightblue",  "lightyellow", "lightpink",
                                   "lightgreen", "lavender",    "wheat",
                                   "lightcyan",  "mistyrose"};
  std::ostringstream out;
  out << "graph dependency {\n  node [style=filled, shape=box];\n";
  for (size_t v = 0; v < num_vertices(); ++v) {
    out << "  n" << v << " [label=\"" << names_[v] << "\"";
    if (groups != nullptr && v < groups->size() && (*groups)[v] >= 0) {
      out << ", fillcolor=" << kPalette[(*groups)[v] % 8];
    } else {
      out << ", fillcolor=white";
    }
    out << "];\n";
  }
  for (size_t u = 0; u < num_vertices(); ++u) {
    for (size_t v = u + 1; v < num_vertices(); ++v) {
      double w = Weight(u, v);
      if (w <= min_weight) continue;
      out << "  n" << u << " -- n" << v << " [penwidth="
          << FormatDouble(0.5 + 4.0 * w, 3) << ", label=\""
          << FormatDouble(w, 2) << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace blaeu::cluster
