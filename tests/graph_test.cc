// Unit tests for the weighted dependency graph.
#include "cluster/graph.h"

#include <gtest/gtest.h>

namespace blaeu::cluster {
namespace {

TEST(GraphTest, WeightsAreSymmetric) {
  Graph g(4);
  g.SetWeight(0, 2, 0.7);
  EXPECT_DOUBLE_EQ(g.Weight(0, 2), 0.7);
  EXPECT_DOUBLE_EQ(g.Weight(2, 0), 0.7);
  EXPECT_DOUBLE_EQ(g.Weight(0, 1), 0.0);
}

TEST(GraphTest, NamedVertices) {
  Graph g({"unemployment", "health", "income"});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.name(1), "health");
}

TEST(GraphTest, CountEdgesAboveThreshold) {
  Graph g(3);
  g.SetWeight(0, 1, 0.5);
  g.SetWeight(1, 2, 0.2);
  EXPECT_EQ(g.CountEdges(0.0), 2u);
  EXPECT_EQ(g.CountEdges(0.3), 1u);
  EXPECT_EQ(g.CountEdges(0.9), 0u);
}

TEST(GraphTest, ConnectedComponentsLikeFigure2) {
  // Figure 2: two dependency groups — {unemp, lt_unemp, female_unemp} and
  // {insurance, life_exp, spending} — with no cross edges.
  Graph g({"unemp", "lt_unemp", "female_unemp", "insurance", "life_exp",
           "spending"});
  g.SetWeight(0, 1, 0.8);
  g.SetWeight(0, 2, 0.7);
  g.SetWeight(1, 2, 0.6);
  g.SetWeight(3, 4, 0.9);
  g.SetWeight(4, 5, 0.5);
  std::vector<int> comp = g.ConnectedComponents(0.1);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_EQ(comp[4], comp[5]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(GraphTest, ThresholdSplitsComponents) {
  Graph g(3);
  g.SetWeight(0, 1, 0.9);
  g.SetWeight(1, 2, 0.2);
  std::vector<int> loose = g.ConnectedComponents(0.1);
  EXPECT_EQ(loose[0], loose[2]);
  std::vector<int> tight = g.ConnectedComponents(0.5);
  EXPECT_NE(tight[0], tight[2]);
  EXPECT_EQ(tight[0], tight[1]);
}

TEST(GraphTest, IsolatedVerticesGetOwnComponents) {
  Graph g(3);
  std::vector<int> comp = g.ConnectedComponents(0.0);
  EXPECT_EQ(comp, (std::vector<int>{0, 1, 2}));
}

TEST(GraphTest, DotOutputContainsVerticesAndEdges) {
  Graph g({"alpha", "beta"});
  g.SetWeight(0, 1, 0.42);
  std::string dot = g.ToDot(0.0);
  EXPECT_NE(dot.find("graph dependency"), std::string::npos);
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("0.42"), std::string::npos);
}

TEST(GraphTest, DotOmitsWeakEdgesAndColorsGroups) {
  Graph g({"a", "b", "c"});
  g.SetWeight(0, 1, 0.9);
  g.SetWeight(1, 2, 0.05);
  std::vector<int> groups = {0, 0, 1};
  std::string dot = g.ToDot(0.2, &groups);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_EQ(dot.find("n1 -- n2"), std::string::npos);
  EXPECT_NE(dot.find("lightblue"), std::string::npos);
}

}  // namespace
}  // namespace blaeu::cluster
