// Unit tests for the atlas (per-theme map overview) and map stability.
#include "core/atlas.h"

#include <gtest/gtest.h>

#include "core/theme.h"
#include "workloads/gaussian.h"

namespace blaeu::core {
namespace {

using monet::SelectionVector;

TEST(AtlasTest, OneEntryPerQualifyingTheme) {
  auto data = workloads::MakeTwoThemeMixture(600, 4, 3, 3, 1);
  auto themes = *DetectThemes(*data.table);
  AtlasOptions opt;
  opt.map.sample_size = 600;
  auto atlas = *BuildAtlas(*data.table,
                           SelectionVector::All(600), themes, opt);
  EXPECT_EQ(atlas.entries.size(), themes.size());
  for (const AtlasEntry& entry : atlas.entries) {
    EXPECT_GE(entry.map.num_clusters, 1u);
    EXPECT_EQ(entry.map.total_tuples, 600u);
  }
}

TEST(AtlasTest, MinColumnsFilters) {
  auto data = workloads::MakeTwoThemeMixture(400, 3, 2, 2, 2);
  auto themes = *DetectThemes(*data.table);
  AtlasOptions opt;
  opt.min_theme_columns = 100;  // nothing qualifies
  auto atlas = BuildAtlas(*data.table, SelectionVector::All(400), themes,
                          opt);
  EXPECT_FALSE(atlas.ok());
}

TEST(AtlasTest, StabilityHighOnSeparatedData) {
  workloads::MixtureSpec spec;
  spec.rows = 1200;
  spec.num_clusters = 3;
  spec.dims = 4;
  spec.separation = 10.0;
  auto data = workloads::MakeGaussianMixture(spec);
  std::vector<std::string> cols;
  for (const auto& f : data.table->schema().fields()) cols.push_back(f.name);
  MapOptions opt;
  opt.sample_size = 300;  // force real sampling variation
  opt.fixed_k = 3;
  double stability = *MapStability(*data.table,
                                   SelectionVector::All(1200), cols, opt, 3);
  EXPECT_GT(stability, 0.9);
}

TEST(AtlasTest, StabilityLowOnNoise) {
  // Pure noise: maps from different samples disagree.
  workloads::MixtureSpec spec;
  spec.rows = 1200;
  spec.num_clusters = 1;
  spec.dims = 4;
  auto data = workloads::MakeGaussianMixture(spec);
  std::vector<std::string> cols;
  for (const auto& f : data.table->schema().fields()) cols.push_back(f.name);
  MapOptions opt;
  opt.sample_size = 300;
  opt.fixed_k = 3;  // forced spurious clusters
  double stability = *MapStability(*data.table,
                                   SelectionVector::All(1200), cols, opt, 3);
  EXPECT_LT(stability, 0.9);
}

TEST(AtlasTest, StabilityDisabledReturnsZero) {
  workloads::MixtureSpec spec;
  spec.rows = 200;
  spec.dims = 3;
  auto data = workloads::MakeGaussianMixture(spec);
  std::vector<std::string> cols;
  for (const auto& f : data.table->schema().fields()) cols.push_back(f.name);
  EXPECT_DOUBLE_EQ(*MapStability(*data.table, SelectionVector::All(200),
                                 cols, {}, 1),
                   0.0);
}

TEST(AtlasTest, RenderMentionsEveryTheme) {
  auto data = workloads::MakeTwoThemeMixture(500, 4, 3, 2, 3);
  auto themes = *DetectThemes(*data.table);
  AtlasOptions opt;
  opt.map.sample_size = 500;
  opt.stability_replicas = 2;
  auto atlas = *BuildAtlas(*data.table, SelectionVector::All(500), themes,
                           opt);
  std::string text = RenderAtlas(atlas, themes);
  EXPECT_NE(text.find("Atlas ("), std::string::npos);
  for (const AtlasEntry& entry : atlas.entries) {
    EXPECT_NE(
        text.find("theme " + std::to_string(entry.theme_id)),
        std::string::npos);
  }
  EXPECT_NE(text.find("stability"), std::string::npos);
  EXPECT_NE(text.find("splits on"), std::string::npos);
}

}  // namespace
}  // namespace blaeu::core
