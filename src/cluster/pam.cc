#include "cluster/pam.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"

namespace blaeu::cluster {

using stats::DistanceMatrix;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Labels + cost for a fixed medoid set over a distance matrix.
ClusteringResult AssignFromMatrix(const DistanceMatrix& dist,
                                  const std::vector<size_t>& medoids) {
  const size_t n = dist.size();
  ClusteringResult out;
  out.medoids = medoids;
  out.labels.assign(n, 0);
  out.total_cost = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double best = kInf;
    int best_m = 0;
    for (size_t m = 0; m < medoids.size(); ++m) {
      double d = dist.At(i, medoids[m]);
      if (d < best) {
        best = d;
        best_m = static_cast<int>(m);
      }
    }
    out.labels[i] = best_m;
    out.total_cost += best;
  }
  return out;
}

/// BUILD phase: greedy seeding of k medoids.
std::vector<size_t> PamBuild(const DistanceMatrix& dist, size_t k) {
  const size_t n = dist.size();
  std::vector<size_t> medoids;
  std::vector<bool> is_medoid(n, false);

  // First medoid: minimal total distance to all points.
  size_t best_first = 0;
  double best_total = kInf;
  for (size_t c = 0; c < n; ++c) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) total += dist.At(c, i);
    if (total < best_total) {
      best_total = total;
      best_first = c;
    }
  }
  medoids.push_back(best_first);
  is_medoid[best_first] = true;

  // nearest[i]: distance from i to its closest chosen medoid.
  std::vector<double> nearest(n);
  for (size_t i = 0; i < n; ++i) nearest[i] = dist.At(i, best_first);

  while (medoids.size() < k) {
    size_t best_c = 0;
    double best_gain = -kInf;
    for (size_t c = 0; c < n; ++c) {
      if (is_medoid[c]) continue;
      double gain = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double improvement = nearest[i] - dist.At(c, i);
        if (improvement > 0) gain += improvement;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_c = c;
      }
    }
    medoids.push_back(best_c);
    is_medoid[best_c] = true;
    for (size_t i = 0; i < n; ++i) {
      nearest[i] = std::min(nearest[i], dist.At(i, best_c));
    }
  }
  return medoids;
}

}  // namespace

ClusteringResult AssignToMedoids(size_t n, const std::vector<size_t>& medoids,
                                 const RowDistanceFn& dist_fn) {
  ClusteringResult out;
  out.medoids = medoids;
  out.labels.assign(n, 0);
  out.total_cost = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double best = kInf;
    int best_m = 0;
    for (size_t m = 0; m < medoids.size(); ++m) {
      double d = dist_fn(i, medoids[m]);
      if (d < best) {
        best = d;
        best_m = static_cast<int>(m);
      }
    }
    out.labels[i] = best_m;
    out.total_cost += best;
  }
  return out;
}

namespace {

/// Shared driver for the SWAP phase. `find_best_swap` must fill
/// (best_delta, best_m, best_c) given the neighbor caches; the two
/// implementations differ only in how they scan candidates.
template <typename FindBestSwap>
Result<ClusteringResult> PamImpl(const DistanceMatrix& dist, size_t k,
                                 const PamOptions& options,
                                 FindBestSwap&& find_best_swap) {
  const size_t n = dist.size();
  if (k == 0) return Status::Invalid("k must be >= 1");
  if (k > n) {
    return Status::Invalid("k = " + std::to_string(k) + " exceeds n = " +
                           std::to_string(n));
  }
  std::vector<size_t> medoids = PamBuild(dist, k);
  std::vector<bool> is_medoid(n, false);
  for (size_t m : medoids) is_medoid[m] = true;

  std::vector<double> nearest(n), second(n);
  std::vector<size_t> nearest_idx(n);
  auto recompute_neighbors = [&]() {
    for (size_t i = 0; i < n; ++i) {
      double d1 = kInf, d2 = kInf;
      size_t m1 = 0;
      for (size_t m = 0; m < medoids.size(); ++m) {
        double d = dist.At(i, medoids[m]);
        if (d < d1) {
          d2 = d1;
          d1 = d;
          m1 = m;
        } else if (d < d2) {
          d2 = d;
        }
      }
      nearest[i] = d1;
      second[i] = d2;
      nearest_idx[i] = m1;
    }
  };
  recompute_neighbors();

  size_t swaps = 0;
  for (size_t iter = 0; iter < options.max_swap_iterations; ++iter) {
    double best_delta = -1e-12;
    size_t best_m = 0, best_c = 0;
    find_best_swap(medoids, is_medoid, nearest, second, nearest_idx,
                   &best_delta, &best_m, &best_c);
    if (best_delta >= -1e-12) break;
    is_medoid[medoids[best_m]] = false;
    medoids[best_m] = best_c;
    is_medoid[best_c] = true;
    recompute_neighbors();
    ++swaps;
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.counter("cluster.pam.runs")->Increment();
  registry.counter("cluster.pam.swap_iterations")
      ->Add(static_cast<int64_t>(swaps));
  std::sort(medoids.begin(), medoids.end());
  return AssignFromMatrix(dist, medoids);
}

}  // namespace

Result<ClusteringResult> Pam(const DistanceMatrix& dist, size_t k,
                             const PamOptions& options) {
  const size_t n = dist.size();
  // FastPAM1: for each candidate c, one O(n) pass yields the swap delta
  // for every medoid simultaneously.
  return PamImpl(
      dist, k, options,
      [&](const std::vector<size_t>& medoids,
          const std::vector<bool>& is_medoid,
          const std::vector<double>& nearest,
          const std::vector<double>& second,
          const std::vector<size_t>& nearest_idx, double* best_delta,
          size_t* best_m, size_t* best_c) {
        std::vector<double> delta(medoids.size());
        for (size_t c = 0; c < n; ++c) {
          if (is_medoid[c]) continue;
          double shared = 0.0;  // gain applying to every medoid removal
          std::fill(delta.begin(), delta.end(), 0.0);
          for (size_t o = 0; o < n; ++o) {
            double d_oc = dist.At(o, c);
            // Removal of a medoid other than o's: o moves to c only if
            // closer than its current medoid.
            double g = d_oc < nearest[o] ? d_oc - nearest[o] : 0.0;
            shared += g;
            // Removal of o's own medoid: o goes to min(c, second choice);
            // replace the shared term with the exact one.
            delta[nearest_idx[o]] +=
                (std::min(d_oc, second[o]) - nearest[o]) - g;
          }
          for (size_t m = 0; m < medoids.size(); ++m) {
            double total = shared + delta[m];
            if (total < *best_delta) {
              *best_delta = total;
              *best_m = m;
              *best_c = c;
            }
          }
        }
      });
}

Result<ClusteringResult> PamNaive(const DistanceMatrix& dist, size_t k,
                                  const PamOptions& options) {
  const size_t n = dist.size();
  if (k == 0) return Status::Invalid("k must be >= 1");
  if (k > n) {
    return Status::Invalid("k = " + std::to_string(k) + " exceeds n = " +
                           std::to_string(n));
  }
  std::vector<size_t> medoids = PamBuild(dist, k);
  std::vector<bool> is_medoid(n, false);
  for (size_t m : medoids) is_medoid[m] = true;

  // SWAP phase. nearest/second: distances from each point to its closest
  // and second-closest medoid, so swap deltas evaluate in O(1) per point.
  std::vector<double> nearest(n), second(n);
  std::vector<size_t> nearest_idx(n);  // index into medoids
  auto recompute_neighbors = [&]() {
    for (size_t i = 0; i < n; ++i) {
      double d1 = kInf, d2 = kInf;
      size_t m1 = 0;
      for (size_t m = 0; m < medoids.size(); ++m) {
        double d = dist.At(i, medoids[m]);
        if (d < d1) {
          d2 = d1;
          d1 = d;
          m1 = m;
        } else if (d < d2) {
          d2 = d;
        }
      }
      nearest[i] = d1;
      second[i] = d2;
      nearest_idx[i] = m1;
    }
  };
  recompute_neighbors();

  size_t swaps = 0;
  for (size_t iter = 0; iter < options.max_swap_iterations; ++iter) {
    double best_delta = -1e-12;  // strictly improving swaps only
    size_t best_m = 0, best_c = 0;
    for (size_t m = 0; m < medoids.size(); ++m) {
      for (size_t c = 0; c < n; ++c) {
        if (is_medoid[c]) continue;
        // Cost change of replacing medoids[m] by c.
        double delta = 0.0;
        for (size_t i = 0; i < n; ++i) {
          double d_ic = dist.At(i, c);
          if (nearest_idx[i] == m) {
            // Point loses its medoid: moves to c or to its second choice.
            delta += std::min(d_ic, second[i]) - nearest[i];
          } else if (d_ic < nearest[i]) {
            delta += d_ic - nearest[i];
          }
        }
        if (delta < best_delta) {
          best_delta = delta;
          best_m = m;
          best_c = c;
        }
      }
    }
    if (best_delta >= -1e-12) break;  // local optimum
    is_medoid[medoids[best_m]] = false;
    medoids[best_m] = best_c;
    is_medoid[best_c] = true;
    recompute_neighbors();
    ++swaps;
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.counter("cluster.pam.runs")->Increment();
  registry.counter("cluster.pam.swap_iterations")
      ->Add(static_cast<int64_t>(swaps));

  // Canonical order: medoids sorted by index so labels are deterministic.
  std::sort(medoids.begin(), medoids.end());
  return AssignFromMatrix(dist, medoids);
}

}  // namespace blaeu::cluster
