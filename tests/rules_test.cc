// Unit tests for rule extraction from CART trees.
#include "tree/rules.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace blaeu::tree {
namespace {

using monet::DataType;
using monet::Schema;
using monet::TableBuilder;
using monet::TablePtr;
using monet::Value;

std::vector<uint32_t> AllRows(size_t n) {
  std::vector<uint32_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = static_cast<uint32_t>(i);
  return rows;
}

/// Two-column table with a 3-way structure along x then y.
TablePtr TwoLevelTable(std::vector<int>* labels) {
  TableBuilder b(Schema({{"x", DataType::kDouble}, {"y", DataType::kDouble}}));
  Rng rng(1);
  labels->clear();
  for (size_t i = 0; i < 500; ++i) {
    double x = rng.NextUniform(0, 10), y = rng.NextUniform(0, 10);
    EXPECT_TRUE(b.AppendRow({Value::Double(x), Value::Double(y)}).ok());
    labels->push_back(x <= 4 ? 0 : (y <= 6 ? 1 : 2));
  }
  return *b.Finish();
}

TEST(RulesTest, OneRulePerLeaf) {
  std::vector<int> labels;
  TablePtr t = TwoLevelTable(&labels);
  auto model = *CartModel::Train(*t, AllRows(500), labels);
  std::vector<LeafRule> rules = ExtractRules(model);
  EXPECT_EQ(rules.size(), model.NumLeaves());
}

TEST(RulesTest, RulesPartitionTheTable) {
  std::vector<int> labels;
  TablePtr t = TwoLevelTable(&labels);
  auto model = *CartModel::Train(*t, AllRows(500), labels);
  std::vector<LeafRule> rules = ExtractRules(model);
  // Every row matches exactly one rule (no nulls in this table).
  for (uint32_t r = 0; r < 500; r += 11) {
    size_t matches = 0;
    for (const LeafRule& rule : rules) {
      if (*rule.conditions.MatchesRow(*t, r)) ++matches;
    }
    EXPECT_EQ(matches, 1u) << "row " << r;
  }
}

TEST(RulesTest, RuleLabelsAgreeWithPredictions) {
  std::vector<int> labels;
  TablePtr t = TwoLevelTable(&labels);
  auto model = *CartModel::Train(*t, AllRows(500), labels);
  std::vector<LeafRule> rules = ExtractRules(model);
  for (uint32_t r = 0; r < 500; r += 17) {
    for (const LeafRule& rule : rules) {
      if (*rule.conditions.MatchesRow(*t, r)) {
        EXPECT_EQ(rule.label, model.Predict(*t, r));
      }
    }
  }
}

TEST(RulesTest, CountsSumToTrainingSize) {
  std::vector<int> labels;
  TablePtr t = TwoLevelTable(&labels);
  auto model = *CartModel::Train(*t, AllRows(500), labels);
  std::vector<LeafRule> rules = ExtractRules(model);
  size_t total = 0;
  for (const LeafRule& rule : rules) total += rule.count;
  EXPECT_EQ(total, 500u);
}

TEST(RulesTest, StackedBoundsSimplified) {
  // Deep tree on one column: path conditions like x <= 8 AND x <= 4 must
  // collapse to x <= 4.
  TableBuilder b(Schema({{"x", DataType::kDouble}}));
  std::vector<int> labels;
  for (size_t i = 0; i < 400; ++i) {
    double x = static_cast<double>(i % 100) / 10.0;
    EXPECT_TRUE(b.AppendRow({Value::Double(x)}).ok());
    labels.push_back(x <= 2.5 ? 0 : (x <= 5 ? 1 : (x <= 7.5 ? 2 : 3)));
  }
  TablePtr t = *b.Finish();
  CartOptions opt;
  opt.max_depth = 4;
  auto model = *CartModel::Train(*t, AllRows(400), labels, opt);
  std::vector<LeafRule> rules = ExtractRules(model);
  for (const LeafRule& rule : rules) {
    // After simplification: at most one upper and one lower bound on x.
    size_t uppers = 0, lowers = 0;
    for (const auto& c : rule.conditions.conditions()) {
      if (c.op == monet::CompareOp::kLe || c.op == monet::CompareOp::kLt) {
        ++uppers;
      } else {
        ++lowers;
      }
    }
    EXPECT_LE(uppers, 1u);
    EXPECT_LE(lowers, 1u);
  }
}

TEST(RulesTest, ConfidenceIsMajorityFraction) {
  std::vector<int> labels;
  TablePtr t = TwoLevelTable(&labels);
  auto model = *CartModel::Train(*t, AllRows(500), labels);
  for (const LeafRule& rule : ExtractRules(model)) {
    EXPECT_GE(rule.confidence, 0.5);  // binary-ish splits on clean data
    EXPECT_LE(rule.confidence, 1.0);
  }
}

TEST(RulesTest, TextRenderingMentionsEveryRule) {
  std::vector<int> labels;
  TablePtr t = TwoLevelTable(&labels);
  auto model = *CartModel::Train(*t, AllRows(500), labels);
  std::vector<LeafRule> rules = ExtractRules(model);
  std::string text = RulesToString(rules);
  for (const LeafRule& rule : rules) {
    EXPECT_NE(text.find("class " + std::to_string(rule.label)),
              std::string::npos);
  }
  EXPECT_NE(text.find("IF "), std::string::npos);
}

TEST(RulesTest, SingleLeafTreeGivesUniversalRule) {
  TableBuilder b(Schema({{"x", DataType::kDouble}}));
  std::vector<int> labels(20, 0);
  for (size_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(b.AppendRow({Value::Double(1.0)}).ok());
  }
  TablePtr t = *b.Finish();
  auto model = *CartModel::Train(*t, AllRows(20), labels);
  std::vector<LeafRule> rules = ExtractRules(model);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_TRUE(rules[0].conditions.empty());
  EXPECT_EQ(rules[0].conditions.ToSql(), "TRUE");
}

}  // namespace
}  // namespace blaeu::tree
