// Arrow/RocksDB-style status and result types. All fallible public APIs in
// blaeu return Status or Result<T> instead of throwing; exceptions never
// cross module boundaries.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace blaeu {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kKeyError,        ///< lookup of a column/table/region that does not exist
  kTypeError,       ///< value or column used with an incompatible type
  kIndexError,      ///< out-of-bounds row/column/region index
  kIOError,         ///< CSV or file-system failure
  kNotImplemented,
  kInternal,        ///< invariant violation inside the library
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of a fallible operation, carrying a code and a message.
///
/// Cheap to copy in the OK case (no allocation); error states allocate one
/// string. Modeled on arrow::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IndexError(std::string msg) {
    return Status(StatusCode::kIndexError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Modeled on arrow::Result. Dereferencing an error Result is a programming
/// error and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(state_).ok() &&
           "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// Error status, or OK if the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(state_);
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(state_);
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie called on error Result");
    return std::move(std::get<T>(state_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out, or returns `alternative` on error.
  T ValueOr(T alternative) && {
    if (ok()) return std::move(std::get<T>(state_));
    return alternative;
  }

 private:
  std::variant<T, Status> state_;
};

}  // namespace blaeu

/// Propagates an error Status from the enclosing function.
#define BLAEU_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::blaeu::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

#define BLAEU_CONCAT_IMPL(x, y) x##y
#define BLAEU_CONCAT(x, y) BLAEU_CONCAT_IMPL(x, y)

/// Assigns the value of a Result<T> expression to `lhs`, or propagates the
/// error. `lhs` may include a declaration, e.g.
/// BLAEU_ASSIGN_OR_RETURN(auto table, catalog.Get("t"));
#define BLAEU_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  BLAEU_ASSIGN_OR_RETURN_IMPL(BLAEU_CONCAT(_res_, __LINE__), lhs, \
                              rexpr)

#define BLAEU_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                \
  if (!result_name.ok()) return result_name.status();        \
  lhs = std::move(result_name).ValueOrDie()
