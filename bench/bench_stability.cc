// Extension experiment: map stability vs sample size.
//
// Companion to C2: accuracy against ground truth tells half the story; an
// explorer also needs maps that do not change shape every time the sampler
// re-draws. Stability = mean pairwise ARI between maps rebuilt from
// independent samples of the same selection. Structure that is real
// stabilizes quickly as the sample grows; spurious structure never does.

#include <cstdio>

#include "common/timer.h"
#include "core/atlas.h"
#include "workloads/gaussian.h"
#include "workloads/lofar.h"

using namespace blaeu;

namespace {

void Sweep(const char* name, const monet::Table& table,
           const std::vector<std::string>& columns, size_t fixed_k) {
  std::printf("== stability on %s (%zu rows, k=%zu, 3 replicas) ==\n", name,
              table.num_rows(), fixed_k);
  std::printf("%10s %12s %12s\n", "sample", "stability", "latency_ms");
  for (size_t sample : {250, 500, 1000, 2000, 4000}) {
    core::MapOptions opt;
    opt.sample_size = sample;
    opt.fixed_k = fixed_k;
    Timer timer;
    auto stability = core::MapStability(
        table, monet::SelectionVector::All(table.num_rows()), columns, opt,
        3);
    if (!stability.ok()) continue;
    std::printf("%10zu %12.3f %12.1f\n", sample, *stability,
                timer.ElapsedMillis());
  }
  std::printf("\n");
}

std::vector<std::string> AllColumns(const monet::Table& table) {
  std::vector<std::string> cols;
  for (const auto& f : table.schema().fields()) cols.push_back(f.name);
  return cols;
}

}  // namespace

int main() {
  std::printf("Blaeu bench: map stability vs sample size (extension)\n\n");
  {
    workloads::MixtureSpec spec;
    spec.rows = 20000;
    spec.num_clusters = 4;
    spec.dims = 5;
    spec.separation = 8.0;
    auto data = workloads::MakeGaussianMixture(spec);
    Sweep("gaussian-4x20k (real structure)", *data.table,
          AllColumns(*data.table), 4);
  }
  {
    workloads::MixtureSpec spec;
    spec.rows = 20000;
    spec.num_clusters = 1;  // no structure at all
    spec.dims = 5;
    auto data = workloads::MakeGaussianMixture(spec);
    Sweep("gaussian-noise-20k (no structure, forced k=3)", *data.table,
          AllColumns(*data.table), 3);
  }
  std::printf("Expected shape: stability -> 1.0 with growing samples on "
              "real structure; stays low on structureless noise — a cheap "
              "spurious-map detector for the explorer.\n");
  return 0;
}
