#include "core/atlas.h"

#include <sstream>
#include <unordered_map>

#include "common/string_util.h"
#include "stats/metrics.h"

namespace blaeu::core {

using monet::SelectionVector;
using monet::Table;

namespace {

/// Leaf partition of `sel` induced by a map (-1 for rows no leaf claims,
/// possible under NULL routing).
Result<std::vector<int>> LeafPartition(const DataMap& map, const Table& table,
                                       const SelectionVector& sel) {
  BLAEU_ASSIGN_OR_RETURN(monet::TablePtr view,
                         table.ProjectNames(map.active_columns));
  std::vector<int> labels(sel.size(), -1);
  // Map row id -> position in sel.
  std::unordered_map<uint32_t, size_t> position;
  position.reserve(sel.size());
  for (size_t i = 0; i < sel.size(); ++i) position[sel[i]] = i;
  int next = 0;
  for (int leaf : map.LeafIds()) {
    BLAEU_ASSIGN_OR_RETURN(
        SelectionVector rows,
        map.region(leaf).predicate.EvaluateOn(*view, sel));
    for (uint32_t r : rows.rows()) labels[position[r]] = next;
    ++next;
  }
  return labels;
}

}  // namespace

Result<double> MapStability(const Table& table, const SelectionVector& sel,
                            const std::vector<std::string>& columns,
                            const MapOptions& options, size_t replicas) {
  if (replicas < 2) return 0.0;
  std::vector<std::vector<int>> partitions;
  partitions.reserve(replicas);
  for (size_t r = 0; r < replicas; ++r) {
    MapOptions opt = options;
    opt.seed = options.seed + 7919 * (r + 1);
    BLAEU_ASSIGN_OR_RETURN(DataMap map, BuildMap(table, sel, columns, opt));
    BLAEU_ASSIGN_OR_RETURN(std::vector<int> partition,
                           LeafPartition(map, table, sel));
    partitions.push_back(std::move(partition));
  }
  double total = 0.0;
  size_t pairs = 0;
  for (size_t a = 0; a < partitions.size(); ++a) {
    for (size_t b = a + 1; b < partitions.size(); ++b) {
      total += stats::AdjustedRandIndex(partitions[a], partitions[b]);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

Result<Atlas> BuildAtlas(const Table& table, const SelectionVector& sel,
                         const ThemeSet& themes,
                         const AtlasOptions& options) {
  Atlas atlas;
  for (const Theme& theme : themes.themes) {
    if (theme.columns.size() < options.min_theme_columns) continue;
    AtlasEntry entry;
    entry.theme_id = theme.id;
    BLAEU_ASSIGN_OR_RETURN(entry.map,
                           BuildMap(table, sel, theme.names, options.map));
    if (options.stability_replicas >= 2) {
      BLAEU_ASSIGN_OR_RETURN(
          entry.stability,
          MapStability(table, sel, theme.names, options.map,
                       options.stability_replicas));
    }
    atlas.entries.push_back(std::move(entry));
  }
  if (atlas.entries.empty()) {
    return Status::Invalid("no theme qualifies for the atlas");
  }
  return atlas;
}

std::string RenderAtlas(const Atlas& atlas, const ThemeSet& themes) {
  std::ostringstream out;
  out << "Atlas (" << atlas.entries.size() << " maps):\n";
  for (const AtlasEntry& entry : atlas.entries) {
    const Theme& theme = themes.theme(entry.theme_id);
    out << "  theme " << entry.theme_id << " [" << theme.Label() << "]: "
        << entry.map.num_clusters << " clusters, silhouette "
        << FormatDouble(entry.map.silhouette, 3);
    if (entry.stability > 0) {
      out << ", stability " << FormatDouble(entry.stability, 3);
    }
    // Top-level split: the first child's edge, if any.
    if (entry.map.regions.size() > 1) {
      out << "\n      splits on " << entry.map.regions[1].EdgeLabel();
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace blaeu::core
