// Minimal streaming JSON writer, used to export data maps, themes and
// benchmark series (the stand-in for Blaeu's JSON wire format between the
// NodeJS server and the D3 client).
#pragma once

#include <string>
#include <vector>

namespace blaeu {

/// \brief Append-only JSON document builder.
///
/// The caller is responsible for well-formedness (the writer validates
/// nesting of objects/arrays via a small state stack and asserts on misuse
/// in debug builds). Keys and string values are escaped.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Writes `"key":` inside an object; must be followed by a value.
  JsonWriter& Key(const std::string& key);

  JsonWriter& String(const std::string& value);
  /// Splices `json` in verbatim as one value (it must itself be a complete
  /// JSON value). Lets pre-serialized documents nest without re-parsing,
  /// e.g. a MetricsRegistry dump inside a stats report.
  JsonWriter& RawValue(const std::string& json);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Convenience: Key(k) followed by the matching value.
  JsonWriter& KV(const std::string& k, const std::string& v) {
    return Key(k).String(v);
  }
  JsonWriter& KV(const std::string& k, const char* v) {
    return Key(k).String(v);
  }
  JsonWriter& KV(const std::string& k, double v) { return Key(k).Number(v); }
  JsonWriter& KV(const std::string& k, int64_t v) { return Key(k).Int(v); }
  JsonWriter& KV(const std::string& k, int v) {
    return Key(k).Int(static_cast<int64_t>(v));
  }
  JsonWriter& KV(const std::string& k, size_t v) {
    return Key(k).Int(static_cast<int64_t>(v));
  }
  JsonWriter& KV(const std::string& k, bool v) { return Key(k).Bool(v); }

  /// The serialized document so far.
  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  void Escape(const std::string& s);

  enum class Scope { kObject, kArray };
  std::string out_;
  std::vector<Scope> stack_;
  bool needs_comma_ = false;
  bool pending_key_ = false;
};

}  // namespace blaeu
