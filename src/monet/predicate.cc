#include "monet/predicate.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace blaeu::monet {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
  }
  return "?";
}

Condition Condition::Compare(std::string column, CompareOp op, Value value) {
  Condition c;
  c.column = std::move(column);
  c.kind = Kind::kCompare;
  c.op = op;
  c.value = std::move(value);
  return c;
}

Condition Condition::InSet(std::string column, std::vector<std::string> set,
                           bool negated) {
  Condition c;
  c.column = std::move(column);
  c.kind = Kind::kInSet;
  c.set = std::move(set);
  c.negated = negated;
  return c;
}

Condition Condition::IsNull(std::string column) {
  Condition c;
  c.column = std::move(column);
  c.kind = Kind::kIsNull;
  return c;
}

Condition Condition::NotNull(std::string column) {
  Condition c;
  c.column = std::move(column);
  c.kind = Kind::kNotNull;
  return c;
}

namespace {

bool CompareNumeric(double lhs, CompareOp op, double rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
  }
  return false;
}

bool CompareString(const std::string& lhs, CompareOp op,
                   const std::string& rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
  }
  return false;
}

/// \brief One condition compiled against its column for a bulk evaluation.
///
/// All literal materialization is hoisted out of the row loop: the compare
/// literal is resolved to a double / string reference / dictionary code
/// once, and set membership pre-resolves to dictionary codes (string
/// columns), an int64 set (int columns, exact-rendering round-trip), or a
/// hashed string set — so the per-row test never constructs a Value or a
/// fresh std::string for dictionary-backed columns.
struct PreparedCondition {
  const Condition* cond = nullptr;
  const Column* col = nullptr;
  Condition::Kind kind = Condition::Kind::kCompare;
  CompareOp op = CompareOp::kLt;
  bool always_false = false;  // null literal or unsatisfiable type mix

  // kCompare
  double num_rhs = 0.0;                 // numeric columns
  const std::string* str_rhs = nullptr; // string columns, ordered ops
  bool use_eq_code = false;             // string columns, Eq/Ne via codes
  int32_t eq_code = Dictionary::kNullCode;

  // kInSet
  std::vector<int32_t> set_codes;        // string columns (sorted)
  std::unordered_set<int64_t> int_set;   // int64 columns
  std::unordered_set<std::string> str_set;  // double columns (rendered)
  bool in_true = false, in_false = false;   // bool columns

  bool Matches(uint32_t row) const {
    const bool is_null = col->IsNull(row);
    switch (kind) {
      case Condition::Kind::kIsNull:
        return is_null;
      case Condition::Kind::kNotNull:
        return !is_null;
      case Condition::Kind::kCompare: {
        if (is_null || always_false) return false;
        if (use_eq_code) {
          const bool eq = col->codes()[row] == eq_code;
          return op == CompareOp::kEq ? eq : !eq;
        }
        if (str_rhs != nullptr) {
          return CompareString(col->StringAt(row), op, *str_rhs);
        }
        return CompareNumeric(col->GetNumeric(row), op, num_rhs);
      }
      case Condition::Kind::kInSet: {
        if (is_null) return false;
        bool found = false;
        switch (col->type()) {
          case DataType::kString:
            found = std::binary_search(set_codes.begin(), set_codes.end(),
                                       col->codes()[row]);
            break;
          case DataType::kBool:
            found = col->bools()[row] ? in_true : in_false;
            break;
          case DataType::kInt64:
            found = int_set.count(col->ints()[row]) > 0;
            break;
          case DataType::kDouble:
            // Rendering per row matches the string-set semantics exactly
            // (%.6g is not injective, so value-keyed sets would diverge).
            found = str_set.count(FormatDouble(col->doubles()[row])) > 0;
            break;
        }
        return cond->negated ? !found : found;
      }
    }
    return false;
  }
};

PreparedCondition PrepareCondition(const Condition& c, const Column& col) {
  PreparedCondition p;
  p.cond = &c;
  p.col = &col;
  p.kind = c.kind;
  p.op = c.op;
  switch (c.kind) {
    case Condition::Kind::kIsNull:
    case Condition::Kind::kNotNull:
      break;
    case Condition::Kind::kCompare:
      if (c.value.is_null()) {
        p.always_false = true;
      } else if (col.type() == DataType::kString) {
        if (c.value.type() != DataType::kString) {
          p.always_false = true;
        } else if (c.op == CompareOp::kEq || c.op == CompareOp::kNe) {
          // Absent literal: Eq never matches, Ne matches every non-null —
          // exactly what kNullCode (never a cell code) yields.
          p.use_eq_code = true;
          p.eq_code = col.dictionary()->Find(c.value.AsString());
        } else {
          p.str_rhs = &c.value.AsString();
        }
      } else if (c.value.type() == DataType::kString) {
        p.always_false = true;
      } else {
        p.num_rhs = c.value.AsDouble();
      }
      break;
    case Condition::Kind::kInSet:
      switch (col.type()) {
        case DataType::kString:
          for (const std::string& s : c.set) {
            const int32_t code = col.dictionary()->Find(s);
            if (code != Dictionary::kNullCode) p.set_codes.push_back(code);
          }
          std::sort(p.set_codes.begin(), p.set_codes.end());
          break;
        case DataType::kBool:
          for (const std::string& s : c.set) {
            if (s == "true") p.in_true = true;
            if (s == "false") p.in_false = true;
          }
          break;
        case DataType::kInt64:
          for (const std::string& s : c.set) {
            int64_t v;
            // Only canonical renderings can ever match a cell's ToString.
            if (ParseInt(s, &v) && std::to_string(v) == s) p.int_set.insert(v);
          }
          break;
        case DataType::kDouble:
          p.str_set.insert(c.set.begin(), c.set.end());
          break;
      }
      break;
  }
  return p;
}

}  // namespace

bool Condition::Matches(const Column& col, size_t row) const {
  return PrepareCondition(*this, col).Matches(static_cast<uint32_t>(row));
}

std::string Condition::ToSql() const {
  std::string quoted = "\"" + column + "\"";
  switch (kind) {
    case Kind::kIsNull:
      return quoted + " IS NULL";
    case Kind::kNotNull:
      return quoted + " IS NOT NULL";
    case Kind::kCompare: {
      std::string rhs = value.type() == DataType::kString
                            ? "'" + value.AsString() + "'"
                            : value.ToString();
      return quoted + " " + CompareOpSymbol(op) + " " + rhs;
    }
    case Kind::kInSet: {
      std::string body;
      for (size_t i = 0; i < set.size(); ++i) {
        if (i > 0) body += ", ";
        body += "'" + set[i] + "'";
      }
      return quoted + (negated ? " NOT IN (" : " IN (") + body + ")";
    }
  }
  return "?";
}

Conjunction Conjunction::And(const Conjunction& other) const {
  Conjunction out(conditions_);
  for (const auto& c : other.conditions_) out.Add(c);
  return out;
}

Result<SelectionVector> Conjunction::Evaluate(const Table& table) const {
  return EvaluateOn(table, SelectionVector::All(table.num_rows()));
}

Result<SelectionVector> Conjunction::EvaluateOn(
    const Table& table, const SelectionVector& base) const {
  // Resolve columns and compile each condition once; the row loop then
  // works on dictionary codes / pre-parsed literals only.
  std::vector<PreparedCondition> prepared;
  prepared.reserve(conditions_.size());
  for (const auto& c : conditions_) {
    BLAEU_ASSIGN_OR_RETURN(size_t idx,
                           table.schema().RequireFieldIndex(c.column));
    prepared.push_back(PrepareCondition(c, *table.column(idx)));
  }
  SelectionVector out;
  for (uint32_t row : base.rows()) {
    bool all = true;
    for (const PreparedCondition& p : prepared) {
      if (!p.Matches(row)) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(row);
  }
  return out;
}

Result<bool> Conjunction::MatchesRow(const Table& table, size_t row) const {
  for (const auto& c : conditions_) {
    BLAEU_ASSIGN_OR_RETURN(size_t idx,
                           table.schema().RequireFieldIndex(c.column));
    if (!c.Matches(*table.column(idx), row)) return false;
  }
  return true;
}

std::string Conjunction::ToSql() const {
  if (conditions_.empty()) return "TRUE";
  std::vector<std::string> parts;
  parts.reserve(conditions_.size());
  for (const auto& c : conditions_) parts.push_back(c.ToSql());
  return Join(parts, " AND ");
}

}  // namespace blaeu::monet
