// Parallel execution layer: a lazily-started process-wide thread pool plus
// deterministic data-parallel loops (ParallelFor / ParallelMapReduce).
//
// Determinism contract: a range [begin, end) with grain g is always split
// into the SAME ceil(n/g) chunks — chunk c covers
// [begin + c*g, min(end, begin + (c+1)*g)) — regardless of how many threads
// execute them. Only the assignment of chunks to threads varies. Callers
// whose chunks write disjoint state (or reduce in chunk order, as
// ParallelMapReduce does) therefore produce bit-identical results at any
// thread count, which is what lets the map pipeline parallelize without
// perturbing its output.
//
// Thread budget resolution (EffectiveNumThreads): a per-call request of 0
// means "the process default" — BLAEU_NUM_THREADS if set, otherwise
// hardware_concurrency. A request of 1 (or a single-chunk range, or a call
// from inside another parallel region) runs inline on the caller with no
// pool traffic, so the serial path costs exactly one branch more than a
// plain loop.
//
// Observability: the pool reports `common.parallel.workers` (gauge, set
// when the workers start) and `common.parallel.tasks` (counter, chunks
// dispatched through the pool) to obs::MetricsRegistry::Global().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace blaeu {

/// Parses a BLAEU_NUM_THREADS-style value; returns `fallback` for null,
/// empty, non-numeric or non-positive input.
size_t NumThreadsFromEnv(const char* value, size_t fallback);

/// The process-default thread budget: BLAEU_NUM_THREADS if set and valid,
/// otherwise std::thread::hardware_concurrency() (minimum 1). Computed once.
size_t DefaultNumThreads();

/// Resolves a per-call thread request: 0 means DefaultNumThreads().
size_t EffectiveNumThreads(size_t requested);

/// \brief A fixed-size pool of worker threads with a shared FIFO queue.
///
/// Workers are spawned lazily on the first Submit, so merely linking the
/// library (or running everything with num_threads = 1) never creates a
/// thread. `Global()` is the process-wide instance ParallelFor uses by
/// default; it is intentionally leaked, like obs::MetricsRegistry::Global(),
/// to dodge static-destruction-order problems.
class ThreadPool {
 public:
  /// The process-wide pool, sized DefaultNumThreads(). Never destroyed.
  static ThreadPool& Global();

  /// \param num_threads  worker count; 0 means DefaultNumThreads().
  explicit ThreadPool(size_t num_threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Drains nothing: pending tasks are still run, then workers join.
  ~ThreadPool();

  size_t num_threads() const { return num_threads_; }
  /// True once the workers have been spawned (first Submit).
  bool started() const;

  /// Enqueues `fn` for execution on a worker thread; starts the workers on
  /// first use. `fn` must not throw (ParallelFor catches for its bodies).
  void Submit(std::function<void()> fn);

 private:
  void EnsureStarted();
  void WorkerLoop();

  const size_t num_threads_;
  std::once_flag start_once_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool started_ = false;  // guarded by mu_
  bool stop_ = false;     // guarded by mu_
};

/// Runs `body(chunk_begin, chunk_end)` over every chunk of [begin, end)
/// (see the determinism contract above). Chunks run concurrently on up to
/// `num_threads` threads (0 = process default; the caller participates).
/// Blocks until every chunk finished. The first exception a chunk throws is
/// rethrown on the caller after remaining chunks are cancelled. Nested
/// calls from inside a chunk body run inline, so parallel code can call
/// parallel code without deadlock or oversubscription.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body,
                 size_t num_threads = 0, ThreadPool* pool = nullptr);

/// Maps every chunk of [begin, end) through `map_chunk(chunk_begin,
/// chunk_end) -> T` in parallel, then folds the per-chunk results in chunk
/// order on the caller: acc = reduce(acc, chunk_result). Because both the
/// chunking and the fold order are independent of the thread count, the
/// result is bit-identical at any parallelism (floating-point included).
template <typename T, typename MapFn, typename ReduceFn>
T ParallelMapReduce(size_t begin, size_t end, size_t grain, T init,
                    const MapFn& map_chunk, const ReduceFn& reduce,
                    size_t num_threads = 0, ThreadPool* pool = nullptr) {
  if (end <= begin) return init;
  if (grain == 0) grain = 1;
  const size_t num_chunks = (end - begin + grain - 1) / grain;
  std::vector<T> partial(num_chunks);
  ParallelFor(
      begin, end, grain,
      [&](size_t lo, size_t hi) { partial[(lo - begin) / grain] = map_chunk(lo, hi); },
      num_threads, pool);
  T acc = std::move(init);
  for (T& p : partial) acc = reduce(std::move(acc), std::move(p));
  return acc;
}

}  // namespace blaeu
