#include "monet/sql_parser.h"

#include <cctype>

#include "common/string_util.h"

namespace blaeu::monet {

namespace {

enum class TokenKind {
  kKeyword,     // SELECT, FROM, WHERE, AND, IN, NOT, IS, NULL, TRUE
  kIdentifier,  // "quoted" or bare
  kString,      // 'single quoted'
  kNumber,
  kOperator,    // < <= > >= = <>
  kComma,
  kLParen,
  kRParen,
  kStar,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier/string/number payload, upper-cased keyword
  size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      Token token;
      token.position = pos_;
      if (pos_ >= input_.size()) {
        token.kind = TokenKind::kEnd;
        out.push_back(token);
        return out;
      }
      char c = input_[pos_];
      if (c == '"') {
        BLAEU_ASSIGN_OR_RETURN(token.text, ReadQuoted('"'));
        token.kind = TokenKind::kIdentifier;
      } else if (c == '\'') {
        BLAEU_ASSIGN_OR_RETURN(token.text, ReadQuoted('\''));
        token.kind = TokenKind::kString;
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '+' || (c == '.' && pos_ + 1 < input_.size() &&
                              std::isdigit(static_cast<unsigned char>(
                                  input_[pos_ + 1])))) {
        token.kind = TokenKind::kNumber;
        token.text = ReadNumber();
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string word = ReadWord();
        std::string upper;
        for (char w : word) {
          upper.push_back(
              static_cast<char>(std::toupper(static_cast<unsigned char>(w))));
        }
        if (upper == "SELECT" || upper == "FROM" || upper == "WHERE" ||
            upper == "AND" || upper == "IN" || upper == "NOT" ||
            upper == "IS" || upper == "NULL" || upper == "TRUE") {
          token.kind = TokenKind::kKeyword;
          token.text = upper;
        } else {
          token.kind = TokenKind::kIdentifier;
          token.text = word;
        }
      } else {
        switch (c) {
          case ',':
            token.kind = TokenKind::kComma;
            ++pos_;
            break;
          case '(':
            token.kind = TokenKind::kLParen;
            ++pos_;
            break;
          case ')':
            token.kind = TokenKind::kRParen;
            ++pos_;
            break;
          case '*':
            token.kind = TokenKind::kStar;
            ++pos_;
            break;
          case ';':
            token.kind = TokenKind::kSemicolon;
            ++pos_;
            break;
          case '<':
            token.kind = TokenKind::kOperator;
            ++pos_;
            if (pos_ < input_.size() &&
                (input_[pos_] == '=' || input_[pos_] == '>')) {
              token.text = std::string("<") + input_[pos_++];
            } else {
              token.text = "<";
            }
            break;
          case '>':
            token.kind = TokenKind::kOperator;
            ++pos_;
            if (pos_ < input_.size() && input_[pos_] == '=') {
              token.text = ">=";
              ++pos_;
            } else {
              token.text = ">";
            }
            break;
          case '=':
            token.kind = TokenKind::kOperator;
            token.text = "=";
            ++pos_;
            break;
          default:
            return Status::Invalid("unexpected character '" +
                                   std::string(1, c) + "' at position " +
                                   std::to_string(pos_));
        }
      }
      out.push_back(std::move(token));
    }
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  Result<std::string> ReadQuoted(char quote) {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == quote) {
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == quote) {
          out.push_back(quote);  // doubled quote escape
          pos_ += 2;
          continue;
        }
        ++pos_;
        return out;
      }
      out.push_back(c);
      ++pos_;
    }
    return Status::Invalid("unterminated quote starting at position " +
                           std::to_string(pos_));
  }

  std::string ReadNumber() {
    size_t start = pos_;
    if (input_[pos_] == '-' || input_[pos_] == '+') ++pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.' || input_[pos_] == 'e' ||
            input_[pos_] == 'E' ||
            ((input_[pos_] == '-' || input_[pos_] == '+') &&
             (input_[pos_ - 1] == 'e' || input_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    return input_.substr(start, pos_ - start);
  }

  std::string ReadWord() {
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    return input_.substr(start, pos_ - start);
  }

  const std::string& input_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectProjectQuery> ParseQuery() {
    SelectProjectQuery q;
    BLAEU_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    if (Peek().kind == TokenKind::kStar) {
      Advance();
    } else {
      while (true) {
        BLAEU_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        q.columns.push_back(std::move(col));
        if (Peek().kind != TokenKind::kComma) break;
        Advance();
      }
    }
    BLAEU_RETURN_NOT_OK(ExpectKeyword("FROM"));
    BLAEU_ASSIGN_OR_RETURN(q.table_name, ExpectIdentifier());
    if (IsKeyword("WHERE")) {
      Advance();
      BLAEU_ASSIGN_OR_RETURN(q.where, ParseConjunction());
    }
    if (Peek().kind == TokenKind::kSemicolon) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Status::Invalid("trailing input at position " +
                             std::to_string(Peek().position));
    }
    return q;
  }

  Result<Conjunction> ParseConjunction() {
    Conjunction conj;
    while (true) {
      // TRUE is the empty conjunction marker.
      if (IsKeyword("TRUE")) {
        Advance();
      } else {
        BLAEU_ASSIGN_OR_RETURN(Condition cond, ParseCondition());
        conj.Add(std::move(cond));
      }
      if (!IsKeyword("AND")) break;
      Advance();
    }
    return conj;
  }

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  void Advance() { ++index_; }

  bool IsKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kKeyword && Peek().text == kw;
  }

  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(kw)) {
      return Status::Invalid(std::string("expected ") + kw +
                             " at position " +
                             std::to_string(Peek().position));
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::Invalid("expected identifier at position " +
                             std::to_string(Peek().position));
    }
    std::string out = Peek().text;
    Advance();
    return out;
  }

  Result<Condition> ParseCondition() {
    BLAEU_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
    // IS [NOT] NULL
    if (IsKeyword("IS")) {
      Advance();
      bool negated = false;
      if (IsKeyword("NOT")) {
        Advance();
        negated = true;
      }
      BLAEU_RETURN_NOT_OK(ExpectKeyword("NULL"));
      return negated ? Condition::NotNull(column) : Condition::IsNull(column);
    }
    // [NOT] IN ( ... )
    bool negated = false;
    if (IsKeyword("NOT")) {
      Advance();
      negated = true;
    }
    if (IsKeyword("IN")) {
      Advance();
      if (Peek().kind != TokenKind::kLParen) {
        return Status::Invalid("expected ( after IN at position " +
                               std::to_string(Peek().position));
      }
      Advance();
      std::vector<std::string> set;
      while (true) {
        if (Peek().kind != TokenKind::kString) {
          return Status::Invalid("expected string literal at position " +
                                 std::to_string(Peek().position));
        }
        set.push_back(Peek().text);
        Advance();
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      if (Peek().kind != TokenKind::kRParen) {
        return Status::Invalid("expected ) at position " +
                               std::to_string(Peek().position));
      }
      Advance();
      return Condition::InSet(column, std::move(set), negated);
    }
    if (negated) {
      return Status::Invalid("expected IN after NOT at position " +
                             std::to_string(Peek().position));
    }
    // Comparison.
    if (Peek().kind != TokenKind::kOperator) {
      return Status::Invalid("expected comparison operator at position " +
                             std::to_string(Peek().position));
    }
    std::string op_text = Peek().text;
    Advance();
    CompareOp op;
    if (op_text == "<") {
      op = CompareOp::kLt;
    } else if (op_text == "<=") {
      op = CompareOp::kLe;
    } else if (op_text == ">") {
      op = CompareOp::kGt;
    } else if (op_text == ">=") {
      op = CompareOp::kGe;
    } else if (op_text == "=") {
      op = CompareOp::kEq;
    } else {  // "<>"
      op = CompareOp::kNe;
    }
    if (Peek().kind == TokenKind::kNumber) {
      double v;
      if (!ParseDouble(Peek().text, &v)) {
        return Status::Invalid("bad number '" + Peek().text +
                               "' at position " +
                               std::to_string(Peek().position));
      }
      Advance();
      return Condition::Compare(column, op, Value::Double(v));
    }
    if (Peek().kind == TokenKind::kString) {
      std::string v = Peek().text;
      Advance();
      return Condition::Compare(column, op, Value::Str(std::move(v)));
    }
    return Status::Invalid("expected literal at position " +
                           std::to_string(Peek().position));
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

}  // namespace

Result<SelectProjectQuery> ParseSql(const std::string& sql) {
  Lexer lexer(sql);
  BLAEU_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<Conjunction> ParseWhere(const std::string& text) {
  Lexer lexer(text);
  BLAEU_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  BLAEU_ASSIGN_OR_RETURN(Conjunction conj, parser.ParseConjunction());
  if (!parser.AtEnd()) {
    return Status::Invalid("trailing input after WHERE clause");
  }
  return conj;
}

}  // namespace blaeu::monet
