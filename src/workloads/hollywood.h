// Synthetic stand-in for the paper's Hollywood dataset: "data about 900
// Hollywood movies released between 2007 and 2013. It contains 12 columns."
// (paper §4.2). The generator plants four intuitive movie profiles so the
// demo questions have discoverable answers: blockbusters, critical
// darlings, flops and mid-range studio fare.
#pragma once

#include <cstdint>

#include "workloads/dataset.h"

namespace blaeu::workloads {

/// Hollywood generator options.
struct HollywoodSpec {
  size_t rows = 900;
  uint64_t seed = 42;
  /// Fraction of cells nulled in the score columns (critics do not review
  /// everything).
  double missing_rate = 0.02;
};

/// Schema (12 columns):
///   film_id:int (PK), title:string (unique), genre:string, studio:string,
///   year:int (2007-2013), budget_musd, domestic_gross_musd,
///   worldwide_gross_musd, profitability, rt_critics (0-100),
///   audience_score (0-100), theaters:int.
///
/// Planted clusters (truth.row_clusters):
///   0 blockbuster   — huge budget/gross, good audience, mixed critics
///   1 critical darling — small budget, modest gross, high critics
///   2 flop          — mid budget, poor gross, poor scores
///   3 mid-range     — everything moderate
/// Planted themes (truth.column_themes): money columns (0), reception
/// columns (1), release columns (2); ids/titles are -1.
Dataset MakeHollywood(const HollywoodSpec& spec = {});

}  // namespace blaeu::workloads
