// Unit tests for the sampling primitives and the multi-scale sampler.
#include "monet/sampling.h"

#include <gtest/gtest.h>

#include <set>

namespace blaeu::monet {
namespace {

TEST(SamplingTest, UniformSampleSizeAndRange) {
  Rng rng(1);
  SelectionVector s = UniformSampleIndices(100, 20, &rng);
  EXPECT_EQ(s.size(), 20u);
  std::set<uint32_t> unique(s.rows().begin(), s.rows().end());
  EXPECT_EQ(unique.size(), 20u);
  EXPECT_TRUE(std::is_sorted(s.rows().begin(), s.rows().end()));
  for (uint32_t r : s.rows()) EXPECT_LT(r, 100u);
}

TEST(SamplingTest, UniformSampleWholePopulation) {
  Rng rng(2);
  SelectionVector s = UniformSampleIndices(10, 50, &rng);
  EXPECT_EQ(s.size(), 10u);
}

TEST(SamplingTest, SampleFromSelectionSubsets) {
  Rng rng(3);
  SelectionVector base({5, 10, 15, 20, 25, 30});
  SelectionVector s = SampleFromSelection(base, 3, &rng);
  EXPECT_EQ(s.size(), 3u);
  for (uint32_t r : s.rows()) {
    EXPECT_TRUE(std::binary_search(base.rows().begin(), base.rows().end(), r));
  }
  // k >= size returns base unchanged.
  EXPECT_EQ(SampleFromSelection(base, 10, &rng), base);
}

TEST(SamplingTest, ReservoirMatchesSizeAndIsUniformish) {
  Rng rng(4);
  // Mean of a uniform sample of [0,1000) should be near 500.
  double mean_sum = 0;
  for (int rep = 0; rep < 30; ++rep) {
    SelectionVector s = ReservoirSampleIndices(1000, 50, &rng);
    EXPECT_EQ(s.size(), 50u);
    double m = 0;
    for (uint32_t r : s.rows()) m += r;
    mean_sum += m / 50.0;
  }
  EXPECT_NEAR(mean_sum / 30.0, 500.0, 60.0);
}

TEST(SamplingTest, ReservoirZeroK) {
  Rng rng(5);
  EXPECT_EQ(ReservoirSampleIndices(100, 0, &rng).size(), 0u);
}

TEST(SamplingTest, BernoulliRate) {
  Rng rng(6);
  SelectionVector s = BernoulliSampleIndices(10000, 0.3, &rng);
  EXPECT_NEAR(static_cast<double>(s.size()), 3000.0, 200.0);
}

TEST(SamplingTest, StratifiedKeepsProportions) {
  Rng rng(7);
  // Three strata with sizes 600 / 300 / 100.
  std::vector<int> labels;
  for (int i = 0; i < 600; ++i) labels.push_back(0);
  for (int i = 0; i < 300; ++i) labels.push_back(1);
  for (int i = 0; i < 100; ++i) labels.push_back(2);
  SelectionVector s = StratifiedSampleIndices(labels, 100, &rng);
  size_t counts[3] = {0, 0, 0};
  for (uint32_t r : s.rows()) ++counts[labels[r]];
  EXPECT_NEAR(static_cast<double>(counts[0]), 60.0, 2.0);
  EXPECT_NEAR(static_cast<double>(counts[1]), 30.0, 2.0);
  EXPECT_NEAR(static_cast<double>(counts[2]), 10.0, 2.0);
}

TEST(SamplingTest, StratifiedSmallBudgetCoversStrata) {
  Rng rng(8);
  std::vector<int> labels = {0, 0, 0, 0, 1, 1, 2, 2};
  SelectionVector s = StratifiedSampleIndices(labels, 3, &rng);
  std::set<int> seen;
  for (uint32_t r : s.rows()) seen.insert(labels[r]);
  EXPECT_GE(seen.size(), 3u);  // every stratum represented
}

TEST(SamplingTest, DeterministicGivenSeed) {
  Rng a(99), b(99);
  EXPECT_EQ(UniformSampleIndices(500, 50, &a).rows(),
            UniformSampleIndices(500, 50, &b).rows());
}

TEST(MultiScaleSamplerTest, ScalesGrowAndNest) {
  Rng rng(10);
  MultiScaleSampler sampler(10000, 100, 4.0, &rng);
  ASSERT_GE(sampler.num_scales(), 3u);
  EXPECT_EQ(sampler.scale_size(0), 100u);
  EXPECT_EQ(sampler.scale_size(sampler.num_scales() - 1), 10000u);
  // Nesting: every row of scale s appears in scale s+1.
  for (size_t s = 0; s + 1 < sampler.num_scales(); ++s) {
    SelectionVector small = sampler.SampleAtScale(s);
    SelectionVector big = sampler.SampleAtScale(s + 1);
    EXPECT_EQ(small.Intersect(big).size(), small.size());
  }
}

TEST(MultiScaleSamplerTest, SampleAtMostRespectsSelection) {
  Rng rng(11);
  MultiScaleSampler sampler(1000, 50, 4.0, &rng);
  // Selection: even rows only.
  std::vector<uint32_t> even;
  for (uint32_t i = 0; i < 1000; i += 2) even.push_back(i);
  SelectionVector sel(even);
  SelectionVector s = sampler.SampleAtMost(sel, 40);
  EXPECT_EQ(s.size(), 40u);
  for (uint32_t r : s.rows()) EXPECT_EQ(r % 2, 0u);
  // Small selections pass through untouched.
  SelectionVector tiny({2, 4, 6});
  EXPECT_EQ(sampler.SampleAtMost(tiny, 40), tiny);
}

TEST(MultiScaleSamplerTest, NestedAcrossBudgets) {
  Rng rng(12);
  MultiScaleSampler sampler(5000, 100, 4.0, &rng);
  SelectionVector sel = SelectionVector::All(5000);
  SelectionVector small = sampler.SampleAtMost(sel, 200);
  SelectionVector big = sampler.SampleAtMost(sel, 800);
  EXPECT_EQ(small.Intersect(big).size(), small.size());
}

TEST(SamplingTest, SampleTableMaterializes) {
  TableBuilder b(Schema({{"x", DataType::kInt64}}));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(b.AppendRow({Value::Int(i)}).ok());
  }
  auto table = *b.Finish();
  Rng rng(13);
  TablePtr sample = SampleTable(*table, 10, &rng);
  EXPECT_EQ(sample->num_rows(), 10u);
}

}  // namespace
}  // namespace blaeu::monet
