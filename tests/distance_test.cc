// Unit tests for distance functions and matrices.
#include "stats/distance.h"

#include <gtest/gtest.h>

#include <cmath>

namespace blaeu::stats {
namespace {

TEST(EuclideanTest, KnownValues) {
  double a[] = {0, 0};
  double b[] = {3, 4};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b, 2), 5.0);
  EXPECT_DOUBLE_EQ(SquaredEuclideanDistance(a, b, 2), 25.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a, 2), 0.0);
}

TEST(ManhattanTest, KnownValues) {
  double a[] = {1, -1, 2};
  double b[] = {2, 1, 0};
  EXPECT_DOUBLE_EQ(ManhattanDistance(a, b, 3), 5.0);
}

TEST(GowerTest, MixedFeatures) {
  // Feature 0 numeric with range 10; feature 1 categorical.
  Matrix data(3, 2);
  data.At(0, 0) = 0;
  data.At(1, 0) = 10;
  data.At(2, 0) = 5;
  data.At(0, 1) = 0;
  data.At(1, 1) = 0;
  data.At(2, 1) = 1;
  GowerDistance gower = GowerDistance::Fit(data, {false, true});
  // Rows 0,1: numeric diff 10/10 = 1, categorical same: (1 + 0) / 2.
  EXPECT_DOUBLE_EQ(gower(data.RowPtr(0), data.RowPtr(1)), 0.5);
  // Rows 0,2: numeric 0.5, categorical mismatch 1 -> 0.75.
  EXPECT_DOUBLE_EQ(gower(data.RowPtr(0), data.RowPtr(2)), 0.75);
}

TEST(GowerTest, MissingValuesSkipped) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  Matrix data(2, 2);
  data.At(0, 0) = 0;
  data.At(1, 0) = 5;
  data.At(0, 1) = kNaN;
  data.At(1, 1) = 1;
  GowerDistance gower({false, true}, {10.0, 0.0});
  // Only feature 0 comparable: |0-5|/10 = 0.5.
  EXPECT_DOUBLE_EQ(gower(data.RowPtr(0), data.RowPtr(1)), 0.5);
}

TEST(GowerTest, NoComparableFeaturesIsMaxDistance) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  Matrix data(2, 1);
  data.At(0, 0) = kNaN;
  data.At(1, 0) = 1.0;
  GowerDistance gower({false}, {1.0});
  EXPECT_DOUBLE_EQ(gower(data.RowPtr(0), data.RowPtr(1)), 1.0);
}

TEST(GowerTest, ZeroRangeFeatureContributesNothing) {
  Matrix data(2, 2);
  data.At(0, 0) = 7;
  data.At(1, 0) = 7;  // constant feature
  data.At(0, 1) = 0;
  data.At(1, 1) = 4;
  GowerDistance gower = GowerDistance::Fit(data, {false, false});
  EXPECT_DOUBLE_EQ(gower(data.RowPtr(0), data.RowPtr(1)), 0.5);  // (0+1)/2
}

TEST(DistanceMatrixTest, SymmetricWithZeroDiagonal) {
  Matrix data(4, 2);
  for (size_t i = 0; i < 4; ++i) {
    data.At(i, 0) = static_cast<double>(i);
    data.At(i, 1) = static_cast<double>(i * i);
  }
  DistanceMatrix d = DistanceMatrix::Euclidean(data);
  EXPECT_EQ(d.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(d.At(i, i), 0.0);
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(d.At(i, j), d.At(j, i));
    }
  }
  EXPECT_DOUBLE_EQ(d.At(0, 1), EuclideanDistance(data.RowPtr(0),
                                                 data.RowPtr(1), 2));
}

TEST(DistanceMatrixTest, TriangleInequalityHolds) {
  Matrix data(5, 3);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t f = 0; f < 3; ++f) {
      data.At(i, f) = static_cast<double>((i * 7 + f * 3) % 11);
    }
  }
  DistanceMatrix d = DistanceMatrix::Euclidean(data);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      for (size_t k = 0; k < 5; ++k) {
        EXPECT_LE(d.At(i, j), d.At(i, k) + d.At(k, j) + 1e-12);
      }
    }
  }
}

TEST(MatrixTest, TakeRows) {
  Matrix m(3, 2);
  for (size_t i = 0; i < 3; ++i) {
    m.At(i, 0) = static_cast<double>(i);
    m.At(i, 1) = static_cast<double>(i * 10);
  }
  Matrix t = m.TakeRows({2, 0});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_DOUBLE_EQ(t.At(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(t.At(1, 0), 0.0);
}

}  // namespace
}  // namespace blaeu::stats
