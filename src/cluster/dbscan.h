// DBSCAN (density-based clustering). Blaeu's pipeline decouples cluster
// *detection* from cluster *description* precisely so that "arbitrarily
// sophisticated cluster detection algorithms" can slot in (paper §3);
// DBSCAN is the canonical arbitrary-shape detector and plugs into the same
// map-description stage as PAM.
#pragma once

#include "common/status.h"
#include "cluster/clustering.h"
#include "stats/distance.h"

namespace blaeu::cluster {

/// DBSCAN options.
struct DbscanOptions {
  double eps = 0.5;       ///< neighborhood radius
  size_t min_points = 5;  ///< core-point density threshold (incl. self)
};

/// \brief DBSCAN result: labels in [0, k) plus -1 for noise points.
struct DbscanResult {
  std::vector<int> labels;
  size_t num_clusters = 0;
  size_t num_noise = 0;
};

/// Runs DBSCAN over a precomputed distance matrix (O(n^2)).
Result<DbscanResult> Dbscan(const stats::DistanceMatrix& dist,
                            const DbscanOptions& options);

/// Converts a DBSCAN result to the shared ClusteringResult shape: noise
/// points are attached to the nearest cluster's nearest member (maps must
/// cover every tuple), and per-cluster medoids are computed.
ClusteringResult DbscanToClustering(const DbscanResult& result,
                                    const stats::DistanceMatrix& dist);

}  // namespace blaeu::cluster
