#include "monet/table.h"

#include <algorithm>
#include <sstream>

namespace blaeu::monet {

Table::Table(Schema schema, std::vector<ColumnPtr> columns)
    : schema_(std::move(schema)),
      columns_(std::move(columns)),
      num_rows_(columns_.empty() ? 0 : columns_[0]->size()) {}

Result<TablePtr> Table::Make(Schema schema, std::vector<ColumnPtr> columns) {
  if (schema.num_fields() != columns.size()) {
    return Status::Invalid("schema has " +
                           std::to_string(schema.num_fields()) +
                           " fields but " + std::to_string(columns.size()) +
                           " columns given");
  }
  size_t rows = columns.empty() ? 0 : columns[0]->size();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == nullptr) {
      return Status::Invalid("column " + std::to_string(i) + " is null");
    }
    if (columns[i]->type() != schema.field(i).type) {
      return Status::TypeError("column '" + schema.field(i).name +
                               "' type mismatch");
    }
    if (columns[i]->size() != rows) {
      return Status::Invalid("column '" + schema.field(i).name +
                             "' has ragged length");
    }
  }
  return std::make_shared<const Table>(std::move(schema), std::move(columns));
}

Result<ColumnPtr> Table::ColumnByName(const std::string& name) const {
  BLAEU_ASSIGN_OR_RETURN(size_t idx, schema_.RequireFieldIndex(name));
  return columns_[idx];
}

std::vector<Value> Table::Row(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col->GetValue(row));
  return out;
}

TablePtr Table::Take(const std::vector<uint32_t>& indices) const {
  std::vector<ColumnPtr> cols;
  cols.reserve(columns_.size());
  for (const auto& col : columns_) {
    cols.push_back(std::make_shared<Column>(col->Take(indices)));
  }
  return std::make_shared<const Table>(schema_, std::move(cols));
}

TablePtr Table::Project(const std::vector<size_t>& indices) const {
  std::vector<ColumnPtr> cols;
  cols.reserve(indices.size());
  for (size_t i : indices) cols.push_back(columns_[i]);
  return std::make_shared<const Table>(schema_.Select(indices),
                                       std::move(cols));
}

Result<TablePtr> Table::ProjectNames(
    const std::vector<std::string>& names) const {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const auto& name : names) {
    BLAEU_ASSIGN_OR_RETURN(size_t idx, schema_.RequireFieldIndex(name));
    indices.push_back(idx);
  }
  return Project(indices);
}

std::string Table::ToString(size_t max_rows) const {
  size_t rows = std::min(max_rows, num_rows_);
  std::vector<std::vector<std::string>> grid;
  std::vector<std::string> header;
  for (const auto& f : schema_.fields()) header.push_back(f.name);
  grid.push_back(header);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> line;
    for (const auto& col : columns_) line.push_back(col->GetValue(r).ToString());
    grid.push_back(std::move(line));
  }
  std::vector<size_t> widths(num_columns(), 0);
  for (const auto& line : grid) {
    for (size_t c = 0; c < line.size(); ++c) {
      widths[c] = std::max(widths[c], line[c].size());
    }
  }
  std::ostringstream out;
  for (size_t li = 0; li < grid.size(); ++li) {
    for (size_t c = 0; c < grid[li].size(); ++c) {
      if (c > 0) out << " | ";
      out << grid[li][c];
      out << std::string(widths[c] - grid[li][c].size(), ' ');
    }
    out << "\n";
    if (li == 0) {
      size_t total = 0;
      for (size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c > 0 ? 3 : 0);
      }
      out << std::string(total, '-') << "\n";
    }
  }
  if (num_rows_ > rows) {
    out << "... (" << num_rows_ - rows << " more rows)\n";
  }
  return out.str();
}

TableBuilder::TableBuilder(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const auto& f : schema_.fields()) {
    columns_.push_back(std::make_shared<Column>(f.type));
  }
}

Status TableBuilder::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::Invalid("row arity " + std::to_string(values.size()) +
                           " != schema arity " +
                           std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    BLAEU_RETURN_NOT_OK(columns_[i]->AppendValue(values[i]));
  }
  return Status::OK();
}

void TableBuilder::Reserve(size_t n) {
  for (auto& col : columns_) col->Reserve(n);
}

Result<TablePtr> TableBuilder::Finish() {
  size_t rows = num_rows();
  for (const auto& col : columns_) {
    if (col->size() != rows) {
      return Status::Invalid("ragged columns at Finish()");
    }
  }
  std::vector<ColumnPtr> cols(columns_.begin(), columns_.end());
  columns_.clear();
  for (const auto& f : schema_.fields()) {
    columns_.push_back(std::make_shared<Column>(f.type));
  }
  return Table::Make(schema_, std::move(cols));
}

}  // namespace blaeu::monet
