// Silhouette coefficient — Blaeu's clustering-quality score, used both for
// user feedback and to choose the number of clusters k (paper §3). The
// Monte-Carlo estimator mirrors the paper: "it extracts a few sub-samples
// from the user's selection, computes the clustering quality of those, and
// averages the results".
#pragma once

#include <functional>
#include <vector>

#include "common/rng.h"
#include "stats/distance.h"
#include "stats/matrix.h"

namespace blaeu::stats {

/// Silhouette value s(i) for each point, given a precomputed distance
/// matrix and cluster labels in [0, k). Points in singleton clusters get
/// s = 0 (Kaufman & Rousseeuw convention).
std::vector<double> SilhouetteValues(const DistanceMatrix& dist,
                                     const std::vector<int>& labels);

/// Mean silhouette over all points (exact, O(n^2) distances).
double MeanSilhouette(const DistanceMatrix& dist,
                      const std::vector<int>& labels);

/// Exact mean silhouette with Euclidean distance on `data`.
double MeanSilhouetteEuclidean(const Matrix& data,
                               const std::vector<int>& labels);

/// Options for the Monte-Carlo estimator.
struct MonteCarloSilhouetteOptions {
  size_t num_subsamples = 5;     ///< independent sub-samples averaged
  size_t subsample_size = 200;   ///< points per sub-sample
  uint64_t seed = 42;
};

/// Monte-Carlo mean silhouette: draws sub-samples (stratified so every
/// cluster with >= 2 members keeps at least 2 representatives when the
/// budget allows), computes the exact silhouette inside each, and averages.
/// Cost O(num_subsamples * subsample_size^2) independent of n.
double MonteCarloSilhouette(const Matrix& data, const std::vector<int>& labels,
                            const MonteCarloSilhouetteOptions& options = {});

/// Monte-Carlo silhouette under an arbitrary row-distance function.
double MonteCarloSilhouette(
    size_t num_rows, const std::vector<int>& labels,
    const std::function<double(size_t, size_t)>& row_distance,
    const MonteCarloSilhouetteOptions& options = {});

}  // namespace blaeu::stats
