#include "monet/selection.h"

#include <algorithm>
#include <iterator>
#include <numeric>

namespace blaeu::monet {

SelectionVector SelectionVector::All(size_t n) {
  std::vector<uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  return SelectionVector(std::move(rows));
}

SelectionVector SelectionVector::Intersect(
    const SelectionVector& other) const {
  std::vector<uint32_t> out;
  out.reserve(std::min(rows_.size(), other.rows_.size()));
  std::set_intersection(rows_.begin(), rows_.end(), other.rows_.begin(),
                        other.rows_.end(), std::back_inserter(out));
  return SelectionVector(std::move(out));
}

SelectionVector SelectionVector::Union(const SelectionVector& other) const {
  std::vector<uint32_t> out;
  out.reserve(rows_.size() + other.rows_.size());
  std::set_union(rows_.begin(), rows_.end(), other.rows_.begin(),
                 other.rows_.end(), std::back_inserter(out));
  return SelectionVector(std::move(out));
}

SelectionVector SelectionVector::Difference(
    const SelectionVector& other) const {
  std::vector<uint32_t> out;
  out.reserve(rows_.size());
  std::set_difference(rows_.begin(), rows_.end(), other.rows_.begin(),
                      other.rows_.end(), std::back_inserter(out));
  return SelectionVector(std::move(out));
}

}  // namespace blaeu::monet
