// Projection suggestions: Blaeu's guidance loop. After a few zooms the
// interesting question is "which other theme would re-slice *this*
// selection well?" — the suggester re-scores every theme's cohesion on the
// current selection and ranks the alternatives (the paper's aim of
// "triggering insights and serendipity" without manual search).
#pragma once

#include <vector>

#include "common/status.h"
#include "core/navigation.h"

namespace blaeu::core {

/// One ranked suggestion.
struct ProjectionSuggestion {
  int theme_id = 0;
  /// Mean pairwise dependency of the theme's columns measured on the
  /// CURRENT selection (not the whole table).
  double local_cohesion = 0.0;
  /// local_cohesion - global cohesion: positive means the theme's columns
  /// are MORE coupled inside this selection than in general — an aspect
  /// that this selection sharpens.
  double lift = 0.0;
};

/// Options for suggestion scoring.
struct SuggestOptions {
  /// Rows sampled from the selection for dependency estimation.
  size_t sample_rows = 1000;
  /// Skip themes with fewer than this many columns (singletons carry no
  /// dependency signal).
  size_t min_theme_columns = 2;
  uint64_t seed = 42;
};

/// Scores every theme (including the active one) against the session's
/// current selection and returns suggestions sorted by lift, best first.
Result<std::vector<ProjectionSuggestion>> SuggestProjections(
    const Session& session, const SuggestOptions& options = {});

/// Renders suggestions as text ("theme 3 (+0.12 lift): unemployment, ...").
std::string RenderSuggestions(
    const Session& session,
    const std::vector<ProjectionSuggestion>& suggestions);

}  // namespace blaeu::core
