// Rule extraction: turns a CART tree into one conjunctive rule per leaf.
// These rules become the region predicates of the data map and the WHERE
// clauses of the implicit Select-Project queries.
#pragma once

#include <string>
#include <vector>

#include "monet/predicate.h"
#include "tree/cart.h"

namespace blaeu::tree {

/// \brief One extracted leaf rule.
struct LeafRule {
  monet::Conjunction conditions;  ///< root-to-leaf path predicate
  int label = 0;                  ///< leaf's majority class
  size_t count = 0;               ///< training rows at the leaf
  double confidence = 0.0;        ///< majority-class fraction at the leaf
};

/// Extracts one rule per leaf, left-to-right. Numeric conditions on the
/// same column are simplified (e.g. `x <= 5 AND x <= 3` becomes `x <= 3`,
/// and a `<=` paired with a `>` becomes a range).
std::vector<LeafRule> ExtractRules(const CartModel& model);

/// Renders the rules as text, one per line:
/// "IF <cond> AND <cond> THEN class k  (n rows, 97% conf)".
std::string RulesToString(const std::vector<LeafRule>& rules);

}  // namespace blaeu::tree
