#include "core/suggest.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"
#include "monet/sampling.h"
#include "stats/column_dependency.h"

namespace blaeu::core {

Result<std::vector<ProjectionSuggestion>> SuggestProjections(
    const Session& session, const SuggestOptions& options) {
  const NavState& cur = session.current();
  const ThemeSet& themes = session.themes();

  Rng rng(options.seed);
  monet::SelectionVector sample = monet::SampleFromSelection(
      cur.selection, options.sample_rows, &rng);

  std::vector<ProjectionSuggestion> out;
  for (const Theme& theme : themes.themes) {
    if (theme.columns.size() < options.min_theme_columns) continue;
    // Dependency matrix of the theme's columns over the sampled selection.
    monet::TablePtr view = session.table().Project(theme.columns);
    stats::DependencyOptions dep;
    dep.sample_rows = 0;  // we already sampled
    dep.seed = options.seed;
    monet::TablePtr sampled = view->Take(sample.rows());
    BLAEU_ASSIGN_OR_RETURN(auto matrix,
                           stats::DependencyMatrix(*sampled, dep));
    double total = 0.0;
    size_t pairs = 0;
    for (size_t i = 0; i < matrix.size(); ++i) {
      for (size_t j = i + 1; j < matrix.size(); ++j) {
        total += matrix[i][j];
        ++pairs;
      }
    }
    ProjectionSuggestion s;
    s.theme_id = theme.id;
    s.local_cohesion = pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
    s.lift = s.local_cohesion - theme.cohesion;
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const ProjectionSuggestion& a, const ProjectionSuggestion& b) {
              if (a.lift != b.lift) return a.lift > b.lift;
              return a.theme_id < b.theme_id;
            });
  return out;
}

std::string RenderSuggestions(
    const Session& session,
    const std::vector<ProjectionSuggestion>& suggestions) {
  std::ostringstream out;
  out << "Projection suggestions for the current selection ("
      << session.current().selection.size() << " tuples):\n";
  for (const ProjectionSuggestion& s : suggestions) {
    const Theme& theme = session.themes().theme(s.theme_id);
    out << "  theme " << s.theme_id << "  cohesion "
        << FormatDouble(s.local_cohesion, 3) << " ("
        << (s.lift >= 0 ? "+" : "") << FormatDouble(s.lift, 3)
        << " vs global): " << theme.Label() << "\n";
  }
  return out.str();
}

}  // namespace blaeu::core
