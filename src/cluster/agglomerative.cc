#include "cluster/agglomerative.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>

namespace blaeu::cluster {

using stats::DistanceMatrix;

Result<std::vector<int>> Dendrogram::CutToK(size_t k) const {
  if (k == 0 || k > num_leaves) {
    return Status::Invalid("cannot cut dendrogram of " +
                           std::to_string(num_leaves) + " leaves into " +
                           std::to_string(k) + " clusters");
  }
  // Union-find over leaves, replaying all but the last k-1 merges.
  std::vector<size_t> parent(num_leaves + merges.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  const size_t keep = merges.size() + 1 - k;  // merges to replay
  for (size_t i = 0; i < keep; ++i) {
    size_t a = find(merges[i].left);
    size_t b = find(merges[i].right);
    size_t node = num_leaves + i;
    parent[a] = node;
    parent[b] = node;
  }
  std::vector<int> labels(num_leaves);
  std::vector<int> renumber(num_leaves + merges.size(), -1);
  int next = 0;
  for (size_t i = 0; i < num_leaves; ++i) {
    size_t root = find(i);
    if (renumber[root] < 0) renumber[root] = next++;
    labels[i] = renumber[root];
  }
  return labels;
}

Result<Dendrogram> AgglomerativeCluster(const DistanceMatrix& dist,
                                        Linkage linkage) {
  const size_t n = dist.size();
  if (n == 0) return Status::Invalid("empty distance matrix");
  Dendrogram out;
  out.num_leaves = n;
  if (n == 1) return out;

  // active clusters: node id, member count, and a working distance matrix
  // (dense n x n, updated in place; slot i holds the current cluster that
  // started at leaf i, dead slots are skipped).
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) d[i][j] = dist.At(i, j);
  }
  std::vector<bool> alive(n, true);
  std::vector<size_t> node_id(n), size(n, 1);
  std::iota(node_id.begin(), node_id.end(), 0);

  for (size_t step = 0; step + 1 < n; ++step) {
    // Find the closest active pair.
    double best = std::numeric_limits<double>::infinity();
    size_t bi = 0, bj = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!alive[j]) continue;
        if (d[i][j] < best) {
          best = d[i][j];
          bi = i;
          bj = j;
        }
      }
    }
    out.merges.push_back({node_id[bi], node_id[bj], best});
    // Merge bj into bi with Lance-Williams updates.
    for (size_t x = 0; x < n; ++x) {
      if (!alive[x] || x == bi || x == bj) continue;
      double dix = d[bi][x], djx = d[bj][x];
      double merged;
      switch (linkage) {
        case Linkage::kSingle:
          merged = std::min(dix, djx);
          break;
        case Linkage::kComplete:
          merged = std::max(dix, djx);
          break;
        case Linkage::kAverage: {
          double si = static_cast<double>(size[bi]);
          double sj = static_cast<double>(size[bj]);
          merged = (si * dix + sj * djx) / (si + sj);
          break;
        }
      }
      d[bi][x] = d[x][bi] = merged;
    }
    size[bi] += size[bj];
    alive[bj] = false;
    node_id[bi] = n + step;
  }
  return out;
}

Result<ClusteringResult> AgglomerativeToK(const DistanceMatrix& dist,
                                          Linkage linkage, size_t k) {
  BLAEU_ASSIGN_OR_RETURN(Dendrogram dendro, AgglomerativeCluster(dist, linkage));
  BLAEU_ASSIGN_OR_RETURN(std::vector<int> labels, dendro.CutToK(k));
  ClusteringResult out;
  out.labels = labels;
  // Medoid of each cluster: minimal summed within-cluster distance.
  out.medoids.assign(k, 0);
  std::vector<double> best(k, std::numeric_limits<double>::infinity());
  const size_t n = dist.size();
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (labels[j] == labels[i]) sum += dist.At(i, j);
    }
    size_t c = static_cast<size_t>(labels[i]);
    if (sum < best[c]) {
      best[c] = sum;
      out.medoids[c] = i;
    }
  }
  out.total_cost = 0.0;
  for (size_t i = 0; i < n; ++i) {
    out.total_cost += dist.At(i, out.medoids[labels[i]]);
  }
  return out;
}

}  // namespace blaeu::cluster
