// Unit tests for the streaming JSON writer.
#include "common/json_writer.h"

#include <gtest/gtest.h>

#include <limits>

namespace blaeu {
namespace {

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter w;
  w.BeginObject().EndObject();
  EXPECT_EQ(w.str(), "{}");
}

TEST(JsonWriterTest, KeyValuePairs) {
  JsonWriter w;
  w.BeginObject().KV("a", 1).KV("b", "x").KV("c", true).EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":\"x\",\"c\":true}");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter w;
  w.BeginObject();
  w.Key("list").BeginArray().Int(1).Int(2).BeginObject().EndObject().EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"list\":[1,2,{}]}");
}

TEST(JsonWriterTest, EscapesSpecials) {
  JsonWriter w;
  w.BeginObject().KV("k", "a\"b\\c\nd").EndObject();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriterTest, NumbersRenderCompactly) {
  JsonWriter w;
  w.BeginArray().Number(1.5).Number(2.0).Int(-3).EndArray();
  EXPECT_EQ(w.str(), "[1.5,2,-3]");
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  JsonWriter w;
  w.BeginArray().Number(std::numeric_limits<double>::quiet_NaN()).EndArray();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(JsonWriterTest, NullLiteral) {
  JsonWriter w;
  w.BeginObject().Key("x").Null().EndObject();
  EXPECT_EQ(w.str(), "{\"x\":null}");
}

TEST(JsonWriterTest, ArrayOfStrings) {
  JsonWriter w;
  w.BeginArray().String("a").String("b").EndArray();
  EXPECT_EQ(w.str(), "[\"a\",\"b\"]");
}

}  // namespace
}  // namespace blaeu
