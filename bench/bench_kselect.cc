// Experiment C4: silhouette-driven choice of k (paper §3: "we generate
// several partitionings with different numbers of clusters, and keep the
// one with the best score").
//
// Table: for each planted k and separation, how often the sweep recovers
// the true k (over several seeds), with exact vs Monte-Carlo scoring.

#include <cstdio>

#include "cluster/kselect.h"
#include "common/timer.h"
#include "stats/distance.h"
#include "workloads/gaussian.h"

using namespace blaeu;

namespace {

struct Outcome {
  size_t hits = 0;
  size_t trials = 0;
  double total_ms = 0;
};

Outcome Run(size_t planted_k, double separation, bool monte_carlo) {
  Outcome out;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    workloads::MixtureSpec spec;
    spec.rows = 600;
    spec.num_clusters = planted_k;
    spec.dims = 4;
    spec.separation = separation;
    spec.seed = seed * 100 + planted_k;
    auto data = workloads::MakeGaussianMixture(spec);
    stats::Matrix features(spec.rows, spec.dims);
    for (size_t r = 0; r < spec.rows; ++r) {
      for (size_t c = 0; c < spec.dims; ++c) {
        features.At(r, c) = data.table->column(c)->doubles()[r];
      }
    }
    auto dist = stats::DistanceMatrix::Euclidean(features);
    cluster::KSelectOptions opt;
    opt.k_min = 2;
    opt.k_max = 8;
    opt.monte_carlo = monte_carlo;
    opt.mc_options.subsample_size = 150;
    opt.mc_options.seed = seed;
    Timer timer;
    auto result = cluster::SelectKWithPam(dist, opt);
    out.total_ms += timer.ElapsedMillis();
    ++out.trials;
    if (result.ok() && result->best_k == planted_k) ++out.hits;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Blaeu bench: silhouette k-selection (C4)\n\n");
  std::printf("%10s %12s %10s %14s %14s %12s\n", "planted_k", "separation",
              "scoring", "recovered", "recovery_rate", "avg_ms");
  for (size_t k : {2, 3, 4, 5, 6}) {
    for (double separation : {4.0, 8.0}) {
      for (bool mc : {false, true}) {
        Outcome o = Run(k, separation, mc);
        std::printf("%10zu %12.1f %10s %10zu/%zu %14.2f %12.1f\n", k,
                    separation, mc ? "mc" : "exact", o.hits, o.trials,
                    static_cast<double>(o.hits) /
                        static_cast<double>(o.trials),
                    o.total_ms / static_cast<double>(o.trials));
      }
    }
  }
  std::printf("\nExpected shape: near-perfect recovery at separation 8, "
              "degradation at 4; MC matches exact at a fraction of the "
              "cost for large n.\n");
  return 0;
}
