// Sorting and top-k selection over tables — the ORDER BY / LIMIT surface
// of the mini store, used by inspection panels ("show me the most
// profitable films in this region").
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "monet/selection.h"
#include "monet/table.h"

namespace blaeu::monet {

/// One sort key.
struct SortKey {
  std::string column;
  bool ascending = true;
};

/// Row ids of `rows` ordered by the sort keys (stable; NULLs sort last
/// regardless of direction; strings compare lexicographically, numerics
/// numerically). KeyError on unknown columns.
Result<SelectionVector> SortIndices(const Table& table,
                                    const SelectionVector& rows,
                                    const std::vector<SortKey>& keys);

/// Materializes `table` restricted to `rows`, ordered by `keys`.
Result<TablePtr> SortTable(const Table& table, const SelectionVector& rows,
                           const std::vector<SortKey>& keys);

/// The first `k` rows of the sorted order (ORDER BY ... LIMIT k) without
/// fully sorting: partial selection, O(n log k).
Result<SelectionVector> TopKIndices(const Table& table,
                                    const SelectionVector& rows,
                                    const std::vector<SortKey>& keys,
                                    size_t k);

}  // namespace blaeu::monet
