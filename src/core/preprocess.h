// Preprocessing stage of the mapping pipeline (Figure 3, first box):
// "Blaeu removes the primary keys, it normalizes the continuous variables,
// and it introduces dummy binary variables to represent the categorical
// data (each dummy variable corresponds to one category). The result of
// this operation is a set of vectors, where each vector represents a tuple
// in the database."
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "monet/selection.h"
#include "monet/table.h"
#include "stats/matrix.h"
#include "stats/normalize.h"

namespace blaeu::core {

struct PreprocessPlan;

/// How categorical columns enter the feature space.
enum class CategoricalEncoding {
  kDummy,   ///< one 0/1 feature per category (paper's choice)
  kGower,   ///< keep one code feature per column; use Gower distance
};

/// Preprocessing options.
struct PreprocessOptions {
  CategoricalEncoding encoding = CategoricalEncoding::kDummy;
  /// Drop detected primary-key columns.
  bool remove_primary_keys = true;
  /// z-score continuous features (false: min-max).
  bool zscore = true;
  /// Cap on dummy features per categorical column; rarer categories share
  /// an "other" feature. Keeps wide categorical columns from dominating.
  size_t max_categories = 12;
  /// Numeric columns with at most this many distinct values are treated as
  /// categorical.
  size_t categorical_distinct_threshold = 10;
  /// Thread budget for the per-column planning and per-row fill loops
  /// (common/parallel.h: 0 = process default, 1 = serial). The feature
  /// matrix is bit-identical at any value.
  size_t num_threads = 0;
  /// Test knob: route categorical planning and filling through the
  /// dictionary-code fast paths (default) or the generic string paths. The
  /// output is byte-identical either way — the flag exists so tests can
  /// assert exactly that. Not part of the map-options fingerprint
  /// (core/map_cache.cc FingerprintMapOptions): it cannot change any output.
  bool use_dictionary = true;

  // -- Reuse hooks (see core/map_cache.h for the correctness contract) --

  /// Bit-identical reuse: when non-null, planning trusts this list of
  /// primary-key column indices instead of re-running detection. Detection
  /// depends only on the table (never the selection), so a caller that
  /// computed it once for the same (table, columns) pair cannot change the
  /// output by passing it back in. Not owned; must outlive the call.
  const std::vector<size_t>* known_primary_keys = nullptr;

  /// Re-normalized reuse: when set, Preprocess() skips planning entirely
  /// and fills features with this plan. The plan's normalizers, category
  /// tables and type decisions were fit on the selection it was planned on,
  /// so the output is bit-identical to a cold run ONLY when that selection
  /// (and table) is the same; for a child selection (zoom) the features
  /// come out normalized by the parent's statistics instead.
  std::shared_ptr<const PreprocessPlan> reuse_plan;

  /// When non-null, receives the plan the run used (freshly planned or
  /// `reuse_plan`), so callers can cache it for future reuse.
  std::shared_ptr<const PreprocessPlan>* plan_out = nullptr;
};

/// \brief Description of one feature of the preprocessed matrix.
struct FeatureInfo {
  size_t source_column;      ///< index into the input table's schema
  std::string source_name;   ///< column name
  bool is_categorical;       ///< dummy or Gower-coded categorical
  std::string category;      ///< dummy features: which category ("" else)
};

/// \brief Output of preprocessing: the vectors plus bookkeeping.
struct PreprocessedData {
  stats::Matrix features;             ///< one row per selected tuple
  std::vector<FeatureInfo> feature_info;
  std::vector<uint32_t> rows;         ///< table row per matrix row
  std::vector<size_t> used_columns;   ///< table columns that contributed
  std::vector<size_t> dropped_keys;   ///< removed primary-key columns
  /// Per-feature categorical mask (for Gower).
  std::vector<bool> categorical_mask() const;
};

/// \brief One column's fitted preprocessing decisions.
struct ColumnPlan {
  size_t column = 0;        ///< index into the input table's schema
  bool categorical = false;
  std::vector<std::string> categories;  ///< dummy layout (kDummy only)
  stats::Normalizer normalizer = stats::Normalizer::ZScore({});
  std::unordered_map<std::string, int> code;  ///< kGower category codes
  double impute = 0.0;      ///< numeric NaN replacement (normalized mean)

  // -- Dictionary fast path (string columns, use_dictionary) --

  /// The dictionary `dict_ranks` was built against. FillFeatures takes the
  /// code-indexed path only when the column at fill time shares this exact
  /// dictionary (pointer identity) — otherwise codes would not be
  /// comparable and it falls back to the string path. Derived tables
  /// (Take/Project) share their source's dictionaries, so reuse across
  /// Zoom/Project keeps the fast path.
  monet::DictionaryPtr dict;
  /// Dictionary code -> rank in `categories` (-1 = not a kept category).
  /// Codes appended to the dictionary after planning index past the end and
  /// are treated as unranked.
  std::vector<int32_t> dict_ranks;
};

/// \brief The reusable product of the planning phase: everything Preprocess
/// derives from (table, selection, options) before touching the feature
/// matrix. Filling a matrix from a plan is a pure function of the plan and
/// the rows being filled.
struct PreprocessPlan {
  std::vector<ColumnPlan> columns;        ///< in schema order
  std::vector<FeatureInfo> feature_info;  ///< resulting feature layout
  std::vector<size_t> used_columns;
  std::vector<size_t> dropped_keys;
  CategoricalEncoding encoding = CategoricalEncoding::kDummy;

  size_t num_features() const { return feature_info.size(); }
  /// Rough heap footprint, for cache budgeting.
  size_t ApproxBytes() const;
};

/// Phase 1: fits per-column plans (type decision, category ranking,
/// normalizer, primary-key removal) over the rows in `sel`.
Result<PreprocessPlan> PlanPreprocess(const monet::Table& table,
                                      const monet::SelectionVector& sel,
                                      const PreprocessOptions& options = {});

/// Phase 2: fills one feature row per row of `sel` according to `plan`.
/// Bit-identical at any thread count.
Result<PreprocessedData> FillFeatures(const monet::Table& table,
                                      const monet::SelectionVector& sel,
                                      const PreprocessPlan& plan,
                                      size_t num_threads = 0);

/// Runs the preprocessing pipeline over the rows in `sel` (= PlanPreprocess
/// followed by FillFeatures, honouring the reuse hooks in `options`).
///
/// Missing values: with kDummy encoding, numeric NaNs are imputed at the
/// (normalized) mean and missing categoricals get all-zero dummies; with
/// kGower they stay NaN and the Gower metric skips them pairwise.
Result<PreprocessedData> Preprocess(const monet::Table& table,
                                    const monet::SelectionVector& sel,
                                    const PreprocessOptions& options = {});

}  // namespace blaeu::core
