// Lloyd's k-means with k-means++ seeding. Not used by Blaeu's pipeline
// itself (PAM is), but kept as the ablation baseline for
// bench_clara_vs_pam: it shows what the paper gave up (medoid
// interpretability, arbitrary metrics) and gained (accuracy on mixed data).
#pragma once

#include "common/rng.h"
#include "common/status.h"
#include "cluster/clustering.h"
#include "stats/matrix.h"

namespace blaeu::cluster {

/// k-means options.
struct KMeansOptions {
  size_t max_iterations = 100;
  /// Relative improvement in inertia below which iteration stops.
  double tolerance = 1e-6;
  uint64_t seed = 42;
};

/// \brief k-means output: labels plus centroids (and the nearest actual
/// point to each centroid in `medoids`, for API parity with PAM).
struct KMeansResult {
  ClusteringResult assignment;
  stats::Matrix centroids;  ///< k x dims
  double inertia = 0.0;     ///< sum of squared distances to centroids
};

/// Runs k-means on row-vectors of `data`. Invalid when k == 0 or k > rows.
Result<KMeansResult> KMeans(const stats::Matrix& data, size_t k,
                            const KMeansOptions& options = {});

}  // namespace blaeu::cluster
