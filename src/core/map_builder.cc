#include "core/map_builder.h"

#include <algorithm>

#include "cluster/agglomerative.h"
#include "cluster/clara.h"
#include "cluster/clustering.h"
#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "cluster/kselect.h"
#include "cluster/pam.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/timer.h"
#include "monet/sampling.h"
#include "stats/distance.h"
#include "stats/metrics.h"
#include "tree/rules.h"

namespace blaeu::core {

using monet::SelectionVector;
using monet::Table;
using monet::TablePtr;

namespace {

/// Distance function over preprocessed features: Euclidean for dummy
/// encoding, Gower for mixed/Gower encoding. Every evaluation — distance
/// matrix, CLARA assignment, Monte-Carlo silhouette — tallies into `evals`
/// (relaxed atomic: calls come from pool threads) for the map's
/// ResourceProfile.
struct FeatureMetric {
  const stats::Matrix* features;
  bool use_gower;
  stats::GowerDistance gower;
  std::atomic<int64_t>* evals = nullptr;

  double operator()(size_t i, size_t j) const {
    if (evals != nullptr) evals->fetch_add(1, std::memory_order_relaxed);
    if (use_gower) {
      return gower(features->RowPtr(i), features->RowPtr(j));
    }
    return stats::EuclideanDistance(features->RowPtr(i), features->RowPtr(j),
                                    features->cols());
  }
};

struct ClusterOutcome {
  cluster::ClusteringResult result;
  double silhouette = 0.0;
  std::string algorithm;
};

/// One candidate of a k sweep.
struct KSweepCandidate {
  Status status = Status::OK();
  cluster::ClusteringResult result;
  double score = -2.0;
};

/// Runs `run_k` once per k in [lo, hi] — one parallel task per k — and
/// picks the winner exactly as the serial ascending-k loop did: the first
/// error (in k order) propagates, and the lowest k whose score strictly
/// beats every smaller k wins.
Status SweepK(
    size_t lo, size_t hi, size_t num_threads,
    const std::function<Result<cluster::ClusteringResult>(size_t)>& run_k,
    const std::function<double(const cluster::ClusteringResult&)>& score_fn,
    ClusterOutcome* out) {
  const size_t count = hi - lo + 1;
  std::vector<KSweepCandidate> candidates(count);
  ParallelFor(
      0, count, 1,
      [&](size_t chunk_lo, size_t chunk_hi) {
        for (size_t i = chunk_lo; i < chunk_hi; ++i) {
          auto result = run_k(lo + i);
          if (!result.ok()) {
            candidates[i].status = result.status();
            continue;
          }
          candidates[i].result = std::move(result).ValueOrDie();
          candidates[i].score = score_fn(candidates[i].result);
        }
      },
      num_threads);
  double best = -2.0;
  size_t best_i = count;
  for (size_t i = 0; i < count; ++i) {
    if (!candidates[i].status.ok()) return candidates[i].status;
    if (candidates[i].score > best) {
      best = candidates[i].score;
      best_i = i;
    }
  }
  if (best_i < count) out->result = std::move(candidates[best_i].result);
  out->silhouette = best;
  return Status::OK();
}

Result<ClusterOutcome> RunClustering(const stats::Matrix& features,
                                     const FeatureMetric& metric,
                                     const MapOptions& options,
                                     obs::Tracer* tracer, obs::Span* span,
                                     obs::ScratchCounter* scratch) {
  const size_t n = features.rows();
  MapAlgorithm algo = options.algorithm;
  if (algo == MapAlgorithm::kAuto) {
    algo = n > options.clara_threshold ? MapAlgorithm::kClara
                                       : MapAlgorithm::kPam;
  }
  const size_t k_min = std::max<size_t>(2, options.k_min);
  const size_t k_max =
      std::min(options.k_max, n > 1 ? n - 1 : static_cast<size_t>(1));
  const bool use_mc = n > options.monte_carlo_threshold;
  stats::MonteCarloSilhouetteOptions mc;
  mc.num_subsamples = options.mc_subsamples;
  mc.subsample_size = options.mc_subsample_size;
  mc.seed = options.seed + 7;

  auto score = [&](const std::vector<int>& labels,
                   const stats::DistanceMatrix* dist) {
    if (!use_mc && dist != nullptr) {
      return stats::MeanSilhouette(*dist, labels);
    }
    return stats::MonteCarloSilhouette(
        n, labels, [&](size_t i, size_t j) { return metric(i, j); }, mc);
  };

  ClusterOutcome out;

  if (algo == MapAlgorithm::kClara) {
    out.algorithm = "clara";
    cluster::ClaraOptions clara;
    clara.seed = options.seed;
    auto dist_fn = [&](size_t i, size_t j) { return metric(i, j); };
    const size_t lo = options.fixed_k > 0 ? options.fixed_k : k_min;
    const size_t hi = options.fixed_k > 0 ? options.fixed_k : k_max;
    BLAEU_RETURN_NOT_OK(SweepK(
        lo, hi, options.num_threads,
        [&](size_t k) { return cluster::Clara(n, dist_fn, k, clara); },
        [&](const cluster::ClusteringResult& r) {
          return score(r.labels, nullptr);
        },
        &out));
    return out;
  }

  if (algo == MapAlgorithm::kKMeans) {
    out.algorithm = "kmeans";
    cluster::KMeansOptions km;
    km.seed = options.seed;
    const size_t lo = options.fixed_k > 0 ? options.fixed_k : k_min;
    const size_t hi = options.fixed_k > 0 ? options.fixed_k : k_max;
    BLAEU_RETURN_NOT_OK(SweepK(
        lo, hi, options.num_threads,
        [&](size_t k) -> Result<cluster::ClusteringResult> {
          BLAEU_ASSIGN_OR_RETURN(auto result,
                                 cluster::KMeans(features, k, km));
          return std::move(result.assignment);
        },
        [&](const cluster::ClusteringResult& r) {
          return score(r.labels, nullptr);
        },
        &out));
    return out;
  }

  // PAM / agglomerative / DBSCAN: need the full distance matrix. Rows are
  // independent, so it is built row-blocked on the pool; every (i, j) entry
  // is computed exactly once regardless of the thread count.
  stats::DistanceMatrix dist(n);
  obs::ScratchCharge dist_bytes(scratch, n * (n - 1) / 2 * sizeof(double));
  {
    obs::Span dist_span(tracer, "core.map.distance_matrix");
    ParallelFor(
        0, n, 16,
        [&](size_t row_lo, size_t row_hi) {
          for (size_t i = row_lo; i < row_hi; ++i) {
            for (size_t j = i + 1; j < n; ++j) dist.Set(i, j, metric(i, j));
          }
        },
        options.num_threads);
    dist_span.SetAttr("points", n);
    dist_span.SetAttr("pairs", n * (n - 1) / 2);
    dist_span.SetAttr("threads", EffectiveNumThreads(options.num_threads));
  }
  span->SetAttr("distance_matrix_points", n);
  if (algo == MapAlgorithm::kDbscan) {
    out.algorithm = "dbscan";
    // eps heuristic: 1.5x the median distance to the 5th nearest neighbor.
    const size_t kNeighbor = std::min<size_t>(5, n - 1);
    std::vector<double> knn(n);
    ParallelFor(
        0, n, 16,
        [&](size_t row_lo, size_t row_hi) {
          std::vector<double> row(n);
          for (size_t i = row_lo; i < row_hi; ++i) {
            for (size_t j = 0; j < n; ++j) row[j] = dist.At(i, j);
            std::nth_element(row.begin(), row.begin() + kNeighbor, row.end());
            knn[i] = row[kNeighbor];
          }
        },
        options.num_threads);
    std::nth_element(knn.begin(), knn.begin() + n / 2, knn.end());
    cluster::DbscanOptions db;
    db.eps = std::max(1e-9, 1.5 * knn[n / 2]);
    db.min_points = 5;
    BLAEU_ASSIGN_OR_RETURN(auto raw, cluster::Dbscan(dist, db));
    out.result = cluster::DbscanToClustering(raw, dist);
    out.silhouette = out.result.num_clusters() > 1
                         ? score(out.result.labels, &dist)
                         : 0.0;
    return out;
  }
  if (algo == MapAlgorithm::kAgglomerative) {
    out.algorithm = "agglomerative";
    const size_t lo = options.fixed_k > 0 ? options.fixed_k : k_min;
    const size_t hi = options.fixed_k > 0 ? options.fixed_k : k_max;
    BLAEU_RETURN_NOT_OK(SweepK(
        lo, hi, options.num_threads,
        [&](size_t k) {
          return cluster::AgglomerativeToK(dist, cluster::Linkage::kAverage,
                                           k);
        },
        [&](const cluster::ClusteringResult& r) {
          return score(r.labels, &dist);
        },
        &out));
    return out;
  }

  out.algorithm = "pam";
  if (options.fixed_k > 0) {
    BLAEU_ASSIGN_OR_RETURN(out.result, cluster::Pam(dist, options.fixed_k));
    out.silhouette = score(out.result.labels, &dist);
    return out;
  }
  cluster::KSelectOptions ks;
  ks.k_min = k_min;
  ks.k_max = k_max;
  ks.monte_carlo = use_mc;
  ks.mc_options = mc;
  ks.num_threads = options.num_threads;  // Pam is thread-safe
  BLAEU_ASSIGN_OR_RETURN(auto selected, cluster::SelectKWithPam(dist, ks));
  out.result = std::move(selected.best);
  out.silhouette = selected.best_score;
  return out;
}

/// Builds map regions from the CART tree: one region per tree node, with
/// edge predicates from the branch conditions.
void BuildRegions(const tree::CartModel& model, const tree::CartNode& node,
                  int parent_id, const monet::Conjunction& path,
                  DataMap* map) {
  MapRegion region;
  region.id = static_cast<int>(map->regions.size());
  region.parent = parent_id;
  region.predicate = path;
  if (parent_id >= 0) {
    map->regions[parent_id].children.push_back(region.id);
  }
  int id = region.id;
  if (node.is_leaf) {
    region.cluster_label = node.label;
    map->regions.push_back(std::move(region));
    return;
  }
  map->regions.push_back(std::move(region));
  monet::Condition left_cond = model.BranchCondition(node, true);
  monet::Condition right_cond = model.BranchCondition(node, false);
  {
    monet::Conjunction left_path = path;
    left_path.Add(left_cond);
    monet::Conjunction left_edge;
    left_edge.Add(left_cond);
    size_t child_pos = map->regions.size();
    BuildRegions(model, *node.left, id, left_path, map);
    map->regions[child_pos].edge = left_edge;
  }
  {
    monet::Conjunction right_path = path;
    right_path.Add(right_cond);
    monet::Conjunction right_edge;
    right_edge.Add(right_cond);
    size_t child_pos = map->regions.size();
    BuildRegions(model, *node.right, id, right_path, map);
    map->regions[child_pos].edge = right_edge;
  }
}

/// Builds the map and fills its ResourceProfile; the public BuildMap wraps
/// this with the flight-recorder events (success and error alike).
Result<DataMap> BuildMapImpl(const Table& table, const SelectionVector& sel,
                             const std::vector<std::string>& columns,
                             const MapOptions& options) {
  Timer timer;
  if (columns.empty()) return Status::Invalid("no active columns");
  if (sel.empty()) return Status::Invalid("empty selection");

  obs::Tracer* tracer =
      options.tracer != nullptr ? options.tracer : &obs::Tracer::Global();
  obs::MetricsRegistry* metrics = options.metrics != nullptr
                                      ? options.metrics
                                      : &obs::MetricsRegistry::Global();
  obs::Span build_span(tracer, "core.map.build");
  build_span.SetAttr("selection_rows", sel.size());
  build_span.SetAttr("columns", columns.size());
  const size_t threads = EffectiveNumThreads(options.num_threads);
  build_span.SetAttr("threads", threads);
  metrics->counter("core.map.builds")->Increment();
  ScopedTimer build_latency(metrics->histogram("core.map.build_seconds"));

  // Resource accounting for this one build (obs/resource.h): the profile
  // travels with the map and aggregates into the registry at the end.
  obs::ScratchCounter scratch;
  std::atomic<int64_t> dist_evals{0};
  obs::ResourceProfile res;
  auto finalize = [&](DataMap* m) {
    res.distance_evaluations = dist_evals.load(std::memory_order_relaxed);
    res.cart_nodes = static_cast<int64_t>(m->regions.size());
    res.peak_scratch_bytes = scratch.peak();
    m->build_seconds = timer.ElapsedSeconds();
    res.total_seconds = m->build_seconds;
    m->resources = res;
    res.ReportTo(metrics);
  };

  // The map-wide thread budget flows into every stage.
  PreprocessOptions pre_options = options.preprocess;
  pre_options.num_threads = options.num_threads;
  tree::CartOptions tree_options = options.tree;
  tree_options.num_threads = options.num_threads;

  BLAEU_ASSIGN_OR_RETURN(TablePtr view, table.ProjectNames(columns));

  // 1. Sample the selection (paper: a few thousand tuples per map).
  Rng rng(options.seed);
  SelectionVector sample = sel;
  {
    obs::Span span(tracer, "core.map.sample");
    Timer stage;
    if (options.sample_size > 0 && sel.size() > options.sample_size) {
      sample = monet::SampleFromSelection(sel, options.sample_size, &rng);
    }
    res.stages.push_back({"sample", stage.ElapsedSeconds()});
    span.SetAttr("rows_in", sel.size());
    span.SetAttr("rows_sampled", sample.size());
  }
  res.rows_scanned = static_cast<int64_t>(sample.size());

  // 2. Preprocess into vectors. A selection whose columns are all constant
  // (e.g. after zooming into a single-category region) yields a trivial
  // one-region map instead of an error: the user can still highlight,
  // inspect and roll back.
  Result<PreprocessedData> pre_or = [&]() -> Result<PreprocessedData> {
    obs::Span span(tracer, "core.map.preprocess");
    span.SetAttr("threads", threads);
    Timer stage;
    auto result = Preprocess(*view, sample, pre_options);
    res.stages.push_back({"preprocess", stage.ElapsedSeconds()});
    if (result.ok()) {
      span.SetAttr("feature_rows", result.ValueOrDie().features.rows());
      span.SetAttr("feature_cols", result.ValueOrDie().features.cols());
    }
    return result;
  }();
  DataMap map;
  map.active_columns = columns;
  map.total_tuples = sel.size();
  if (!pre_or.ok()) {
    MapRegion root;
    root.id = 0;
    root.tuple_count = sel.size();
    root.cluster_label = 0;
    map.regions.push_back(std::move(root));
    map.num_clusters = 1;
    map.sample_size = sample.size();
    map.algorithm = "trivial";
    finalize(&map);
    return map;
  }
  PreprocessedData pre = std::move(pre_or).ValueOrDie();
  map.sample_size = pre.features.rows();
  res.cells_materialized =
      static_cast<int64_t>(pre.features.rows() * pre.features.cols());
  // The feature matrix lives until the end of the build.
  scratch.Charge(pre.features.rows() * pre.features.cols() * sizeof(double));

  // Degenerate inputs (too few distinct tuples to split) yield a one-region
  // map rather than an error: the user can still highlight and inspect.
  if (pre.features.rows() < 4) {
    MapRegion root;
    root.id = 0;
    root.tuple_count = sel.size();
    root.cluster_label = 0;
    if (!pre.rows.empty()) {
      root.medoid_row = pre.rows[0];
      root.has_medoid = true;
    }
    map.regions.push_back(std::move(root));
    map.num_clusters = 1;
    map.algorithm = "trivial";
    finalize(&map);
    return map;
  }

  // 3. Cluster the vectors. Fitting the Gower metric is a full pass over
  // the feature matrix, so it only happens when Gower is actually in use.
  const bool use_gower =
      options.preprocess.encoding == CategoricalEncoding::kGower;
  FeatureMetric metric{
      &pre.features, use_gower,
      use_gower
          ? stats::GowerDistance::Fit(pre.features, pre.categorical_mask())
          : stats::GowerDistance({}, {}),
      &dist_evals};
  ClusterOutcome outcome;
  {
    obs::Span span(tracer, "core.map.cluster");
    span.SetAttr("threads", threads);
    Timer stage;
    BLAEU_ASSIGN_OR_RETURN(
        outcome, RunClustering(pre.features, metric, options, tracer, &span,
                               &scratch));
    res.stages.push_back({"cluster", stage.ElapsedSeconds()});
    span.SetAttr("algorithm", outcome.algorithm);
    span.SetAttr("k", outcome.result.num_clusters());
    span.SetAttr("silhouette", outcome.silhouette);
  }
  map.num_clusters = outcome.result.num_clusters();
  map.silhouette = outcome.silhouette;
  map.algorithm = outcome.algorithm;
  metrics->histogram("core.map.silhouette")->Observe(outcome.silhouette);

  // 4. Describe the clusters with a decision tree on the original columns.
  Result<tree::CartModel> model_or = [&]() -> Result<tree::CartModel> {
    obs::Span span(tracer, "core.map.describe");
    span.SetAttr("threads", threads);
    Timer stage;
    BLAEU_ASSIGN_OR_RETURN(
        tree::CartModel model,
        tree::CartModel::Train(*view, pre.rows, outcome.result.labels,
                               tree_options));
    map.tree_fidelity =
        model.Fidelity(*view, pre.rows, outcome.result.labels);
    res.stages.push_back({"describe", stage.ElapsedSeconds()});
    span.SetAttr("fidelity", map.tree_fidelity);
    return model;
  }();
  if (!model_or.ok()) return model_or.status();
  const tree::CartModel& model = *model_or;

  // 5. Assemble the region hierarchy from the tree.
  {
    obs::Span span(tracer, "core.map.assemble");
    Timer stage;
    BuildRegions(model, model.root(), -1, monet::Conjunction(), &map);
    res.stages.push_back({"assemble", stage.ElapsedSeconds()});
    span.SetAttr("regions", map.regions.size());
  }

  // 6. Tuple counts over the FULL selection, computed incrementally: a
  // region's predicate is its parent's predicate AND its edge, so each
  // region only applies its edge conjunction to the parent's row set —
  // O(rows) per tree level instead of O(depth * rows) per region — and the
  // regions of one level are counted in parallel (they read only their
  // parents' row sets and write disjoint slots).
  {
    obs::Span span(tracer, "core.map.count");
    span.SetAttr("threads", threads);
    Timer stage;
    size_t counted_bytes = 0;
    const size_t num_regions = map.regions.size();
    std::vector<int> region_depth(num_regions, 0);
    std::vector<std::vector<int>> levels;
    for (const MapRegion& region : map.regions) {  // pre-order: parents first
      int d = region.parent < 0 ? 0 : region_depth[region.parent] + 1;
      region_depth[region.id] = d;
      if (levels.size() <= static_cast<size_t>(d)) levels.resize(d + 1);
      levels[static_cast<size_t>(d)].push_back(region.id);
    }
    std::vector<SelectionVector> region_rows(num_regions);
    std::vector<Status> region_status(num_regions);
    for (int id : levels[0]) {  // the root summarizes the whole selection
      region_rows[id] = sel;
      map.regions[id].tuple_count = sel.size();
      counted_bytes += sel.size() * sizeof(uint32_t);
    }
    scratch.Charge(counted_bytes);
    for (size_t d = 1; d < levels.size(); ++d) {
      const std::vector<int>& level = levels[d];
      ParallelFor(
          0, level.size(), 1,
          [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i) {
              MapRegion& region = map.regions[level[i]];
              auto rows =
                  region.edge.EvaluateOn(*view, region_rows[region.parent]);
              if (!rows.ok()) {
                region_status[region.id] = rows.status();
                continue;
              }
              region_rows[region.id] = std::move(rows).ValueOrDie();
              region.tuple_count = region_rows[region.id].size();
            }
          },
          options.num_threads);
      size_t level_bytes = 0;
      for (int id : level) {
        BLAEU_RETURN_NOT_OK(region_status[id]);
        // Each region evaluated its edge over its parent's row set.
        res.rows_counted += static_cast<int64_t>(
            region_rows[map.regions[id].parent].size());
        level_bytes += region_rows[id].size() * sizeof(uint32_t);
      }
      scratch.Charge(level_bytes);
      counted_bytes += level_bytes;
    }
    scratch.Release(counted_bytes);  // region_rows dies with this block
    res.stages.push_back({"count", stage.ElapsedSeconds()});
    span.SetAttr("rows_counted", sel.size());
  }

  // 7. Attach cluster medoids to leaves.
  for (MapRegion& region : map.regions) {
    if (!region.is_leaf() || region.cluster_label < 0) continue;
    size_t c = static_cast<size_t>(region.cluster_label);
    if (c < outcome.result.medoids.size()) {
      region.medoid_row = pre.rows[outcome.result.medoids[c]];
      region.has_medoid = true;
    }
  }
  finalize(&map);
  return map;
}

}  // namespace

Result<DataMap> BuildMap(const Table& table, const SelectionVector& sel,
                         const std::vector<std::string>& columns,
                         const MapOptions& options) {
  Result<DataMap> result = BuildMapImpl(table, sel, columns, options);
  obs::FlightRecorder* flight = options.flight != nullptr
                                    ? options.flight
                                    : &obs::FlightRecorder::Global();
  if (!result.ok()) {
    flight->Record(obs::FlightEventKind::kError, "core.map.build",
                   {{"status", result.status().ToString()},
                    {"rows", std::to_string(sel.size())}});
    return result;
  }
  const DataMap& map = *result;
  flight->Record(
      obs::FlightEventKind::kMapBuilt, "core.map.build",
      {{"rows", std::to_string(map.total_tuples)},
       {"sample", std::to_string(map.sample_size)},
       {"k", std::to_string(map.num_clusters)},
       {"algorithm", map.algorithm},
       {"ms", std::to_string(map.build_seconds * 1e3)}});
  return result;
}

Result<DataMap> BuildMap(const Table& table, const MapOptions& options) {
  std::vector<std::string> columns;
  for (const auto& f : table.schema().fields()) columns.push_back(f.name);
  return BuildMap(table, SelectionVector::All(table.num_rows()), columns,
                  options);
}

}  // namespace blaeu::core
