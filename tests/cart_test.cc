// Unit tests for the CART decision tree (the map-description stage).
#include "tree/cart.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace blaeu::tree {
namespace {

using monet::DataType;
using monet::Schema;
using monet::TableBuilder;
using monet::TablePtr;
using monet::Value;

std::vector<uint32_t> AllRows(size_t n) {
  std::vector<uint32_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = static_cast<uint32_t>(i);
  return rows;
}

/// One numeric column; class 1 iff x > 10.
TablePtr ThresholdTable(size_t n, std::vector<int>* labels) {
  TableBuilder b(Schema({{"x", DataType::kDouble}}));
  Rng rng(1);
  labels->clear();
  for (size_t i = 0; i < n; ++i) {
    double x = rng.NextUniform(0.0, 20.0);
    EXPECT_TRUE(b.AppendRow({Value::Double(x)}).ok());
    labels->push_back(x > 10.0 ? 1 : 0);
  }
  return *b.Finish();
}

TEST(CartTest, LearnsSingleNumericThreshold) {
  std::vector<int> labels;
  TablePtr t = ThresholdTable(200, &labels);
  CartOptions opt;
  opt.max_thresholds = 0;  // consider every midpoint: exact split expected
  auto model = *CartModel::Train(*t, AllRows(200), labels, opt);
  EXPECT_EQ(model.Depth(), 1u);
  EXPECT_EQ(model.NumLeaves(), 2u);
  EXPECT_DOUBLE_EQ(model.Fidelity(*t, AllRows(200), labels), 1.0);
  // The learned threshold is near 10.
  EXPECT_FALSE(model.root().is_leaf);
  EXPECT_NEAR(model.root().threshold, 10.0, 0.5);
}

TEST(CartTest, LearnsCategoricalSplit) {
  TableBuilder b(Schema({{"genre", DataType::kString}}));
  std::vector<int> labels;
  const char* genres[] = {"Action", "Drama", "Comedy", "Horror"};
  Rng rng(2);
  for (size_t i = 0; i < 200; ++i) {
    const char* g = genres[rng.NextBounded(4)];
    ASSERT_TRUE(b.AppendRow({Value::Str(g)}).ok());
    // Class 1 for Action/Horror.
    labels.push_back(
        (std::string(g) == "Action" || std::string(g) == "Horror") ? 1 : 0);
  }
  TablePtr t = *b.Finish();
  auto model = *CartModel::Train(*t, AllRows(200), labels);
  EXPECT_DOUBLE_EQ(model.Fidelity(*t, AllRows(200), labels), 1.0);
  EXPECT_TRUE(model.root().categorical_split);
}

TEST(CartTest, TwoLevelInteraction) {
  // Class depends on both columns: x <= 5 -> 0; x > 5 & y <= 3 -> 1; else 2.
  TableBuilder b(Schema({{"x", DataType::kDouble}, {"y", DataType::kDouble}}));
  std::vector<int> labels;
  Rng rng(3);
  for (size_t i = 0; i < 400; ++i) {
    double x = rng.NextUniform(0, 10), y = rng.NextUniform(0, 6);
    ASSERT_TRUE(b.AppendRow({Value::Double(x), Value::Double(y)}).ok());
    labels.push_back(x <= 5 ? 0 : (y <= 3 ? 1 : 2));
  }
  TablePtr t = *b.Finish();
  CartOptions opt;
  opt.max_depth = 3;
  auto model = *CartModel::Train(*t, AllRows(400), labels, opt);
  EXPECT_GT(model.Fidelity(*t, AllRows(400), labels), 0.97);
  EXPECT_GE(model.NumLeaves(), 3u);
}

TEST(CartTest, MaxDepthRespected) {
  std::vector<int> labels;
  TablePtr t = ThresholdTable(300, &labels);
  // Noisy labels force deep trees unless capped.
  Rng rng(4);
  for (auto& l : labels) {
    if (rng.NextBernoulli(0.3)) l = 1 - l;
  }
  CartOptions opt;
  opt.max_depth = 2;
  opt.min_samples_leaf = 1;
  opt.min_samples_split = 2;
  auto model = *CartModel::Train(*t, AllRows(300), labels, opt);
  EXPECT_LE(model.Depth(), 2u);
  EXPECT_LE(model.NumLeaves(), 4u);
}

TEST(CartTest, MinSamplesLeafRespected) {
  std::vector<int> labels;
  TablePtr t = ThresholdTable(100, &labels);
  CartOptions opt;
  opt.min_samples_leaf = 30;
  auto model = *CartModel::Train(*t, AllRows(100), labels, opt);
  // Count training rows at each leaf via prediction counts.
  std::function<void(const CartNode&)> check = [&](const CartNode& node) {
    if (node.is_leaf) {
      EXPECT_GE(node.count, 30u);
      return;
    }
    check(*node.left);
    check(*node.right);
  };
  check(model.root());
}

TEST(CartTest, PureNodeStopsEarly) {
  TableBuilder b(Schema({{"x", DataType::kDouble}}));
  std::vector<int> labels(50, 0);  // single class
  for (size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(b.AppendRow({Value::Double(static_cast<double>(i))}).ok());
  }
  TablePtr t = *b.Finish();
  auto model = *CartModel::Train(*t, AllRows(50), labels);
  EXPECT_TRUE(model.root().is_leaf);
  EXPECT_EQ(model.Predict(*t, 0), 0);
}

TEST(CartTest, NullsRoutedConsistently) {
  TableBuilder b(Schema({{"x", DataType::kDouble}}));
  std::vector<int> labels;
  for (size_t i = 0; i < 60; ++i) {
    if (i % 6 == 0) {
      ASSERT_TRUE(b.AppendRow({Value::Null()}).ok());
      labels.push_back(0);  // nulls share the low class
    } else {
      double x = static_cast<double>(i % 20);
      ASSERT_TRUE(b.AppendRow({Value::Double(x)}).ok());
      labels.push_back(x > 10 ? 1 : 0);
    }
  }
  TablePtr t = *b.Finish();
  auto model = *CartModel::Train(*t, AllRows(60), labels);
  // Nulls must land in some leaf (no crash) and predictions are stable.
  int p = model.Predict(*t, 0);
  EXPECT_EQ(p, model.Predict(*t, 6));
}

TEST(CartTest, ClassFractionsSumToOne) {
  std::vector<int> labels;
  TablePtr t = ThresholdTable(150, &labels);
  auto model = *CartModel::Train(*t, AllRows(150), labels);
  double sum = 0;
  for (double f : model.root().class_fractions) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(CartTest, BranchConditionsMatchSplit) {
  std::vector<int> labels;
  TablePtr t = ThresholdTable(200, &labels);
  auto model = *CartModel::Train(*t, AllRows(200), labels);
  ASSERT_FALSE(model.root().is_leaf);
  monet::Condition left = model.BranchCondition(model.root(), true);
  monet::Condition right = model.BranchCondition(model.root(), false);
  EXPECT_EQ(left.op, monet::CompareOp::kLe);
  EXPECT_EQ(right.op, monet::CompareOp::kGt);
  EXPECT_EQ(left.column, "x");
  // Every row satisfies exactly one branch (no nulls here).
  for (uint32_t r = 0; r < 50; ++r) {
    bool l = left.Matches(*t->column(0), r);
    bool rr = right.Matches(*t->column(0), r);
    EXPECT_NE(l, rr);
  }
}

TEST(CartTest, EntropyCriterionAlsoWorks) {
  std::vector<int> labels;
  TablePtr t = ThresholdTable(200, &labels);
  CartOptions opt;
  opt.criterion = SplitCriterion::kEntropy;
  opt.max_thresholds = 0;
  auto model = *CartModel::Train(*t, AllRows(200), labels, opt);
  EXPECT_DOUBLE_EQ(model.Fidelity(*t, AllRows(200), labels), 1.0);
}

TEST(CartTest, CcpPruningCollapsesNoiseSplits) {
  // Labels are mostly class 0 with 15% noise: an unpruned deep tree chases
  // the noise, a pruned one collapses to few leaves at similar fidelity.
  TableBuilder b(Schema({{"x", DataType::kDouble}}));
  std::vector<int> labels;
  Rng rng(9);
  for (size_t i = 0; i < 400; ++i) {
    double x = rng.NextUniform(0, 20);
    ASSERT_TRUE(b.AppendRow({Value::Double(x)}).ok());
    int label = x > 10 ? 1 : 0;
    if (rng.NextBernoulli(0.15)) label = 1 - label;
    labels.push_back(label);
  }
  TablePtr t = *b.Finish();
  CartOptions deep;
  deep.max_depth = 8;
  deep.min_samples_leaf = 2;
  deep.min_samples_split = 4;
  auto unpruned = *CartModel::Train(*t, AllRows(400), labels, deep);
  CartOptions pruned_opt = deep;
  pruned_opt.ccp_alpha = 0.01;
  auto pruned = *CartModel::Train(*t, AllRows(400), labels, pruned_opt);
  EXPECT_LT(pruned.NumLeaves(), unpruned.NumLeaves());
  EXPECT_GE(pruned.NumLeaves(), 2u);  // the real split survives
  // Pruning costs little training fidelity on this noise level.
  EXPECT_GT(pruned.Fidelity(*t, AllRows(400), labels), 0.8);
}

TEST(CartTest, HugeAlphaPrunesToRoot) {
  std::vector<int> labels;
  TablePtr t = ThresholdTable(200, &labels);
  CartOptions opt;
  opt.ccp_alpha = 1.0;  // prune everything
  auto model = *CartModel::Train(*t, AllRows(200), labels, opt);
  EXPECT_TRUE(model.root().is_leaf);
}

TEST(CartTest, ZeroAlphaKeepsTreeIntact) {
  std::vector<int> labels;
  TablePtr t = ThresholdTable(200, &labels);
  CartOptions base;
  base.max_thresholds = 0;
  auto a = *CartModel::Train(*t, AllRows(200), labels, base);
  CartOptions with_zero = base;
  with_zero.ccp_alpha = 0.0;
  auto b2 = *CartModel::Train(*t, AllRows(200), labels, with_zero);
  EXPECT_EQ(a.NumLeaves(), b2.NumLeaves());
  EXPECT_EQ(a.Depth(), b2.Depth());
}

TEST(CartTest, InvalidInputsRejected) {
  std::vector<int> labels;
  TablePtr t = ThresholdTable(10, &labels);
  EXPECT_FALSE(CartModel::Train(*t, {}, {}).ok());
  EXPECT_FALSE(CartModel::Train(*t, AllRows(10), {0, 1}).ok());
  std::vector<int> negative(10, -1);
  EXPECT_FALSE(CartModel::Train(*t, AllRows(10), negative).ok());
}

TEST(CartTest, FeatureImportancesIdentifySplitColumn) {
  // Two columns, only x carries signal.
  TableBuilder b(Schema({{"x", DataType::kDouble}, {"noise", DataType::kDouble}}));
  std::vector<int> labels;
  Rng rng(12);
  for (size_t i = 0; i < 300; ++i) {
    double x = rng.NextUniform(0, 10);
    ASSERT_TRUE(b.AppendRow({Value::Double(x),
                             Value::Double(rng.NextGaussian())})
                    .ok());
    labels.push_back(x > 5 ? 1 : 0);
  }
  TablePtr t = *b.Finish();
  auto model = *CartModel::Train(*t, AllRows(300), labels);
  std::vector<double> importance = model.FeatureImportances();
  ASSERT_EQ(importance.size(), 2u);
  EXPECT_GT(importance[0], 0.9);
  EXPECT_NEAR(importance[0] + importance[1], 1.0, 1e-9);
}

TEST(CartTest, SingleLeafTreeHasZeroImportances) {
  TableBuilder b(Schema({{"x", DataType::kDouble}}));
  std::vector<int> labels(20, 0);
  for (size_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(b.AppendRow({Value::Double(1.0)}).ok());
  }
  TablePtr t = *b.Finish();
  auto model = *CartModel::Train(*t, AllRows(20), labels);
  for (double v : model.FeatureImportances()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(CartTest, ToStringShowsSplits) {
  std::vector<int> labels;
  TablePtr t = ThresholdTable(200, &labels);
  auto model = *CartModel::Train(*t, AllRows(200), labels);
  std::string text = model.ToString();
  EXPECT_NE(text.find("if x <="), std::string::npos);
  EXPECT_NE(text.find("class"), std::string::npos);
}

}  // namespace
}  // namespace blaeu::tree
