// Experiment F1a / F2 / ablation: theme detection.
//
// (1) Latency of the dependency matrix + graph partitioning as the column
//     count grows (the OECD table has 378 columns; "Blaeu must cluster
//     millions of tuples on hundreds of columns at interaction time").
// (2) Ablation (DESIGN.md §5): mutual information vs |Pearson| as the
//     dependency measure, on linear and non-linear column groups — the
//     paper chose MI because it "is sensitive to non-linear relationships".
// (3) Emits the Figure 2 dependency graph (DOT) for the OECD subset.

#include <cstdio>
#include <fstream>

#include "common/timer.h"
#include "core/render.h"
#include "core/theme.h"
#include "monet/table.h"
#include "stats/metrics.h"
#include "workloads/oecd.h"

using namespace blaeu;

namespace {

/// NMI between detected column themes and planted ones.
double ThemeRecovery(const core::ThemeSet& themes,
                     const workloads::Dataset& data) {
  std::vector<int> detected, truth;
  for (const core::Theme& t : themes.themes) {
    for (size_t col : t.columns) {
      detected.push_back(t.id);
      truth.push_back(data.truth.column_themes[col]);
    }
  }
  return stats::ClusteringNMI(detected, truth);
}

void LatencySweep() {
  std::printf("== F1a: theme detection latency vs #columns "
              "(6823 rows, MI on 2000 sampled rows) ==\n");
  std::printf("%10s %12s %12s %10s %12s\n", "columns", "dep_ms",
              "partition_ms", "themes", "recovery_nmi");
  for (size_t cols : {25, 50, 100, 200, 375}) {
    workloads::OecdSpec spec;
    spec.indicator_columns = cols;
    auto data = workloads::MakeOecd(spec);

    core::ThemeOptions opt;
    opt.dependency.sample_rows = 2000;
    opt.max_themes = 12;

    // Time the dependency matrix alone, then the full detection.
    Timer t1;
    auto dep = stats::DependencyMatrix(*data.table, opt.dependency);
    double dep_ms = t1.ElapsedMillis();
    if (!dep.ok()) continue;

    Timer t2;
    auto themes = core::DetectThemes(*data.table, opt);
    double total_ms = t2.ElapsedMillis();
    if (!themes.ok()) continue;
    std::printf("%10zu %12.1f %12.1f %10zu %12.3f\n", cols + 3, dep_ms,
                total_ms - dep_ms < 0 ? 0.0 : total_ms - dep_ms,
                themes->size(), ThemeRecovery(*themes, data));
  }
  std::printf("\n");
}

void MeasureAblation() {
  std::printf("== Ablation: dependency measure (paper chose MI for mixed "
              "data + non-linear relationships) ==\n");
  std::printf("%12s %22s %14s %14s\n", "indicators", "measure",
              "recovery_nmi", "latency_ms");
  struct Case {
    const char* name;
    stats::DependencyMeasure measure;
  } cases[] = {
      {"mutual_information", stats::DependencyMeasure::kMutualInformation},
      {"abs_pearson", stats::DependencyMeasure::kAbsPearson},
      {"abs_spearman", stats::DependencyMeasure::kAbsSpearman},
  };
  for (double nonlinear : {0.0, 0.6}) {
    workloads::OecdSpec spec;
    spec.rows = 4000;
    spec.indicator_columns = 80;
    spec.nonlinear_fraction = nonlinear;
    auto data = workloads::MakeOecd(spec);
    for (const Case& c : cases) {
      core::ThemeOptions opt;
      opt.dependency.measure = c.measure;
      opt.dependency.sample_rows = 2000;
      opt.max_themes = 12;
      Timer timer;
      auto themes = core::DetectThemes(*data.table, opt);
      double ms = timer.ElapsedMillis();
      if (!themes.ok()) continue;
      std::printf("%12s %22s %14.3f %14.1f\n",
                  nonlinear == 0.0 ? "linear" : "60% nonlin", c.name,
                  ThemeRecovery(*themes, data), ms);
    }
  }
  std::printf("\n");
}

void EmitFigure2() {
  workloads::OecdSpec spec;
  spec.rows = 3000;
  spec.indicator_columns = 9;  // just the named Figure 2 columns
  auto data = workloads::MakeOecd(spec);
  core::ThemeOptions opt;
  opt.max_themes = 6;
  auto themes = core::DetectThemes(*data.table, opt);
  if (!themes.ok()) return;
  const char* path = "/tmp/blaeu_figure2_dependency.dot";
  std::ofstream out(path);
  out << core::DependencyGraphToDot(*themes, 0.2);
  std::printf("== F2: dependency graph over the Figure 2 columns ==\n");
  std::printf("vertices=%zu strong_edges=%zu dot=%s\n",
              themes->graph.num_vertices(), themes->graph.CountEdges(0.2),
              path);
  // Also print the within/between structure the figure shows.
  for (const core::Theme& t : themes->themes) {
    std::printf("  theme %d (cohesion %.2f): %s\n", t.id, t.cohesion,
                t.Label(6).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Blaeu bench: theme detection (F1a, F2, measure ablation)\n\n");
  LatencySweep();
  MeasureAblation();
  EmitFigure2();
  return 0;
}
