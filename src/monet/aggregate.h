// Group-by aggregation over tables. Backs the highlight action's per-region
// summaries and gives the store a minimal analytical surface (the kind of
// query MonetDB would run for Blaeu's inspection panels).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "monet/selection.h"
#include "monet/table.h"

namespace blaeu::monet {

/// Aggregate functions.
enum class AggFn {
  kCount,  ///< non-null count of the target (or row count if target empty)
  kSum,
  kMean,
  kMin,
  kMax,
  kCountDistinct,
};

/// SQL spelling ("COUNT", "SUM", ...).
const char* AggFnName(AggFn fn);

/// One aggregate to compute.
struct AggSpec {
  AggFn fn = AggFn::kCount;
  /// Target column; may be empty for kCount (counts rows).
  std::string column;
  /// Output column name; defaults to "fn_column" when empty.
  std::string as;

  std::string OutputName() const;
};

/// \brief GROUP BY <keys> with a list of aggregates, over selected rows.
///
/// Groups appear in order of first occurrence. Numeric aggregates on
/// string columns fail with TypeError (except count / count-distinct).
/// NULL key values group together under NULL.
Result<TablePtr> GroupBy(const Table& table, const SelectionVector& rows,
                         const std::vector<std::string>& keys,
                         const std::vector<AggSpec>& aggs);

/// GroupBy over all rows.
Result<TablePtr> GroupBy(const Table& table,
                         const std::vector<std::string>& keys,
                         const std::vector<AggSpec>& aggs);

}  // namespace blaeu::monet
