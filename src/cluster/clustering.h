// Shared clustering result type and distance-oracle aliases.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace blaeu::cluster {

/// Distance between two points identified by index.
using RowDistanceFn = std::function<double(size_t, size_t)>;

/// \brief Output of a partitional clustering run.
struct ClusteringResult {
  /// Cluster id per point, in [0, k).
  std::vector<int> labels;
  /// Representative point per cluster (medoid index for PAM/CLARA; the
  /// nearest point to the centroid for k-means).
  std::vector<size_t> medoids;
  /// Objective value: sum over points of distance to their representative.
  double total_cost = 0.0;
  /// Realized number of clusters.
  size_t num_clusters() const { return medoids.size(); }
};

/// Sizes of each cluster in `labels` (k inferred as max label + 1).
std::vector<size_t> ClusterSizes(const std::vector<int>& labels);

}  // namespace blaeu::cluster
