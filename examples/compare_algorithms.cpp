// Compare map-detection algorithms side by side.
//
// The paper argues the pipeline's strength is decoupling cluster
// *detection* from cluster *description*: "we can use arbitrarily
// sophisticated cluster detection algorithms" while "Blaeu's results are
// always interpretable" (§3). This example builds the same map with PAM,
// CLARA, k-means, average-linkage and DBSCAN, and reports clusters,
// silhouette, tree fidelity, latency and accuracy vs planted truth.
//
// Run:  ./compare_algorithms [rows]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "core/map_builder.h"
#include "core/render.h"
#include "stats/metrics.h"
#include "workloads/gaussian.h"

using namespace blaeu;

int main(int argc, char** argv) {
  size_t rows = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 2000;
  workloads::MixtureSpec spec;
  spec.rows = rows;
  spec.num_clusters = 4;
  spec.dims = 5;
  spec.separation = 7.0;
  spec.with_categorical = true;
  auto data = workloads::MakeGaussianMixture(spec);
  std::printf("Mixture: %zu rows, 4 planted clusters, 5 numeric + 1 "
              "categorical column\n\n",
              rows);
  std::printf("%16s %9s %11s %10s %11s %12s\n", "algorithm", "clusters",
              "silhouette", "fidelity", "latency_ms", "ari_vs_truth");

  struct Case {
    const char* name;
    core::MapAlgorithm algo;
  } cases[] = {
      {"pam", core::MapAlgorithm::kPam},
      {"clara", core::MapAlgorithm::kClara},
      {"kmeans", core::MapAlgorithm::kKMeans},
      {"agglomerative", core::MapAlgorithm::kAgglomerative},
      {"dbscan", core::MapAlgorithm::kDbscan},
  };
  core::DataMap last_map;
  for (const Case& c : cases) {
    core::MapOptions opt;
    opt.algorithm = c.algo;
    opt.sample_size = 1500;
    opt.k_min = 2;
    opt.k_max = 6;
    Timer timer;
    auto map = core::BuildMap(*data.table, opt);
    double ms = timer.ElapsedMillis();
    if (!map.ok()) {
      std::printf("%16s failed: %s\n", c.name,
                  map.status().ToString().c_str());
      continue;
    }
    // Leaf partition vs planted truth.
    std::vector<int> partition(rows, -1);
    for (int leaf : map->LeafIds()) {
      auto sel = map->region(leaf).predicate.Evaluate(*data.table);
      if (!sel.ok()) continue;
      for (uint32_t r : sel->rows()) {
        partition[r] = map->region(leaf).cluster_label;
      }
    }
    std::printf("%16s %9zu %11.3f %10.3f %11.1f %12.3f\n", c.name,
                map->num_clusters, map->silhouette, map->tree_fidelity, ms,
                stats::AdjustedRandIndex(partition,
                                         data.truth.row_clusters));
    last_map = std::move(map).ValueOrDie();
  }
  std::printf("\nEvery algorithm flows through the same CART description, "
              "so the map stays interpretable regardless of the detector:\n\n%s",
              core::RenderMap(last_map).c_str());
  return 0;
}
