// Unit tests for Schema, Table and TableBuilder.
#include "monet/table.h"

#include <gtest/gtest.h>

namespace blaeu::monet {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"score", DataType::kDouble}});
}

Result<TablePtr> TestTable() {
  TableBuilder b(TestSchema());
  EXPECT_TRUE(
      b.AppendRow({Value::Int(1), Value::Str("a"), Value::Double(1.5)}).ok());
  EXPECT_TRUE(
      b.AppendRow({Value::Int(2), Value::Str("b"), Value::Null()}).ok());
  EXPECT_TRUE(
      b.AppendRow({Value::Int(3), Value::Str("c"), Value::Double(3.5)}).ok());
  return b.Finish();
}

TEST(SchemaTest, LookupByName) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_fields(), 3u);
  EXPECT_EQ(*s.FieldIndex("name"), 1u);
  EXPECT_FALSE(s.FieldIndex("missing").has_value());
  auto r = s.RequireFieldIndex("missing");
  EXPECT_EQ(r.status().code(), StatusCode::kKeyError);
}

TEST(SchemaTest, SelectReorders) {
  Schema s = TestSchema().Select({2, 0});
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(s.field(0).name, "score");
  EXPECT_EQ(s.field(1).name, "id");
}

TEST(SchemaTest, ToStringListsFields) {
  EXPECT_EQ(TestSchema().ToString(), "id:int64, name:string, score:double");
}

TEST(TableTest, BuildAndAccess) {
  auto table = *TestTable();
  EXPECT_EQ(table->num_rows(), 3u);
  EXPECT_EQ(table->num_columns(), 3u);
  EXPECT_EQ(table->GetValue(1, 1).AsString(), "b");
  EXPECT_TRUE(table->GetValue(1, 2).is_null());
  std::vector<Value> row = table->Row(0);
  EXPECT_EQ(row[0].AsInt(), 1);
}

TEST(TableTest, BuilderRejectsWrongArity) {
  TableBuilder b(TestSchema());
  Status s = b.AppendRow({Value::Int(1)});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, MakeValidatesColumns) {
  auto bad_type = Table::Make(
      TestSchema(), {std::make_shared<Column>(DataType::kString),
                     std::make_shared<Column>(DataType::kString),
                     std::make_shared<Column>(DataType::kDouble)});
  EXPECT_EQ(bad_type.status().code(), StatusCode::kTypeError);

  auto c1 = std::make_shared<Column>(DataType::kInt64);
  c1->AppendInt(1);
  auto ragged = Table::Make(
      Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}),
      {c1, std::make_shared<Column>(DataType::kInt64)});
  EXPECT_EQ(ragged.status().code(), StatusCode::kInvalidArgument);

  auto count = Table::Make(TestSchema(), {});
  EXPECT_EQ(count.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, TakeMaterializesSubset) {
  auto table = *TestTable();
  TablePtr taken = table->Take({2, 0});
  EXPECT_EQ(taken->num_rows(), 2u);
  EXPECT_EQ(taken->GetValue(0, 0).AsInt(), 3);
  EXPECT_EQ(taken->GetValue(1, 0).AsInt(), 1);
}

TEST(TableTest, ProjectSharesColumns) {
  auto table = *TestTable();
  TablePtr proj = table->Project({1});
  EXPECT_EQ(proj->num_columns(), 1u);
  EXPECT_EQ(proj->schema().field(0).name, "name");
  // Columns are shared, not copied.
  EXPECT_EQ(proj->column(0).get(), table->column(1).get());
}

TEST(TableTest, ProjectNames) {
  auto table = *TestTable();
  auto proj = table->ProjectNames({"score", "id"});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ((*proj)->schema().field(0).name, "score");
  auto missing = table->ProjectNames({"nope"});
  EXPECT_EQ(missing.status().code(), StatusCode::kKeyError);
}

TEST(TableTest, ColumnByName) {
  auto table = *TestTable();
  auto col = table->ColumnByName("name");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->type(), DataType::kString);
  EXPECT_EQ(table->ColumnByName("zz").status().code(), StatusCode::kKeyError);
}

TEST(TableTest, ToStringShowsHeaderAndRows) {
  auto table = *TestTable();
  std::string text = table->ToString(2);
  EXPECT_NE(text.find("id"), std::string::npos);
  EXPECT_NE(text.find("NULL"), std::string::npos);
  EXPECT_NE(text.find("more rows"), std::string::npos);
}

TEST(TableTest, BuilderReusableAfterFinish) {
  TableBuilder b(TestSchema());
  ASSERT_TRUE(
      b.AppendRow({Value::Int(1), Value::Str("a"), Value::Double(0.0)}).ok());
  auto t1 = b.Finish();
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ((*t1)->num_rows(), 1u);
  // Builder is reset; a second table can be built.
  ASSERT_TRUE(
      b.AppendRow({Value::Int(9), Value::Str("z"), Value::Double(9.9)}).ok());
  auto t2 = b.Finish();
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ((*t2)->num_rows(), 1u);
  EXPECT_EQ((*t2)->GetValue(0, 0).AsInt(), 9);
}

}  // namespace
}  // namespace blaeu::monet
