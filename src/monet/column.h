// Nullable typed columns: the unit of storage of the mini column store.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "monet/dictionary.h"
#include "monet/type.h"

namespace blaeu::monet {

/// \brief A single nullable column with a contiguous typed payload.
///
/// Storage is column-major as in MonetDB: one dense vector per column plus a
/// validity byte-vector (1 = present). Bulk algorithms read the typed
/// vectors directly; Value-based access exists for row assembly and display.
///
/// String columns are dictionary-encoded: the payload is a dense int32 code
/// vector (`codes()`, kNullCode for NULL cells) plus a shared append-ordered
/// `Dictionary`. Appends intern; Take shares the source dictionary, so codes
/// stay comparable across gathered columns. Hot loops compare/count codes
/// and only render strings via `StringAt` / the dictionary at the edges.
class Column {
 public:
  /// Creates an empty column of the given type.
  explicit Column(DataType type);

  DataType type() const { return type_; }
  size_t size() const { return validity_.size(); }
  bool empty() const { return validity_.empty(); }

  /// Number of NULL entries.
  size_t null_count() const { return null_count_; }
  bool IsNull(size_t row) const { return validity_[row] == 0; }

  /// Appends a typed non-null value. The overload must match type().
  void AppendDouble(double v);
  void AppendInt(int64_t v);
  void AppendString(std::string v);
  void AppendBool(bool v);
  /// Appends a NULL.
  void AppendNull();
  /// Appends any Value; returns TypeError on mismatch.
  Status AppendValue(const Value& v);

  /// Value at `row` (NULL-aware). Not bounds-checked in release builds.
  Value GetValue(size_t row) const;

  /// Numeric view of a non-null cell: doubles as-is, ints widened, bools as
  /// 0/1. Asserts on string columns.
  double GetNumeric(size_t row) const;

  /// Typed payload accessors. Only valid for the matching type().
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<uint8_t>& bools() const { return bools_; }
  const std::vector<uint8_t>& validity() const { return validity_; }

  /// String columns: the dictionary-code payload (Dictionary::kNullCode for
  /// NULL cells) and the shared dictionary. dictionary() is non-null for
  /// every string column.
  const std::vector<int32_t>& codes() const { return codes_; }
  const DictionaryPtr& dictionary() const { return dict_; }

  /// String cell by reference, without materializing a copy. Returns an
  /// empty string for NULL cells. Only valid for string columns.
  const std::string& StringAt(size_t row) const;

  /// New column holding rows at `indices` (duplicates allowed) — the
  /// positional gather used by filters and samples.
  Column Take(const std::vector<uint32_t>& indices) const;

  void Reserve(size_t n);

 private:
  DataType type_;
  std::vector<uint8_t> validity_;
  size_t null_count_ = 0;
  // Exactly one payload vector is populated, chosen by type_. Strings live
  // in dict_; codes_ is their dense per-row payload.
  std::vector<double> doubles_;
  std::vector<int64_t> ints_;
  std::vector<int32_t> codes_;
  std::vector<uint8_t> bools_;
  DictionaryPtr dict_;
};

using ColumnPtr = std::shared_ptr<Column>;

}  // namespace blaeu::monet
