// Unit tests for CLARA, the sampling-based PAM used on large selections.
#include "cluster/clara.h"

#include <gtest/gtest.h>

#include "cluster/pam.h"
#include "common/rng.h"
#include "stats/distance.h"
#include "stats/metrics.h"

namespace blaeu::cluster {
namespace {

using stats::Matrix;

Matrix Blobs(size_t k, size_t per, double gap, uint64_t seed,
             std::vector<int>* truth) {
  Rng rng(seed);
  Matrix data(k * per, 2);
  truth->clear();
  for (size_t c = 0; c < k; ++c) {
    for (size_t i = 0; i < per; ++i) {
      size_t row = c * per + i;
      data.At(row, 0) = rng.NextGaussian(gap * static_cast<double>(c), 0.5);
      data.At(row, 1) = rng.NextGaussian(0.0, 0.5);
      truth->push_back(static_cast<int>(c));
    }
  }
  return data;
}

RowDistanceFn Euclid(const Matrix& data) {
  return [&data](size_t i, size_t j) {
    return stats::EuclideanDistance(data.RowPtr(i), data.RowPtr(j),
                                    data.cols());
  };
}

TEST(ClaraTest, RecoversPlantedClustersAtScale) {
  std::vector<int> truth;
  Matrix data = Blobs(4, 2500, 12.0, 1, &truth);  // 10k points
  ClaraOptions opt;
  opt.seed = 3;
  auto result = *Clara(data.rows(), Euclid(data), 4, opt);
  EXPECT_EQ(result.num_clusters(), 4u);
  EXPECT_GT(stats::AdjustedRandIndex(result.labels, truth), 0.97);
}

TEST(ClaraTest, CostCloseToExactPamOnModerateInput) {
  std::vector<int> truth;
  Matrix data = Blobs(3, 80, 8.0, 2, &truth);  // 240 points: PAM feasible
  stats::DistanceMatrix dist = stats::DistanceMatrix::Euclidean(data);
  auto exact = *Pam(dist, 3);
  ClaraOptions opt;
  opt.num_samples = 5;
  auto approx = *Clara(data.rows(), Euclid(data), 3, opt);
  EXPECT_LE(approx.total_cost, exact.total_cost * 1.10);  // within 10%
}

TEST(ClaraTest, EveryPointAssignedToNearestMedoid) {
  std::vector<int> truth;
  Matrix data = Blobs(2, 500, 9.0, 4, &truth);
  auto dist_fn = Euclid(data);
  auto result = *Clara(data.rows(), dist_fn, 2);
  for (size_t i = 0; i < data.rows(); i += 37) {
    double assigned = dist_fn(i, result.medoids[result.labels[i]]);
    for (size_t m : result.medoids) {
      EXPECT_LE(assigned, dist_fn(i, m) + 1e-12);
    }
  }
}

TEST(ClaraTest, DeterministicGivenSeed) {
  std::vector<int> truth;
  Matrix data = Blobs(3, 300, 7.0, 5, &truth);
  ClaraOptions opt;
  opt.seed = 77;
  auto a = *Clara(data.rows(), Euclid(data), 3, opt);
  auto b = *Clara(data.rows(), Euclid(data), 3, opt);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(ClaraTest, SampleSizeDefaultsToKaufmanRousseeuw) {
  // With n smaller than 40+2k CLARA degenerates into exact PAM: still valid.
  std::vector<int> truth;
  Matrix data = Blobs(2, 15, 10.0, 6, &truth);
  auto result = *Clara(data.rows(), Euclid(data), 2);
  EXPECT_GT(stats::AdjustedRandIndex(result.labels, truth), 0.95);
}

TEST(ClaraTest, InvalidKRejected) {
  std::vector<int> truth;
  Matrix data = Blobs(1, 5, 1.0, 7, &truth);
  EXPECT_FALSE(Clara(data.rows(), Euclid(data), 0).ok());
  EXPECT_FALSE(Clara(data.rows(), Euclid(data), 6).ok());
}

TEST(ClaraTest, MoreSamplesNeverHurtCostMuch) {
  std::vector<int> truth;
  Matrix data = Blobs(3, 400, 6.0, 8, &truth);
  ClaraOptions one;
  one.num_samples = 1;
  one.seed = 9;
  ClaraOptions five;
  five.num_samples = 5;
  five.seed = 9;
  auto r1 = *Clara(data.rows(), Euclid(data), 3, one);
  auto r5 = *Clara(data.rows(), Euclid(data), 3, five);
  EXPECT_LE(r5.total_cost, r1.total_cost + 1e-9);
}

}  // namespace
}  // namespace blaeu::cluster
