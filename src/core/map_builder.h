// The mapping engine (paper §3, Figure 3): sample -> preprocess -> cluster
// (PAM / CLARA, k chosen by silhouette) -> describe with CART -> assemble
// the region hierarchy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/map.h"
#include "core/preprocess.h"
#include "monet/selection.h"
#include "monet/table.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tree/cart.h"

namespace blaeu::core {

/// Cluster-detection algorithm for the map.
enum class MapAlgorithm {
  kAuto,           ///< PAM on small samples, CLARA beyond clara_threshold
  kPam,
  kClara,
  kKMeans,         ///< baseline (requires dummy encoding)
  kAgglomerative,  ///< baseline (average linkage)
  kDbscan,         ///< density-based: arbitrary shapes, finds its own k
};

/// Map-construction options.
struct MapOptions {
  /// Tuples sampled from the selection before clustering (paper: "a few
  /// thousand samples"). 0 disables sampling.
  size_t sample_size = 2000;
  MapAlgorithm algorithm = MapAlgorithm::kAuto;
  /// kAuto switches from PAM to CLARA above this many sampled tuples.
  size_t clara_threshold = 1200;
  /// Range of cluster counts swept with the silhouette criterion.
  size_t k_min = 2;
  size_t k_max = 6;
  /// Fix k exactly (0 = sweep with silhouette).
  size_t fixed_k = 0;
  /// Monte-Carlo silhouette for the k sweep above this many tuples.
  size_t monte_carlo_threshold = 600;
  size_t mc_subsamples = 4;
  size_t mc_subsample_size = 150;
  PreprocessOptions preprocess;
  tree::CartOptions tree;
  uint64_t seed = 42;
  /// Thread budget for the whole build: preprocessing, distance matrix,
  /// k sweeps, CART split search and region counting all draw from the
  /// process-wide pool (common/parallel.h). 0 = process default
  /// (BLAEU_NUM_THREADS, else hardware_concurrency); 1 = fully serial.
  /// Overrides the num_threads of `preprocess` and `tree`. The map produced
  /// — regions, predicates, tuple counts, silhouette — is bit-identical at
  /// any value.
  size_t num_threads = 0;
  /// Observability sinks. Null means the process-global instances: spans go
  /// to obs::Tracer::Global() (a no-op until enabled) and metrics to
  /// obs::MetricsRegistry::Global(). Tests inject their own to watch one
  /// build in isolation.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Flight recorder for the build's map_built / error events (null = the
  /// process-global recorder). Like the sinks above, never part of the
  /// cache key.
  obs::FlightRecorder* flight = nullptr;

  MapOptions() {
    tree.max_depth = 4;
    tree.min_samples_leaf = 8;
  }
};

/// Builds the data map of `sel` over the `columns` of `table` (the active
/// theme). `columns` must be non-empty and name existing columns.
///
/// The clustering runs on a sample; region tuple counts are then computed
/// over the *whole* selection by evaluating the region predicates, so the
/// map summarizes everything the user selected.
Result<DataMap> BuildMap(const monet::Table& table,
                         const monet::SelectionVector& sel,
                         const std::vector<std::string>& columns,
                         const MapOptions& options = {});

/// Convenience: map over all rows and all columns.
Result<DataMap> BuildMap(const monet::Table& table,
                         const MapOptions& options = {});

}  // namespace blaeu::core
