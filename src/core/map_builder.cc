#include "core/map_builder.h"

#include <algorithm>

#include "cluster/agglomerative.h"
#include "cluster/clara.h"
#include "cluster/clustering.h"
#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "cluster/kselect.h"
#include "cluster/pam.h"
#include "common/rng.h"
#include "common/timer.h"
#include "monet/sampling.h"
#include "stats/distance.h"
#include "stats/metrics.h"
#include "tree/rules.h"

namespace blaeu::core {

using monet::SelectionVector;
using monet::Table;
using monet::TablePtr;

namespace {

/// Distance function over preprocessed features: Euclidean for dummy
/// encoding, Gower for mixed/Gower encoding.
struct FeatureMetric {
  const stats::Matrix* features;
  bool use_gower;
  stats::GowerDistance gower;

  double operator()(size_t i, size_t j) const {
    if (use_gower) {
      return gower(features->RowPtr(i), features->RowPtr(j));
    }
    return stats::EuclideanDistance(features->RowPtr(i), features->RowPtr(j),
                                    features->cols());
  }
};

struct ClusterOutcome {
  cluster::ClusteringResult result;
  double silhouette = 0.0;
  std::string algorithm;
};

Result<ClusterOutcome> RunClustering(const stats::Matrix& features,
                                     const FeatureMetric& metric,
                                     const MapOptions& options,
                                     obs::Tracer* tracer, obs::Span* span) {
  const size_t n = features.rows();
  MapAlgorithm algo = options.algorithm;
  if (algo == MapAlgorithm::kAuto) {
    algo = n > options.clara_threshold ? MapAlgorithm::kClara
                                       : MapAlgorithm::kPam;
  }
  const size_t k_min = std::max<size_t>(2, options.k_min);
  const size_t k_max =
      std::min(options.k_max, n > 1 ? n - 1 : static_cast<size_t>(1));
  const bool use_mc = n > options.monte_carlo_threshold;
  stats::MonteCarloSilhouetteOptions mc;
  mc.num_subsamples = options.mc_subsamples;
  mc.subsample_size = options.mc_subsample_size;
  mc.seed = options.seed + 7;

  auto score = [&](const std::vector<int>& labels,
                   const stats::DistanceMatrix* dist) {
    if (!use_mc && dist != nullptr) {
      return stats::MeanSilhouette(*dist, labels);
    }
    return stats::MonteCarloSilhouette(
        n, labels, [&](size_t i, size_t j) { return metric(i, j); }, mc);
  };

  ClusterOutcome out;
  double best = -2.0;

  if (algo == MapAlgorithm::kClara) {
    out.algorithm = "clara";
    cluster::ClaraOptions clara;
    clara.seed = options.seed;
    auto dist_fn = [&](size_t i, size_t j) { return metric(i, j); };
    const size_t lo = options.fixed_k > 0 ? options.fixed_k : k_min;
    const size_t hi = options.fixed_k > 0 ? options.fixed_k : k_max;
    for (size_t k = lo; k <= hi; ++k) {
      BLAEU_ASSIGN_OR_RETURN(auto result,
                             cluster::Clara(n, dist_fn, k, clara));
      double s = score(result.labels, nullptr);
      if (s > best) {
        best = s;
        out.result = std::move(result);
      }
    }
    out.silhouette = best;
    return out;
  }

  if (algo == MapAlgorithm::kKMeans) {
    out.algorithm = "kmeans";
    cluster::KMeansOptions km;
    km.seed = options.seed;
    const size_t lo = options.fixed_k > 0 ? options.fixed_k : k_min;
    const size_t hi = options.fixed_k > 0 ? options.fixed_k : k_max;
    for (size_t k = lo; k <= hi; ++k) {
      BLAEU_ASSIGN_OR_RETURN(auto result, cluster::KMeans(features, k, km));
      double s = score(result.assignment.labels, nullptr);
      if (s > best) {
        best = s;
        out.result = std::move(result.assignment);
      }
    }
    out.silhouette = best;
    return out;
  }

  // PAM / agglomerative / DBSCAN: need the full distance matrix.
  stats::DistanceMatrix dist(n);
  {
    obs::Span dist_span(tracer, "core.map.distance_matrix");
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) dist.Set(i, j, metric(i, j));
    }
    dist_span.SetAttr("points", n);
    dist_span.SetAttr("pairs", n * (n - 1) / 2);
  }
  span->SetAttr("distance_matrix_points", n);
  if (algo == MapAlgorithm::kDbscan) {
    out.algorithm = "dbscan";
    // eps heuristic: 1.5x the median distance to the 5th nearest neighbor.
    const size_t kNeighbor = std::min<size_t>(5, n - 1);
    std::vector<double> knn(n);
    std::vector<double> row(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) row[j] = dist.At(i, j);
      std::nth_element(row.begin(), row.begin() + kNeighbor, row.end());
      knn[i] = row[kNeighbor];
    }
    std::nth_element(knn.begin(), knn.begin() + n / 2, knn.end());
    cluster::DbscanOptions db;
    db.eps = std::max(1e-9, 1.5 * knn[n / 2]);
    db.min_points = 5;
    BLAEU_ASSIGN_OR_RETURN(auto raw, cluster::Dbscan(dist, db));
    out.result = cluster::DbscanToClustering(raw, dist);
    out.silhouette = out.result.num_clusters() > 1
                         ? score(out.result.labels, &dist)
                         : 0.0;
    return out;
  }
  if (algo == MapAlgorithm::kAgglomerative) {
    out.algorithm = "agglomerative";
    const size_t lo = options.fixed_k > 0 ? options.fixed_k : k_min;
    const size_t hi = options.fixed_k > 0 ? options.fixed_k : k_max;
    for (size_t k = lo; k <= hi; ++k) {
      BLAEU_ASSIGN_OR_RETURN(
          auto result,
          cluster::AgglomerativeToK(dist, cluster::Linkage::kAverage, k));
      double s = score(result.labels, &dist);
      if (s > best) {
        best = s;
        out.result = std::move(result);
      }
    }
    out.silhouette = best;
    return out;
  }

  out.algorithm = "pam";
  if (options.fixed_k > 0) {
    BLAEU_ASSIGN_OR_RETURN(out.result, cluster::Pam(dist, options.fixed_k));
    out.silhouette = score(out.result.labels, &dist);
    return out;
  }
  cluster::KSelectOptions ks;
  ks.k_min = k_min;
  ks.k_max = k_max;
  ks.monte_carlo = use_mc;
  ks.mc_options = mc;
  BLAEU_ASSIGN_OR_RETURN(auto selected, cluster::SelectKWithPam(dist, ks));
  out.result = std::move(selected.best);
  out.silhouette = selected.best_score;
  return out;
}

/// Builds map regions from the CART tree: one region per tree node, with
/// edge predicates from the branch conditions.
void BuildRegions(const tree::CartModel& model, const tree::CartNode& node,
                  int parent_id, const monet::Conjunction& path,
                  DataMap* map) {
  MapRegion region;
  region.id = static_cast<int>(map->regions.size());
  region.parent = parent_id;
  region.predicate = path;
  if (parent_id >= 0) {
    map->regions[parent_id].children.push_back(region.id);
  }
  int id = region.id;
  if (node.is_leaf) {
    region.cluster_label = node.label;
    map->regions.push_back(std::move(region));
    return;
  }
  map->regions.push_back(std::move(region));
  monet::Condition left_cond = model.BranchCondition(node, true);
  monet::Condition right_cond = model.BranchCondition(node, false);
  {
    monet::Conjunction left_path = path;
    left_path.Add(left_cond);
    monet::Conjunction left_edge;
    left_edge.Add(left_cond);
    size_t child_pos = map->regions.size();
    BuildRegions(model, *node.left, id, left_path, map);
    map->regions[child_pos].edge = left_edge;
  }
  {
    monet::Conjunction right_path = path;
    right_path.Add(right_cond);
    monet::Conjunction right_edge;
    right_edge.Add(right_cond);
    size_t child_pos = map->regions.size();
    BuildRegions(model, *node.right, id, right_path, map);
    map->regions[child_pos].edge = right_edge;
  }
}

}  // namespace

Result<DataMap> BuildMap(const Table& table, const SelectionVector& sel,
                         const std::vector<std::string>& columns,
                         const MapOptions& options) {
  Timer timer;
  if (columns.empty()) return Status::Invalid("no active columns");
  if (sel.empty()) return Status::Invalid("empty selection");

  obs::Tracer* tracer =
      options.tracer != nullptr ? options.tracer : &obs::Tracer::Global();
  obs::MetricsRegistry* metrics = options.metrics != nullptr
                                      ? options.metrics
                                      : &obs::MetricsRegistry::Global();
  obs::Span build_span(tracer, "core.map.build");
  build_span.SetAttr("selection_rows", sel.size());
  build_span.SetAttr("columns", columns.size());
  metrics->counter("core.map.builds")->Increment();
  ScopedTimer build_latency(metrics->histogram("core.map.build_seconds"));

  BLAEU_ASSIGN_OR_RETURN(TablePtr view, table.ProjectNames(columns));

  // 1. Sample the selection (paper: a few thousand tuples per map).
  Rng rng(options.seed);
  SelectionVector sample = sel;
  {
    obs::Span span(tracer, "core.map.sample");
    if (options.sample_size > 0 && sel.size() > options.sample_size) {
      sample = monet::SampleFromSelection(sel, options.sample_size, &rng);
    }
    span.SetAttr("rows_in", sel.size());
    span.SetAttr("rows_sampled", sample.size());
  }

  // 2. Preprocess into vectors. A selection whose columns are all constant
  // (e.g. after zooming into a single-category region) yields a trivial
  // one-region map instead of an error: the user can still highlight,
  // inspect and roll back.
  Result<PreprocessedData> pre_or = [&]() -> Result<PreprocessedData> {
    obs::Span span(tracer, "core.map.preprocess");
    auto result = Preprocess(*view, sample, options.preprocess);
    if (result.ok()) {
      span.SetAttr("feature_rows", result.ValueOrDie().features.rows());
      span.SetAttr("feature_cols", result.ValueOrDie().features.cols());
    }
    return result;
  }();
  DataMap map;
  map.active_columns = columns;
  map.total_tuples = sel.size();
  if (!pre_or.ok()) {
    MapRegion root;
    root.id = 0;
    root.tuple_count = sel.size();
    root.cluster_label = 0;
    map.regions.push_back(std::move(root));
    map.num_clusters = 1;
    map.sample_size = sample.size();
    map.algorithm = "trivial";
    map.build_seconds = timer.ElapsedSeconds();
    return map;
  }
  PreprocessedData pre = std::move(pre_or).ValueOrDie();
  map.sample_size = pre.features.rows();

  // Degenerate inputs (too few distinct tuples to split) yield a one-region
  // map rather than an error: the user can still highlight and inspect.
  if (pre.features.rows() < 4) {
    MapRegion root;
    root.id = 0;
    root.tuple_count = sel.size();
    root.cluster_label = 0;
    if (!pre.rows.empty()) {
      root.medoid_row = pre.rows[0];
      root.has_medoid = true;
    }
    map.regions.push_back(std::move(root));
    map.num_clusters = 1;
    map.algorithm = "trivial";
    map.build_seconds = timer.ElapsedSeconds();
    return map;
  }

  // 3. Cluster the vectors.
  FeatureMetric metric{
      &pre.features,
      options.preprocess.encoding == CategoricalEncoding::kGower,
      stats::GowerDistance::Fit(pre.features, pre.categorical_mask())};
  ClusterOutcome outcome;
  {
    obs::Span span(tracer, "core.map.cluster");
    BLAEU_ASSIGN_OR_RETURN(
        outcome, RunClustering(pre.features, metric, options, tracer, &span));
    span.SetAttr("algorithm", outcome.algorithm);
    span.SetAttr("k", outcome.result.num_clusters());
    span.SetAttr("silhouette", outcome.silhouette);
  }
  map.num_clusters = outcome.result.num_clusters();
  map.silhouette = outcome.silhouette;
  map.algorithm = outcome.algorithm;
  metrics->histogram("core.map.silhouette")->Observe(outcome.silhouette);

  // 4. Describe the clusters with a decision tree on the original columns.
  Result<tree::CartModel> model_or = [&]() -> Result<tree::CartModel> {
    obs::Span span(tracer, "core.map.describe");
    BLAEU_ASSIGN_OR_RETURN(
        tree::CartModel model,
        tree::CartModel::Train(*view, pre.rows, outcome.result.labels,
                               options.tree));
    map.tree_fidelity =
        model.Fidelity(*view, pre.rows, outcome.result.labels);
    span.SetAttr("fidelity", map.tree_fidelity);
    return model;
  }();
  if (!model_or.ok()) return model_or.status();
  const tree::CartModel& model = *model_or;

  // 5. Assemble the region hierarchy from the tree.
  {
    obs::Span span(tracer, "core.map.assemble");
    BuildRegions(model, model.root(), -1, monet::Conjunction(), &map);
    span.SetAttr("regions", map.regions.size());
  }

  // 6. Tuple counts over the FULL selection via the region predicates.
  {
    obs::Span span(tracer, "core.map.count");
    for (MapRegion& region : map.regions) {
      if (region.parent < 0) {
        region.tuple_count = sel.size();
        continue;
      }
      BLAEU_ASSIGN_OR_RETURN(SelectionVector rows,
                             region.predicate.EvaluateOn(*view, sel));
      region.tuple_count = rows.size();
    }
    span.SetAttr("rows_counted", sel.size());
  }

  // 7. Attach cluster medoids to leaves.
  for (MapRegion& region : map.regions) {
    if (!region.is_leaf() || region.cluster_label < 0) continue;
    size_t c = static_cast<size_t>(region.cluster_label);
    if (c < outcome.result.medoids.size()) {
      region.medoid_row = pre.rows[outcome.result.medoids[c]];
      region.has_medoid = true;
    }
  }
  map.build_seconds = timer.ElapsedSeconds();
  return map;
}

Result<DataMap> BuildMap(const Table& table, const MapOptions& options) {
  std::vector<std::string> columns;
  for (const auto& f : table.schema().fields()) columns.push_back(f.name);
  return BuildMap(table, SelectionVector::All(table.num_rows()), columns,
                  options);
}

}  // namespace blaeu::core
