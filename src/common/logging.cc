#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace blaeu {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Initial level: BLAEU_LOG_LEVEL (name or 0-3) when set, kWarn otherwise.
LogLevel InitialLevel() {
  const char* env = std::getenv("BLAEU_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  LogLevel level;
  if (ParseLogLevel(env, &level)) return level;
  std::fprintf(stderr, "[blaeu WARN] unrecognized BLAEU_LOG_LEVEL '%s'\n",
               env);
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{InitialLevel()};

/// Seconds since the first log call, so lines order and gaps are visible.
double UptimeSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

bool ParseLogLevel(const std::string& text, LogLevel* level) {
  std::string t = ToLower(std::string(Trim(text)));
  if (t == "debug" || t == "0") {
    *level = LogLevel::kDebug;
  } else if (t == "info" || t == "1") {
    *level = LogLevel::kInfo;
  } else if (t == "warn" || t == "warning" || t == "2") {
    *level = LogLevel::kWarn;
  } else if (t == "error" || t == "3") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

void LogLine(LogLevel level, const std::string& msg) {
  if (level < GetLogLevel()) return;
  std::fprintf(stderr, "[%11.6f blaeu %-5s] %s\n", UptimeSeconds(),
               LevelName(level), msg.c_str());
}

}  // namespace internal
}  // namespace blaeu
