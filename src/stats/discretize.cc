#include "stats/discretize.h"

#include <algorithm>
#include <cmath>

namespace blaeu::stats {

Discretizer Discretizer::EqualWidth(const std::vector<double>& values,
                                    size_t num_bins) {
  Discretizer d;
  if (values.empty() || num_bins <= 1) return d;
  auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  double mn = *mn_it, mx = *mx_it;
  if (mn == mx) return d;  // single bin
  double width = (mx - mn) / static_cast<double>(num_bins);
  for (size_t i = 1; i < num_bins; ++i) {
    d.cuts_.push_back(mn + width * static_cast<double>(i));
  }
  return d;
}

Discretizer Discretizer::EqualFrequency(const std::vector<double>& values,
                                        size_t num_bins) {
  Discretizer d;
  if (values.empty() || num_bins <= 1) return d;
  std::vector<double> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 1; i < num_bins; ++i) {
    size_t idx = (i * sorted.size()) / num_bins;
    if (idx >= sorted.size()) idx = sorted.size() - 1;
    double cut = sorted[idx];
    if (d.cuts_.empty() || cut > d.cuts_.back()) d.cuts_.push_back(cut);
  }
  // A cut equal to the max would leave an empty last bin; drop it.
  while (!d.cuts_.empty() && d.cuts_.back() >= sorted.back()) {
    d.cuts_.pop_back();
  }
  return d;
}

int Discretizer::Bin(double v) const {
  // First cut strictly greater than v gives the bin.
  auto it = std::lower_bound(cuts_.begin(), cuts_.end(), v);
  return static_cast<int>(it - cuts_.begin());
}

std::vector<int> Discretizer::BinAll(const std::vector<double>& values) const {
  std::vector<int> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(Bin(v));
  return out;
}

}  // namespace blaeu::stats
