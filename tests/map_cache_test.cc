// Unit tests for the navigation-aware map cache (core/map_cache.h): LRU
// byte budget, table-reload invalidation, session-lifecycle release, env
// override, and the parent-plan reuse opt-in.
#include "core/map_cache.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/explorer.h"
#include "core/navigation.h"
#include "workloads/gaussian.h"

namespace blaeu::core {
namespace {

SessionOptions FastOptions() {
  SessionOptions opt;
  opt.map.sample_size = 400;
  opt.map.k_max = 4;
  return opt;
}

monet::TablePtr MixtureTable(size_t rows = 600, uint64_t seed = 42) {
  workloads::MixtureSpec spec;
  spec.rows = rows;
  spec.num_clusters = 3;
  spec.dims = 4;
  spec.with_categorical = true;
  spec.seed = seed;
  return workloads::MakeGaussianMixture(spec).table;
}

TEST(MapCacheKeyTest, EqualityAndHashTrackComponents) {
  MapCacheKey a;
  a.table_name = "t";
  a.table_version = 1;
  a.selection_fp = 7;
  MapCacheKey b = a;
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.selection_fp = 8;
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.Hash(), b.Hash());
  b = a;
  b.table_version = 2;
  EXPECT_FALSE(a == b);
}

TEST(MapCacheTest, FingerprintStringsIsOrderSensitive) {
  EXPECT_NE(FingerprintStrings({"a", "b"}), FingerprintStrings({"b", "a"}));
  EXPECT_NE(FingerprintStrings({"ab"}), FingerprintStrings({"a", "b"}));
  EXPECT_EQ(FingerprintStrings({"a", "b"}), FingerprintStrings({"a", "b"}));
}

TEST(MapCacheTest, BudgetFromEnvOverrides) {
  unsetenv("BLAEU_CACHE_BYTES");
  EXPECT_EQ(MapCache::BudgetFromEnv(999), 999u);
  setenv("BLAEU_CACHE_BYTES", "12345", 1);
  EXPECT_EQ(MapCache::BudgetFromEnv(999), 12345u);
  setenv("BLAEU_CACHE_BYTES", "not-a-number", 1);
  EXPECT_EQ(MapCache::BudgetFromEnv(999), 999u);
  unsetenv("BLAEU_CACHE_BYTES");
}

TEST(MapCacheTest, InsertLookupRoundTrip) {
  MapCache cache;
  MapCacheKey key;
  key.table_name = "t";
  key.selection_fp = 1;
  auto map = std::make_shared<const DataMap>();
  cache.Insert(key, /*session_id=*/1, map);
  EXPECT_EQ(cache.Lookup(key, 1).get(), map.get());
  MapCacheKey other = key;
  other.selection_fp = 2;
  EXPECT_EQ(cache.Lookup(other, 1), nullptr);
  MapCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.inserts, 1);
  EXPECT_EQ(s.entries, 1u);
}

TEST(MapCacheTest, LruEvictionRespectsByteBudget) {
  // Size the budget from a real entry so the test tracks EstimateMapBytes.
  DataMap probe;
  probe.regions.resize(3);
  const size_t one = EstimateMapBytes(probe) + 256;  // entry + overhead
  MapCache cache(3 * one);
  auto key_for = [](uint64_t i) {
    MapCacheKey k;
    k.table_name = "t";
    k.selection_fp = i;
    return k;
  };
  for (uint64_t i = 0; i < 8; ++i) {
    cache.Insert(key_for(i), 1, std::make_shared<const DataMap>(probe));
    EXPECT_LE(cache.stats().bytes, 3 * one);
  }
  MapCacheStats s = cache.stats();
  EXPECT_EQ(s.inserts, 8);
  EXPECT_GT(s.evictions, 0);
  EXPECT_LE(s.bytes, s.budget_bytes);
  // The oldest entries are gone, the newest survive.
  EXPECT_EQ(cache.Lookup(key_for(0), 1), nullptr);
  EXPECT_NE(cache.Lookup(key_for(7), 1), nullptr);
  // A lookup refreshes recency: touch the LRU survivor, insert one more,
  // and the touched entry outlives the untouched one.
  MapCacheStats before = cache.stats();
  uint64_t oldest_alive = 0;
  for (uint64_t i = 0; i < 8; ++i) {
    if (cache.Lookup(key_for(i), 1) != nullptr) {
      oldest_alive = i;
      break;
    }
  }
  ASSERT_NE(cache.Lookup(key_for(oldest_alive), 1), nullptr);
  cache.Insert(key_for(100), 1, std::make_shared<const DataMap>(probe));
  EXPECT_NE(cache.Lookup(key_for(oldest_alive), 1), nullptr);
  EXPECT_GT(cache.stats().evictions, before.evictions);
}

TEST(MapCacheTest, OversizedEntryIsRejectedNotCached) {
  DataMap probe;
  probe.regions.resize(3);
  MapCache cache(/*budget_bytes=*/16);  // smaller than any real entry
  MapCacheKey key;
  key.table_name = "t";
  cache.Insert(key, 1, std::make_shared<const DataMap>(probe));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.Lookup(key, 1), nullptr);
}

TEST(MapCacheTest, SessionCacheHitOnRollbackRevisit) {
  auto table = MixtureTable();
  auto session = Session::Start(table, "mixture", FastOptions());
  ASSERT_TRUE(session.ok());
  Session s = std::move(session).ValueOrDie();
  ASSERT_NE(s.cache(), nullptr);
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_FALSE(leaves.empty());
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  size_t misses_before = s.stats().cache_misses;
  ASSERT_TRUE(s.Rollback().ok());
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());  // identical navigation state
  EXPECT_GE(s.stats().cache_hits, 1u);
  EXPECT_EQ(s.stats().cache_misses, misses_before);
}

TEST(MapCacheTest, DisabledCacheBuildsEveryTime) {
  auto table = MixtureTable();
  SessionOptions opt = FastOptions();
  opt.cache_enabled = false;
  auto session = Session::Start(table, "mixture", opt);
  ASSERT_TRUE(session.ok());
  Session s = std::move(session).ValueOrDie();
  EXPECT_EQ(s.cache(), nullptr);
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  ASSERT_TRUE(s.Rollback().ok());
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  EXPECT_EQ(s.stats().cache_hits, 0u);
  EXPECT_EQ(s.stats().maps_built, 3u);  // start + zoom + re-zoom
}

TEST(MapCacheTest, ReloadingTableInvalidatesItsEntries) {
  Explorer explorer(FastOptions());
  ASSERT_TRUE(explorer.LoadTable(MixtureTable(), "mixture").ok());
  auto session = explorer.OpenSession("mixture");
  ASSERT_TRUE(session.ok());
  ASSERT_NE(explorer.cache(), nullptr);
  EXPECT_GT(explorer.cache()->stats().entries, 0u);
  // Re-loading under the same name drops the cached maps AND bumps the
  // version, so a new session cannot hit stale entries either way.
  ASSERT_TRUE(explorer.LoadTable(MixtureTable(600, /*seed=*/7), "mixture").ok());
  MapCacheStats s = explorer.cache()->stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.pk_entries, 0u);
  EXPECT_GT(s.invalidations, 0);
  // The old session pointer is stale by contract; a fresh session works.
  auto reopened = explorer.OpenSession("mixture");
  ASSERT_TRUE(reopened.ok());
  EXPECT_GT(explorer.cache()->stats().entries, 0u);
}

TEST(MapCacheTest, OpenCloseCyclesDoNotLeakCacheEntries) {
  Explorer explorer(FastOptions());
  ASSERT_TRUE(explorer.LoadTable(MixtureTable(), "mixture").ok());
  ASSERT_NE(explorer.cache(), nullptr);
  size_t pk_entries_after_first = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    auto session = explorer.OpenSession("mixture");
    ASSERT_TRUE(session.ok());
    Session* s = *session;
    std::vector<int> leaves = s->current().map.LeafIds();
    ASSERT_FALSE(leaves.empty());
    ASSERT_TRUE(s->Zoom(leaves[0]).ok());
    EXPECT_GT(explorer.cache()->stats().entries, 0u);
    ASSERT_TRUE(explorer.CloseSession("mixture").ok());
    // Closing the only session must release every map entry: a serving
    // layer cycling sessions cannot grow the cache without bound.
    MapCacheStats stats = explorer.cache()->stats();
    EXPECT_EQ(stats.entries, 0u) << "cycle " << cycle;
    EXPECT_EQ(stats.bytes, 0u) << "cycle " << cycle;
    // Primary-key entries persist by design (they are per-table, tiny, and
    // replaced in place) — but they must not multiply across cycles.
    if (cycle == 0) {
      pk_entries_after_first = stats.pk_entries;
    } else {
      EXPECT_EQ(stats.pk_entries, pk_entries_after_first) << "cycle " << cycle;
    }
  }
}

TEST(MapCacheTest, MovedFromSessionReleasesNothing) {
  auto cache = std::make_shared<MapCache>();
  SessionOptions opt = FastOptions();
  opt.cache = cache;
  auto table = MixtureTable();
  auto started = Session::Start(table, "mixture", opt);
  ASSERT_TRUE(started.ok());
  size_t entries;
  {
    Session outer = std::move(started).ValueOrDie();
    entries = cache->stats().entries;
    EXPECT_GT(entries, 0u);
    {
      Session inner = std::move(outer);
      // The moved-from `outer` dies at the end of the enclosing scope; the
      // entries now belong to `inner` until it is destroyed.
      EXPECT_EQ(cache->stats().entries, entries);
    }
    EXPECT_EQ(cache->stats().entries, 0u);  // inner released them
  }
  EXPECT_EQ(cache->stats().entries, 0u);  // outer's death was a no-op
}

TEST(MapCacheTest, ParentPlanReuseIsOptInAndCounted) {
  auto table = MixtureTable(1200);
  SessionOptions opt = FastOptions();
  opt.reuse_parent_plans = true;
  auto session = Session::Start(table, "mixture", opt);
  ASSERT_TRUE(session.ok());
  Session s = std::move(session).ValueOrDie();
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_FALSE(leaves.empty());
  // Zoom keeps the parent's columns, so the parent's plan applies.
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  EXPECT_GE(s.stats().plan_reuses, 1u);
  EXPECT_FALSE(s.current().map.regions.empty());

  // Default options never reuse a parent plan.
  auto cold = Session::Start(table, "mixture", FastOptions());
  ASSERT_TRUE(cold.ok());
  Session c = std::move(cold).ValueOrDie();
  std::vector<int> cold_leaves = c.current().map.LeafIds();
  ASSERT_FALSE(cold_leaves.empty());
  ASSERT_TRUE(c.Zoom(cold_leaves[0]).ok());
  EXPECT_EQ(c.stats().plan_reuses, 0u);
}

TEST(MapCacheTest, StatsJsonListsAllFields) {
  MapCache cache;
  std::string json = cache.StatsJson();
  for (const char* field :
       {"hits", "misses", "inserts", "evictions", "invalidations", "pk_hits",
        "pk_misses", "entries", "bytes", "budget_bytes", "pk_entries"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST(MapCacheTest, ExplorerStatsReportIncludesCacheSection) {
  Explorer explorer(FastOptions());
  ASSERT_TRUE(explorer.LoadTable(MixtureTable(), "mixture").ok());
  ASSERT_TRUE(explorer.OpenSession("mixture").ok());
  std::string report = explorer.StatsReport();
  EXPECT_NE(report.find("\"cache\""), std::string::npos);
  EXPECT_NE(report.find("cache_hits"), std::string::npos);
  EXPECT_NE(report.find("budget_bytes"), std::string::npos);
}

}  // namespace
}  // namespace blaeu::core
