// The navigation session (paper §2): zoom, highlight, project, rollback.
// Every action is reversible; every state corresponds to an implicit
// Select-Project query over the base table.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/map.h"
#include "core/map_builder.h"
#include "core/map_cache.h"
#include "core/theme.h"
#include "monet/column_stats.h"
#include "monet/query.h"
#include "monet/sampling.h"
#include "monet/selection.h"
#include "monet/table.h"

namespace blaeu::core {

/// Session-wide options.
struct SessionOptions {
  ThemeOptions themes;
  MapOptions map;
  /// Multi-scale sampler ladder base (paper: a few thousand per zoom).
  size_t multiscale_base = 2000;
  double multiscale_growth = 4.0;
  uint64_t seed = 42;

  /// Navigation-aware map cache (core/map_cache.h). When enabled, every map
  /// the session builds is memoized, so rollback + re-visit of a navigation
  /// state is O(1) and bit-identical to a cache-disabled session.
  bool cache_enabled = true;
  /// LRU byte budget of the cache a session (or Explorer) creates when
  /// `cache` is null. The BLAEU_CACHE_BYTES env var overrides it.
  size_t cache_budget_bytes = MapCache::kDefaultBudgetBytes;
  /// Shared cache instance: the Explorer sets this so all its sessions
  /// share one budget; null makes each session create its own private one
  /// (when enabled). Callers sharing a cache across sessions must keep
  /// (table_name, table_version) unique per distinct table.
  MapCachePtr cache;
  /// Version of the table this session explores, bumped by the Explorer on
  /// every (re-)load; part of every cache key.
  uint64_t table_version = 0;
  /// Opt-in re-normalized reuse (tier 3 in core/map_cache.h): on a cache
  /// miss after Zoom, fill the child's features with the parent state's
  /// preprocessing plan instead of re-planning. Faster, but the child map
  /// is normalized by the parent's statistics and therefore NOT
  /// bit-identical to a cold build — off by default.
  bool reuse_parent_plans = false;
};

/// \brief One navigation state: a selection, an active theme, and its map.
struct NavState {
  monet::SelectionVector selection;
  int theme_id = -1;                  ///< index into the session's ThemeSet
  std::vector<std::string> columns;   ///< active columns
  monet::Conjunction where;           ///< accumulated predicate from the root
  DataMap map;
  /// Cache identity of this state's map (cache bookkeeping; also the key
  /// whose entry carries the state's preprocessing plan for reuse).
  MapCacheKey cache_key;
  std::string action;                 ///< what produced this state
  /// User notes attached to regions of this state's map ("the maps ...
  /// provide facilities to inspect their content and annotate them", §1).
  std::map<int, std::string> annotations;
};

/// \brief Per-region summary returned by the highlight action.
struct RegionHighlight {
  int region_id = 0;
  size_t tuple_count = 0;
  monet::ColumnStats stats;
  /// Up to 5 example values of the highlighted column inside the region
  /// ("Switzerland, Norway, Canada, ..." in Figure 1c).
  std::vector<std::string> examples;
};

/// \brief Result of highlighting a column on the current map.
struct HighlightResult {
  std::string column;
  std::vector<RegionHighlight> regions;  ///< one per leaf region
};

/// \brief One region's detailed univariate view (highlight drill-down).
struct RegionDetail {
  int region_id = 0;
  size_t tuple_count = 0;
  /// ASCII rendering: histogram for numeric columns, frequency bars for
  /// categorical ones — "classic univariate ... visualization methods,
  /// such as histograms" (§2).
  std::string rendering;
};

/// \brief Detailed highlight: per-region distribution of one column.
struct HighlightDetailResult {
  std::string column;
  bool numeric = false;
  std::vector<RegionDetail> regions;
};

/// \brief Per-region bivariate view (ASCII density scatter, §2's
/// "scatter-plots").
struct ScatterDetailResult {
  std::string x_column;
  std::string y_column;
  std::vector<RegionDetail> regions;
};

/// \brief Per-session usage and latency statistics (obs integration).
struct SessionStats {
  size_t maps_built = 0;          ///< BuildMap calls over the session's life
  double map_build_seconds = 0.0; ///< total wall-clock spent building maps
  double last_build_seconds = 0.0;
  size_t actions = 0;             ///< states pushed (zoom/select/project)
  size_t rollbacks = 0;
  size_t cache_hits = 0;          ///< maps served from the cache
  size_t cache_misses = 0;        ///< maps actually built (cache enabled)
  size_t plan_reuses = 0;         ///< builds that reused a parent's plan
};

/// \brief An interactive exploration session over one table.
///
/// The session owns a state stack. Actions push states; Rollback pops them.
/// State 0 is the whole table mapped on the best theme.
class Session {
 public:
  /// Opens a session: detects themes, builds the initial map on the
  /// highest-cohesion theme over the full table.
  static Result<Session> Start(monet::TablePtr table, std::string table_name,
                               const SessionOptions& options = {});

  /// The detected themes (fixed for the session's table).
  const ThemeSet& themes() const { return themes_; }

  /// The current navigation state.
  const NavState& current() const { return history_.back(); }
  /// Number of states on the stack (>= 1).
  size_t history_size() const { return history_.size(); }
  /// Read-only access to any past state.
  const NavState& state(size_t i) const { return history_[i]; }

  const monet::Table& table() const { return *table_; }
  const std::string& table_name() const { return table_name_; }

  /// Re-maps the current selection on theme `theme_idx` (also the initial
  /// theme choice; paper Figure 1a -> 1b). Pushes a state.
  Status SelectTheme(size_t theme_idx);

  /// Drills into region `region_id` of the current map: the new selection
  /// is the subset of the current selection satisfying the region's
  /// predicate, re-mapped on the same columns. Pushes a state.
  Status Zoom(int region_id);

  /// Re-maps the current selection on the columns of another theme
  /// (paper Figure 1d). Pushes a state.
  Status Project(size_t theme_idx);

  /// Summarizes `column` inside each leaf region of the current map
  /// (paper Figure 1c). Does not change the state.
  Result<HighlightResult> Highlight(const std::string& column) const;

  /// Full per-region distribution of `column`: histograms for numeric
  /// columns (with `bins` buckets), frequency tables otherwise.
  Result<HighlightDetailResult> HighlightDetail(const std::string& column,
                                                size_t bins = 10) const;

  /// Per-region binned scatter of two numeric columns.
  Result<ScatterDetailResult> ScatterDetail(const std::string& x_column,
                                            const std::string& y_column) const;

  /// Attaches a note to a region of the current map (replaces any previous
  /// note). Annotations travel with the state: rollback discards them.
  Status Annotate(int region_id, std::string note);

  /// Notes on the current map, keyed by region id.
  const std::map<int, std::string>& annotations() const {
    return history_.back().annotations;
  }

  /// Serializes the whole session (states, actions, SQL, annotations, map
  /// summaries) as JSON — what the NodeJS layer would persist.
  std::string ToJson() const;

  /// Returns to the previous state; Invalid at the initial state.
  Status Rollback();

  /// Returns to state `index` (0-based), discarding everything after it.
  Status RollbackTo(size_t index);

  /// Usage/latency counters accumulated since the session started.
  const SessionStats& stats() const { return stats_; }

  /// The session's map cache (null when caching is disabled).
  const MapCachePtr& cache() const { return cache_; }
  /// Process-unique id tagging this session's cache entries.
  uint64_t session_id() const { return session_id_; }

  /// Drops this session's entries from the cache. Called automatically on
  /// destruction (and therefore by Explorer::CloseSession), so open/close
  /// cycles cannot grow a shared cache.
  void ReleaseCacheEntries();

  /// The implicit Select-Project query of the current state.
  monet::SelectProjectQuery CurrentQuery() const;

  /// The implicit query of the current state further restricted to one
  /// region of the current map.
  Result<monet::SelectProjectQuery> RegionQuery(int region_id) const;

  /// Materializes up to `max_rows` tuples of a region for inspection.
  Result<monet::TablePtr> Inspect(int region_id, size_t max_rows = 10) const;

  /// Moves transfer cache ownership (the moved-from session releases
  /// nothing on destruction). Move-assignment over a live session abandons
  /// the target's entries to the LRU rather than evicting them.
  Session(Session&&) noexcept = default;
  Session& operator=(Session&&) noexcept = default;
  ~Session() { ReleaseCacheEntries(); }

 private:
  Session(monet::TablePtr table, std::string table_name,
          SessionOptions options, ThemeSet themes);

  /// Builds (or fetches from the cache) a map for `sel` on `columns` using
  /// the session sampler. `out_key` receives the map's cache identity.
  Result<DataMap> MakeMap(const monet::SelectionVector& sel,
                          const std::vector<std::string>& columns,
                          MapCacheKey* out_key);

  monet::TablePtr table_;
  std::string table_name_;
  SessionOptions options_;
  ThemeSet themes_;
  monet::MultiScaleSampler sampler_;
  std::vector<NavState> history_;
  MapCachePtr cache_;
  uint64_t session_id_ = 0;
  uint64_t table_fp_ = 0;   ///< schema-shape fingerprint (cache key guard)
  uint64_t options_fp_ = 0; ///< fingerprint of the output-affecting options
  SessionStats stats_;
};

}  // namespace blaeu::core
