#include "monet/query.h"

namespace blaeu::monet {

std::string SelectProjectQuery::ToSql() const {
  std::string cols;
  if (columns.empty()) {
    cols = "*";
  } else {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) cols += ", ";
      cols += "\"" + columns[i] + "\"";
    }
  }
  std::string sql = "SELECT " + cols + " FROM \"" + table_name + "\"";
  if (!where.empty()) sql += " WHERE " + where.ToSql();
  return sql + ";";
}

Result<TablePtr> SelectProjectQuery::Execute(const Catalog& catalog) const {
  BLAEU_ASSIGN_OR_RETURN(TablePtr table, catalog.Get(table_name));
  return ExecuteOn(*table);
}

Result<TablePtr> SelectProjectQuery::ExecuteOn(const Table& table) const {
  BLAEU_ASSIGN_OR_RETURN(SelectionVector sel, where.Evaluate(table));
  TablePtr filtered = table.Take(sel.rows());
  if (columns.empty()) return filtered;
  return filtered->ProjectNames(columns);
}

}  // namespace blaeu::monet
