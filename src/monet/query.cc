#include "monet/query.h"

#include "common/timer.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace blaeu::monet {

std::string SelectProjectQuery::ToSql() const {
  std::string cols;
  if (columns.empty()) {
    cols = "*";
  } else {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) cols += ", ";
      cols += "\"" + columns[i] + "\"";
    }
  }
  std::string sql = "SELECT " + cols + " FROM \"" + table_name + "\"";
  if (!where.empty()) sql += " WHERE " + where.ToSql();
  return sql + ";";
}

Result<TablePtr> SelectProjectQuery::Execute(const Catalog& catalog) const {
  BLAEU_ASSIGN_OR_RETURN(TablePtr table, catalog.Get(table_name));
  return ExecuteOn(*table);
}

Result<TablePtr> SelectProjectQuery::ExecuteOn(const Table& table) const {
  auto& registry = obs::MetricsRegistry::Global();
  registry.counter("monet.query.executions")->Increment();
  registry.counter("monet.query.rows_scanned")
      ->Add(static_cast<int64_t>(table.num_rows()));
  ScopedTimer latency(registry.histogram("monet.query.seconds"));
  BLAEU_ASSIGN_OR_RETURN(SelectionVector sel, where.Evaluate(table));
  registry.counter("monet.query.rows_returned")
      ->Add(static_cast<int64_t>(sel.size()));
  obs::FlightRecorder::Global().Record(
      obs::FlightEventKind::kQuery, "monet.query.execute",
      {{"sql", ToSql()},
       {"rows_scanned", std::to_string(table.num_rows())},
       {"rows_returned", std::to_string(sel.size())}});
  TablePtr filtered = table.Take(sel.rows());
  if (columns.empty()) return filtered;
  return filtered->ProjectNames(columns);
}

}  // namespace blaeu::monet
