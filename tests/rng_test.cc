// Unit tests for the deterministic PRNG.
#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace blaeu {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(5);
  const int n = 20000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DiscreteFollowsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.NextDiscrete(weights)];
  EXPECT_EQ(counts[1], 0);
  // Expected ratio 1:3.
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to match
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  std::vector<size_t> picks = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(picks.size(), 30u);
  std::set<size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t p : picks) EXPECT_LT(p, 100u);
}

TEST(RngTest, SampleWithoutReplacementWholePopulation) {
  Rng rng(21);
  std::vector<size_t> picks = rng.SampleWithoutReplacement(10, 99);
  EXPECT_EQ(picks.size(), 10u);
  std::set<size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Split();
  // Child differs from a fresh parent continuation.
  EXPECT_NE(child.Next(), a.Next());
}

TEST(RngTest, UniformRange) {
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    double v = rng.NextUniform(5.0, 6.5);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.5);
  }
}

}  // namespace
}  // namespace blaeu
