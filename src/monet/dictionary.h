// Per-column string dictionaries: append-ordered interning pools mapping
// strings to dense int32 codes, the classic columnar-execution trick
// (MonetDB-style) that lets every downstream operator work on integers
// instead of materializing a fresh std::string per cell.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

namespace blaeu::monet {

/// \brief An append-ordered string pool with a reverse index.
///
/// Codes are assigned densely in first-intern order and are never reused or
/// reordered, so a code minted once stays valid for the lifetime of the
/// dictionary — columns produced by Take/gather share their source's
/// dictionary and carry codes over unchanged. The pool is append-only and
/// NOT thread-safe to mutate; concurrent reads (the hot paths) are safe once
/// loading is done, which matches the store's immutable-table contract.
class Dictionary {
 public:
  /// Code used by columns for NULL cells; never a valid pool index.
  static constexpr int32_t kNullCode = -1;

  Dictionary() = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Code of `s`, interning it if unseen. O(1) amortized.
  int32_t Intern(std::string_view s);

  /// Code of `s` if already interned, else kNullCode. Never mutates.
  int32_t Find(std::string_view s) const;

  /// String for a valid code (0 <= code < size()). The reference is stable:
  /// the pool never moves its strings.
  const std::string& value(int32_t code) const {
    return values_[static_cast<size_t>(code)];
  }

  /// Number of distinct interned strings.
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Interns that found an existing entry (cells beyond the first of each
  /// distinct string). Feeds the monet.dict.intern_hits counter.
  size_t intern_hits() const { return intern_hits_; }

  /// Approximate heap footprint of pool + index.
  size_t bytes() const;

 private:
  // deque, not vector: element addresses are stable under push_back, so the
  // index can key string_views into the pool without re-allocation hazards
  // (SSO strings move their buffer with the object inside a vector).
  std::deque<std::string> values_;
  std::unordered_map<std::string_view, int32_t> index_;
  size_t intern_hits_ = 0;
  size_t string_bytes_ = 0;
};

using DictionaryPtr = std::shared_ptr<Dictionary>;

}  // namespace blaeu::monet
