#include "monet/dictionary.h"

namespace blaeu::monet {

int32_t Dictionary::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) {
    ++intern_hits_;
    return it->second;
  }
  const int32_t code = static_cast<int32_t>(values_.size());
  values_.emplace_back(s);
  string_bytes_ += values_.back().capacity();
  index_.emplace(std::string_view(values_.back()), code);
  return code;
}

int32_t Dictionary::Find(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kNullCode : it->second;
}

size_t Dictionary::bytes() const {
  // Pool strings + per-entry deque/index node overhead estimates.
  return string_bytes_ +
         values_.size() * (sizeof(std::string) + sizeof(std::string_view) +
                           sizeof(int32_t) + 32);
}

}  // namespace blaeu::monet
