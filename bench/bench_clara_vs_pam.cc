// Ablation (DESIGN.md §5): PAM vs CLARA vs k-means on the map's clustering
// stage. Shows the latency crossover that justifies the paper's "when the
// data is too large, Blaeu creates the maps with CLARA", and the accuracy
// each algorithm pays (ARI vs planted clusters, reported as counters).

#include <benchmark/benchmark.h>

#include "cluster/clara.h"
#include "cluster/kmeans.h"
#include "cluster/pam.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "stats/distance.h"
#include "stats/metrics.h"
#include "workloads/gaussian.h"

using namespace blaeu;

namespace {

struct Fixture {
  stats::Matrix features;
  std::vector<int> truth;
};

const Fixture& MixtureCached(size_t rows) {
  static std::map<size_t, Fixture>* cache = new std::map<size_t, Fixture>();
  auto it = cache->find(rows);
  if (it == cache->end()) {
    workloads::MixtureSpec spec;
    spec.rows = rows;
    spec.num_clusters = 4;
    spec.dims = 6;
    spec.separation = 7.0;
    spec.seed = rows;
    auto data = workloads::MakeGaussianMixture(spec);
    Fixture f;
    f.features = stats::Matrix(rows, 6);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < 6; ++c) {
        f.features.At(r, c) = data.table->column(c)->doubles()[r];
      }
    }
    f.truth = data.truth.row_clusters;
    it = cache->emplace(rows, std::move(f)).first;
  }
  return it->second;
}

void BM_Pam(benchmark::State& state) {
  const Fixture& f = MixtureCached(static_cast<size_t>(state.range(0)));
  double ari = 0;
  for (auto _ : state) {
    ScopedTimer latency(&obs::MetricsRegistry::Global(),
                        "bench.pam_seconds");
    auto dist = stats::DistanceMatrix::Euclidean(f.features);
    auto result = cluster::Pam(dist, 4);
    if (!result.ok()) state.SkipWithError("pam failed");
    ari = stats::AdjustedRandIndex(result->labels, f.truth);
    benchmark::DoNotOptimize(result);
  }
  state.counters["ari"] = ari;
}

void BM_PamNaiveSwap(benchmark::State& state) {
  const Fixture& f = MixtureCached(static_cast<size_t>(state.range(0)));
  double ari = 0;
  for (auto _ : state) {
    auto dist = stats::DistanceMatrix::Euclidean(f.features);
    auto result = cluster::PamNaive(dist, 4);
    if (!result.ok()) state.SkipWithError("pam failed");
    ari = stats::AdjustedRandIndex(result->labels, f.truth);
    benchmark::DoNotOptimize(result);
  }
  state.counters["ari"] = ari;
}

void BM_Clara(benchmark::State& state) {
  const Fixture& f = MixtureCached(static_cast<size_t>(state.range(0)));
  const size_t n = f.features.rows();
  auto dist_fn = [&f](size_t i, size_t j) {
    return stats::EuclideanDistance(f.features.RowPtr(i),
                                    f.features.RowPtr(j), f.features.cols());
  };
  double ari = 0;
  cluster::ClaraOptions opt;
  for (auto _ : state) {
    ScopedTimer latency(&obs::MetricsRegistry::Global(),
                        "bench.clara_seconds");
    opt.seed++;
    auto result = cluster::Clara(n, dist_fn, 4, opt);
    if (!result.ok()) state.SkipWithError("clara failed");
    ari = stats::AdjustedRandIndex(result->labels, f.truth);
    benchmark::DoNotOptimize(result);
  }
  state.counters["ari"] = ari;
}

void BM_KMeans(benchmark::State& state) {
  const Fixture& f = MixtureCached(static_cast<size_t>(state.range(0)));
  double ari = 0;
  cluster::KMeansOptions opt;
  for (auto _ : state) {
    opt.seed++;
    auto result = cluster::KMeans(f.features, 4, opt);
    if (!result.ok()) state.SkipWithError("kmeans failed");
    ari = stats::AdjustedRandIndex(result->assignment.labels, f.truth);
    benchmark::DoNotOptimize(result);
  }
  state.counters["ari"] = ari;
}

// PAM is O(n^2) memory/time: cap its sweep; CLARA and k-means go further.
BENCHMARK(BM_Pam)->Arg(500)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_PamNaiveSwap)->Arg(500)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_Clara)->Arg(500)->Arg(1000)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_KMeans)->Arg(500)->Arg(1000)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

BENCHMARK_MAIN();
