#include "tree/rules.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/string_util.h"

namespace blaeu::tree {

using monet::CompareOp;
using monet::Condition;
using monet::Conjunction;

namespace {

/// Simplifies a path conjunction: collapses stacked numeric bounds per
/// column into at most one lower and one upper bound; keeps categorical
/// conditions as-is (later ones are already subsets under tree semantics).
Conjunction SimplifyPath(const std::vector<Condition>& path) {
  struct Bounds {
    bool has_upper = false;
    double upper = 0;
    CompareOp upper_op = CompareOp::kLe;
    bool has_lower = false;
    double lower = 0;
    CompareOp lower_op = CompareOp::kGt;
  };
  std::map<std::string, Bounds> numeric;
  std::vector<Condition> rest;
  std::vector<std::string> column_order;

  for (const Condition& c : path) {
    bool is_upper = c.kind == Condition::Kind::kCompare &&
                    (c.op == CompareOp::kLe || c.op == CompareOp::kLt);
    bool is_lower = c.kind == Condition::Kind::kCompare &&
                    (c.op == CompareOp::kGt || c.op == CompareOp::kGe);
    if ((is_upper || is_lower) &&
        c.value.type() != monet::DataType::kString) {
      if (numeric.find(c.column) == numeric.end()) {
        column_order.push_back(c.column);
      }
      Bounds& b = numeric[c.column];
      double v = c.value.AsDouble();
      if (is_upper && (!b.has_upper || v < b.upper)) {
        b.has_upper = true;
        b.upper = v;
        b.upper_op = c.op;
      }
      if (is_lower && (!b.has_lower || v > b.lower)) {
        b.has_lower = true;
        b.lower = v;
        b.lower_op = c.op;
      }
    } else {
      rest.push_back(c);
    }
  }

  Conjunction out;
  for (const std::string& col : column_order) {
    const Bounds& b = numeric[col];
    if (b.has_lower) {
      out.Add(Condition::Compare(col, b.lower_op,
                                 monet::Value::Double(b.lower)));
    }
    if (b.has_upper) {
      out.Add(Condition::Compare(col, b.upper_op,
                                 monet::Value::Double(b.upper)));
    }
  }
  for (Condition& c : rest) out.Add(std::move(c));
  return out;
}

void Walk(const CartModel& model, const CartNode& node,
          std::vector<Condition>* path, std::vector<LeafRule>* out) {
  if (node.is_leaf) {
    LeafRule rule;
    rule.conditions = SimplifyPath(*path);
    rule.label = node.label;
    rule.count = node.count;
    rule.confidence = node.label < static_cast<int>(node.class_fractions.size())
                          ? node.class_fractions[node.label]
                          : 0.0;
    out->push_back(std::move(rule));
    return;
  }
  path->push_back(model.BranchCondition(node, /*branch=*/true));
  Walk(model, *node.left, path, out);
  path->back() = model.BranchCondition(node, /*branch=*/false);
  Walk(model, *node.right, path, out);
  path->pop_back();
}

}  // namespace

std::vector<LeafRule> ExtractRules(const CartModel& model) {
  std::vector<LeafRule> out;
  std::vector<Condition> path;
  Walk(model, model.root(), &path, &out);
  return out;
}

std::string RulesToString(const std::vector<LeafRule>& rules) {
  std::ostringstream out;
  for (const LeafRule& r : rules) {
    out << "IF " << r.conditions.ToSql() << " THEN class " << r.label << "  ("
        << r.count << " rows, "
        << FormatDouble(100.0 * r.confidence, 3) << "% conf)\n";
  }
  return out.str();
}

}  // namespace blaeu::tree
