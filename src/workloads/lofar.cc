#include "workloads/lofar.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace blaeu::workloads {

using monet::Column;
using monet::DataType;
using monet::Field;
using monet::Schema;
using monet::Table;

namespace {

constexpr size_t kBands = 12;  // observation frequencies, 120-168 MHz
constexpr double kBandMhz[kBands] = {120, 124, 128, 132, 136, 140,
                                     144, 148, 152, 156, 160, 168};

struct SourceClass {
  const char* name;
  double log_flux_mean, log_flux_sd;  // log10 mJy at 144 MHz
  double alpha_mean, alpha_sd;        // spectral index
  double major_mean, major_sd;        // arcsec
  double axis_ratio_mean;             // minor / major
  double compact_mean, compact_sd;    // compactness score
  double snr_mean, snr_sd;
};

constexpr SourceClass kClasses[5] = {
    {"agn_steep", 1.8, 0.5, -0.9, 0.15, 18.0, 6.0, 0.55, 0.35, 0.1, 28, 9},
    {"quasar_flat", 1.4, 0.4, -0.15, 0.12, 4.0, 1.5, 0.9, 0.8, 0.08, 35, 10},
    {"sf_galaxy", 0.6, 0.35, -0.65, 0.1, 11.0, 4.0, 0.7, 0.5, 0.1, 14, 5},
    {"pulsar_like", 0.9, 0.45, -1.6, 0.2, 1.2, 0.4, 0.95, 0.97, 0.02, 22, 8},
    {"artifact", -0.2, 0.6, 0.4, 0.5, 40.0, 18.0, 0.25, 0.05, 0.04, 4, 1.5},
};

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

Dataset MakeLofar(const LofarSpec& spec) {
  Rng rng(spec.seed);
  std::vector<Field> fields = {
      {"source_id", DataType::kInt64},
      {"ra_deg", DataType::kDouble},
      {"dec_deg", DataType::kDouble},
      {"gal_lat_deg", DataType::kDouble},
      {"gal_lon_deg", DataType::kDouble},
  };
  Dataset out;
  out.name = "lofar";
  out.truth.num_clusters = 5;
  out.truth.num_themes = 4;
  out.truth.column_themes = {-1, 0, 0, 0, 0};

  for (size_t b = 0; b < kBands; ++b) {
    fields.push_back({"flux_" + std::to_string(static_cast<int>(kBandMhz[b])) +
                          "mhz_mjy",
                      DataType::kDouble});
    out.truth.column_themes.push_back(1);
  }
  fields.push_back({"spectral_index", DataType::kDouble});
  out.truth.column_themes.push_back(1);
  fields.push_back({"flux_err_mjy", DataType::kDouble});
  out.truth.column_themes.push_back(1);
  fields.push_back({"total_flux_mjy", DataType::kDouble});
  out.truth.column_themes.push_back(1);

  for (const char* name :
       {"major_axis_arcsec", "minor_axis_arcsec", "position_angle_deg",
        "compactness", "elongation"}) {
    fields.push_back({name, DataType::kDouble});
    out.truth.column_themes.push_back(2);
  }
  for (const char* name :
       {"snr", "rms_noise_ujy", "fit_chi2", "n_detections", "mosaic_edge_dist",
        "clean_residual", "astrometry_err_mas", "flag_confused",
        "neighbour_dist_arcsec", "beam_major_ratio", "cal_error_pct",
        "elevation_deg", "obs_duration_h", "pointing_offset_deg"}) {
    fields.push_back({name, DataType::kDouble});
    out.truth.column_themes.push_back(3);
  }
  fields.push_back({"source_class", DataType::kString});
  out.truth.column_themes.push_back(1);

  std::vector<monet::ColumnPtr> columns;
  for (const Field& f : fields) {
    auto col = std::make_shared<Column>(f.type);
    col->Reserve(spec.rows);
    columns.push_back(col);
  }

  std::vector<double> class_weights = {0.28, 0.17, 0.34, 0.09, 0.12};
  for (size_t r = 0; r < spec.rows; ++r) {
    size_t c = rng.NextDiscrete(class_weights);
    out.truth.row_clusters.push_back(static_cast<int>(c));
    const SourceClass& cls = kClasses[c];

    double ra = rng.NextUniform(0.0, 360.0);
    double dec = rng.NextUniform(25.0, 70.0);  // northern survey footprint
    double log_flux144 = rng.NextGaussian(cls.log_flux_mean, cls.log_flux_sd);
    double alpha = rng.NextGaussian(cls.alpha_mean, cls.alpha_sd);
    double major = Clamp(rng.NextGaussian(cls.major_mean, cls.major_sd), 0.3,
                         120.0);
    double minor = major * Clamp(rng.NextGaussian(cls.axis_ratio_mean, 0.1),
                                 0.05, 1.0);
    double compact = Clamp(rng.NextGaussian(cls.compact_mean, cls.compact_sd),
                           0.0, 1.0);
    double snr = Clamp(rng.NextGaussian(cls.snr_mean, cls.snr_sd), 1.0, 200.0);

    size_t i = 0;
    columns[i++]->AppendInt(static_cast<int64_t>(r + 1));
    columns[i++]->AppendDouble(ra);
    columns[i++]->AppendDouble(dec);
    columns[i++]->AppendDouble(rng.NextUniform(-30.0, 80.0));
    columns[i++]->AppendDouble(rng.NextUniform(0.0, 360.0));

    double total = 0.0;
    for (size_t b = 0; b < kBands; ++b) {
      double flux = std::pow(10.0, log_flux144) *
                    std::pow(kBandMhz[b] / 144.0, alpha) *
                    (1.0 + 0.05 * rng.NextGaussian());
      flux = std::max(flux, 0.01);
      total += flux;
      if (rng.NextBernoulli(spec.missing_rate)) {
        columns[i++]->AppendNull();
      } else {
        columns[i++]->AppendDouble(flux);
      }
    }
    columns[i++]->AppendDouble(alpha + 0.03 * rng.NextGaussian());
    columns[i++]->AppendDouble(std::pow(10.0, log_flux144) / snr);
    columns[i++]->AppendDouble(total);

    columns[i++]->AppendDouble(major);
    columns[i++]->AppendDouble(minor);
    columns[i++]->AppendDouble(rng.NextUniform(0.0, 180.0));
    columns[i++]->AppendDouble(compact);
    columns[i++]->AppendDouble(major / std::max(minor, 1e-3));

    columns[i++]->AppendDouble(snr);
    columns[i++]->AppendDouble(Clamp(rng.NextGaussian(70.0, 20.0), 20.0, 400.0));
    columns[i++]->AppendDouble(Clamp(rng.NextGaussian(1.1, 0.4), 0.2, 8.0) *
                               (c == 4 ? 3.0 : 1.0));
    columns[i++]->AppendDouble(static_cast<double>(rng.NextInt(1, 12)));
    columns[i++]->AppendDouble(rng.NextUniform(0.0, 2.0));
    columns[i++]->AppendDouble(Clamp(rng.NextGaussian(0.05, 0.03), 0.0, 0.6) *
                               (c == 4 ? 4.0 : 1.0));
    columns[i++]->AppendDouble(Clamp(rng.NextGaussian(120.0, 60.0), 5.0,
                                     800.0));
    columns[i++]->AppendDouble(c == 4 ? 1.0 : (rng.NextBernoulli(0.05) ? 1.0
                                                                       : 0.0));
    columns[i++]->AppendDouble(Clamp(rng.NextGaussian(95.0, 60.0), 1.0,
                                     600.0));
    columns[i++]->AppendDouble(Clamp(rng.NextGaussian(1.0, 0.15), 0.5, 2.5));
    columns[i++]->AppendDouble(Clamp(rng.NextGaussian(3.0, 1.5), 0.1, 15.0));
    columns[i++]->AppendDouble(rng.NextUniform(20.0, 85.0));
    columns[i++]->AppendDouble(rng.NextUniform(4.0, 10.0));
    columns[i++]->AppendDouble(rng.NextUniform(0.0, 2.5));

    columns[i++]->AppendString(cls.name);
  }
  out.table = *Table::Make(Schema(std::move(fields)), std::move(columns));
  return out;
}

}  // namespace blaeu::workloads
