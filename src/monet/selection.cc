#include "monet/selection.h"

#include <algorithm>
#include <iterator>
#include <numeric>

namespace blaeu::monet {

SelectionVector SelectionVector::All(size_t n) {
  std::vector<uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  return SelectionVector(std::move(rows));
}

SelectionVector SelectionVector::Intersect(
    const SelectionVector& other) const {
  std::vector<uint32_t> out;
  out.reserve(std::min(rows_.size(), other.rows_.size()));
  std::set_intersection(rows_.begin(), rows_.end(), other.rows_.begin(),
                        other.rows_.end(), std::back_inserter(out));
  return SelectionVector(std::move(out));
}

SelectionVector SelectionVector::Union(const SelectionVector& other) const {
  std::vector<uint32_t> out;
  out.reserve(rows_.size() + other.rows_.size());
  std::set_union(rows_.begin(), rows_.end(), other.rows_.begin(),
                 other.rows_.end(), std::back_inserter(out));
  return SelectionVector(std::move(out));
}

uint64_t SelectionVector::Fingerprint() const {
  // FNV-1a over the length followed by every row id, 4 bytes at a time.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h = (h ^ v) * 0x100000001b3ULL;
  };
  mix(static_cast<uint64_t>(rows_.size()));
  for (uint32_t r : rows_) mix(static_cast<uint64_t>(r) + 1);
  return h;
}

SelectionVector SelectionVector::Difference(
    const SelectionVector& other) const {
  std::vector<uint32_t> out;
  out.reserve(rows_.size());
  std::set_difference(rows_.begin(), rows_.end(), other.rows_.begin(),
                      other.rows_.end(), std::back_inserter(out));
  return SelectionVector(std::move(out));
}

}  // namespace blaeu::monet
