#include "cluster/vptree.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

#include "stats/distance.h"

namespace blaeu::cluster {

VpTree::VpTree(const stats::Matrix& data, uint64_t seed) : data_(&data) {
  std::vector<size_t> items(data.rows());
  for (size_t i = 0; i < items.size(); ++i) items[i] = i;
  nodes_.reserve(items.size());
  Rng rng(seed);
  root_ = Build(&items, 0, items.size(), &rng);
}

double VpTree::Distance(size_t a, size_t b) const {
  return stats::EuclideanDistance(data_->RowPtr(a), data_->RowPtr(b),
                                  data_->cols());
}

int VpTree::Build(std::vector<size_t>* items, size_t begin, size_t end,
                  Rng* rng) {
  if (begin >= end) return -1;
  // Random vantage point keeps the tree balanced in expectation.
  size_t pick = begin + rng->NextBounded(end - begin);
  std::swap((*items)[begin], (*items)[pick]);
  size_t vantage = (*items)[begin];

  int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{vantage, 0.0, -1, -1});
  if (end - begin == 1) return node_index;

  // Partition the rest by the median distance to the vantage point.
  size_t mid = begin + 1 + (end - begin - 1) / 2;
  std::nth_element(items->begin() + begin + 1, items->begin() + mid,
                   items->begin() + end, [&](size_t a, size_t b) {
                     return Distance(vantage, a) < Distance(vantage, b);
                   });
  double threshold = Distance(vantage, (*items)[mid]);
  nodes_[node_index].threshold = threshold;
  int inside = Build(items, begin + 1, mid + 1, rng);
  int outside = Build(items, mid + 1, end, rng);
  nodes_[node_index].inside = inside;
  nodes_[node_index].outside = outside;
  return node_index;
}

void VpTree::SearchRadius(int node, size_t query, double radius,
                          std::vector<size_t>* out) const {
  if (node < 0) return;
  const Node& n = nodes_[node];
  double d = Distance(query, n.point);
  if (d <= radius) out->push_back(n.point);
  // Triangle-inequality pruning.
  if (d - radius <= n.threshold) {
    SearchRadius(n.inside, query, radius, out);
  }
  if (d + radius >= n.threshold) {
    SearchRadius(n.outside, query, radius, out);
  }
}

std::vector<size_t> VpTree::RadiusQuery(size_t query, double radius) const {
  std::vector<size_t> out;
  SearchRadius(root_, query, radius, &out);
  std::sort(out.begin(), out.end());
  return out;
}

void VpTree::SearchKnn(int node, size_t query, size_t k,
                       std::vector<std::pair<double, size_t>>* heap) const {
  if (node < 0) return;
  const Node& n = nodes_[node];
  double d = Distance(query, n.point);
  double worst = heap->size() < k ? std::numeric_limits<double>::infinity()
                                  : heap->front().first;
  if (d < worst || heap->size() < k) {
    heap->emplace_back(d, n.point);
    std::push_heap(heap->begin(), heap->end());
    if (heap->size() > k) {
      std::pop_heap(heap->begin(), heap->end());
      heap->pop_back();
    }
    worst = heap->size() < k ? std::numeric_limits<double>::infinity()
                             : heap->front().first;
  }
  // Visit the nearer side first for better pruning.
  bool inside_first = d <= n.threshold;
  for (int pass = 0; pass < 2; ++pass) {
    bool go_inside = (pass == 0) == inside_first;
    worst = heap->size() < k ? std::numeric_limits<double>::infinity()
                             : heap->front().first;
    if (go_inside) {
      if (d - worst <= n.threshold) SearchKnn(n.inside, query, k, heap);
    } else {
      if (d + worst >= n.threshold) SearchKnn(n.outside, query, k, heap);
    }
  }
}

std::vector<size_t> VpTree::KnnQuery(size_t query, size_t k) const {
  std::vector<std::pair<double, size_t>> heap;
  heap.reserve(k + 1);
  SearchKnn(root_, query, k, &heap);
  std::sort(heap.begin(), heap.end());
  std::vector<size_t> out;
  out.reserve(heap.size());
  for (const auto& [d, id] : heap) out.push_back(id);
  return out;
}

double VpTree::KnnDistance(size_t query, size_t k) const {
  assert(k >= 1);
  std::vector<std::pair<double, size_t>> heap;
  heap.reserve(k + 1);
  SearchKnn(root_, query, k, &heap);
  std::sort(heap.begin(), heap.end());
  if (heap.empty()) return 0.0;
  return heap[std::min(k, heap.size()) - 1].first;
}

IndexedDbscanResult DbscanIndexed(const stats::Matrix& data, double eps,
                                  size_t min_points, uint64_t seed) {
  const size_t n = data.rows();
  VpTree tree(data, seed);
  constexpr int kUnvisited = -2, kNoise = -1;
  IndexedDbscanResult out;
  out.labels.assign(n, kUnvisited);
  int cluster = 0;
  for (size_t p = 0; p < n; ++p) {
    if (out.labels[p] != kUnvisited) continue;
    std::vector<size_t> nb = tree.RadiusQuery(p, eps);
    if (nb.size() < min_points) {
      out.labels[p] = kNoise;
      continue;
    }
    out.labels[p] = cluster;
    std::deque<size_t> frontier(nb.begin(), nb.end());
    while (!frontier.empty()) {
      size_t q = frontier.front();
      frontier.pop_front();
      if (out.labels[q] == kNoise) out.labels[q] = cluster;
      if (out.labels[q] != kUnvisited) continue;
      out.labels[q] = cluster;
      std::vector<size_t> qnb = tree.RadiusQuery(q, eps);
      if (qnb.size() >= min_points) {
        frontier.insert(frontier.end(), qnb.begin(), qnb.end());
      }
    }
    ++cluster;
  }
  out.num_clusters = static_cast<size_t>(cluster);
  for (int l : out.labels) {
    if (l == kNoise) ++out.num_noise;
  }
  return out;
}

}  // namespace blaeu::cluster
