#include "core/theme.h"

#include <algorithm>

#include "cluster/kselect.h"
#include "cluster/pam.h"
#include "common/string_util.h"
#include "monet/column_stats.h"

namespace blaeu::core {

using monet::Table;

std::string Theme::Label(size_t max_names) const {
  std::vector<std::string> head;
  for (size_t i = 0; i < names.size() && i < max_names; ++i) {
    head.push_back(names[i]);
  }
  std::string label = Join(head, ", ");
  if (names.size() > max_names) {
    label += ", ... (+" + std::to_string(names.size() - max_names) + ")";
  }
  return label;
}

Result<ThemeSet> DetectThemes(const Table& table,
                              const ThemeOptions& options) {
  // Candidate columns: everything except primary keys.
  std::vector<size_t> columns;
  std::vector<size_t> keys;
  if (options.exclude_primary_keys) {
    keys = monet::DetectPrimaryKeyColumns(table);
  }
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (std::find(keys.begin(), keys.end(), c) == keys.end()) {
      columns.push_back(c);
    }
  }
  if (columns.empty()) return Status::Invalid("no non-key columns");

  // Dependency matrix over the candidate columns only.
  monet::TablePtr view = table.Project(columns);
  BLAEU_ASSIGN_OR_RETURN(auto dep,
                         stats::DependencyMatrix(*view, options.dependency));

  const size_t m = columns.size();
  ThemeSet out;
  std::vector<std::string> names;
  for (size_t i = 0; i < m; ++i) {
    names.push_back(table.schema().field(columns[i]).name);
  }
  out.graph = cluster::Graph(names);
  out.graph_columns = columns;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      out.graph.SetWeight(i, j, dep[i][j]);
    }
  }

  // Partition the graph: PAM on distance = 1 - dependency.
  std::vector<int> labels(m, 0);
  std::vector<size_t> medoids;
  if (m < 3 || options.max_themes < 2) {
    medoids.assign(1, 0);
  } else {
    stats::DistanceMatrix dist(m);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        dist.Set(i, j, 1.0 - dep[i][j]);
      }
    }
    cluster::KSelectOptions ks;
    ks.k_min = std::max<size_t>(2, options.min_themes);
    ks.k_max = std::min(options.max_themes, m - 1);
    BLAEU_ASSIGN_OR_RETURN(cluster::KSelectResult result,
                           cluster::SelectKWithPam(dist, ks));
    labels = result.best.labels;
    medoids = result.best.medoids;
    out.silhouette = result.best_score;
  }

  // Assemble themes.
  out.themes.resize(medoids.size());
  for (size_t t = 0; t < medoids.size(); ++t) {
    out.themes[t].id = static_cast<int>(t);
    out.themes[t].medoid_column = columns[medoids[t]];
  }
  for (size_t i = 0; i < m; ++i) {
    Theme& theme = out.themes[labels[i]];
    theme.columns.push_back(columns[i]);
    theme.names.push_back(names[i]);
  }
  // Cohesion: mean pairwise dependency inside the theme.
  for (size_t t = 0; t < out.themes.size(); ++t) {
    Theme& theme = out.themes[t];
    double total = 0.0;
    size_t pairs = 0;
    for (size_t a = 0; a < theme.columns.size(); ++a) {
      for (size_t b = a + 1; b < theme.columns.size(); ++b) {
        size_t ga = std::find(columns.begin(), columns.end(),
                              theme.columns[a]) -
                    columns.begin();
        size_t gb = std::find(columns.begin(), columns.end(),
                              theme.columns[b]) -
                    columns.begin();
        total += dep[ga][gb];
        ++pairs;
      }
    }
    // Singleton themes carry no dependency signal; rank them last rather
    // than letting the vacuous "1.0" cohesion put them first.
    theme.cohesion = pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
  }
  std::sort(out.themes.begin(), out.themes.end(),
            [](const Theme& a, const Theme& b) {
              if (a.cohesion != b.cohesion) return a.cohesion > b.cohesion;
              return a.id < b.id;
            });
  for (size_t t = 0; t < out.themes.size(); ++t) {
    out.themes[t].id = static_cast<int>(t);
  }
  return out;
}

}  // namespace blaeu::core
