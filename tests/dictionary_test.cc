// Dictionary-encoded string columns: interning, gather, null handling, CSV
// load equivalence, collision-free group-by keys, and the property that the
// dictionary fast paths through preprocessing are byte-identical to the
// generic string paths.
#include "monet/dictionary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/map_builder.h"
#include "core/preprocess.h"
#include "core/render.h"
#include "monet/aggregate.h"
#include "monet/csv.h"
#include "monet/predicate.h"
#include "monet/table.h"
#include "workloads/hollywood.h"

namespace blaeu::monet {
namespace {

TEST(DictionaryTest, InternRoundTripAndHits) {
  Dictionary dict;
  EXPECT_TRUE(dict.empty());
  int32_t a = dict.Intern("alpha");
  int32_t b = dict.Intern("beta");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(dict.Intern("alpha"), a);  // same code, no new entry
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.value(a), "alpha");
  EXPECT_EQ(dict.value(b), "beta");
  EXPECT_EQ(dict.intern_hits(), 1u);
  EXPECT_EQ(dict.Find("beta"), b);
  EXPECT_EQ(dict.Find("gamma"), Dictionary::kNullCode);
  EXPECT_GT(dict.bytes(), 0u);
}

TEST(DictionaryTest, ManyEntriesKeepStableViews) {
  // The index keys are views into the pool; growth must not invalidate
  // them (deque storage). 10k entries force many internal reallocations.
  Dictionary dict;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(dict.Intern("value_" + std::to_string(i)), i);
  }
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(dict.Find("value_" + std::to_string(i)), i);
    ASSERT_EQ(dict.value(i), "value_" + std::to_string(i));
  }
}

TEST(DictionaryColumnTest, AppendInternsAndNullsGetNullCode) {
  Column col(DataType::kString);
  col.AppendString("x");
  col.AppendString("y");
  col.AppendNull();
  col.AppendString("x");
  ASSERT_EQ(col.size(), 4u);
  EXPECT_EQ(col.codes()[0], col.codes()[3]);  // repeated value, one code
  EXPECT_NE(col.codes()[0], col.codes()[1]);
  EXPECT_EQ(col.codes()[2], Dictionary::kNullCode);
  EXPECT_EQ(col.dictionary()->size(), 2u);
  EXPECT_EQ(col.StringAt(0), "x");
  EXPECT_EQ(col.StringAt(2), "");  // null renders empty by reference
  EXPECT_TRUE(col.GetValue(2).is_null());
  EXPECT_EQ(col.GetValue(1).AsString(), "y");
}

TEST(DictionaryColumnTest, TakeSharesDictionaryAndCopiesCodes) {
  Column col(DataType::kString);
  col.AppendString("a");
  col.AppendString("b");
  col.AppendNull();
  col.AppendString("c");
  Column taken = col.Take({3, 1, 1, 2});
  // Same dictionary object: codes stay comparable across the gather.
  EXPECT_EQ(taken.dictionary().get(), col.dictionary().get());
  ASSERT_EQ(taken.size(), 4u);
  EXPECT_EQ(taken.codes()[0], col.codes()[3]);
  EXPECT_EQ(taken.codes()[1], col.codes()[1]);
  EXPECT_EQ(taken.codes()[2], col.codes()[1]);
  EXPECT_EQ(taken.codes()[3], Dictionary::kNullCode);
  EXPECT_EQ(taken.StringAt(0), "c");
  EXPECT_EQ(taken.StringAt(1), "b");
  EXPECT_TRUE(taken.IsNull(3));
}

TEST(DictionaryColumnTest, CsvLoadInternsStrings) {
  std::istringstream in(
      "city,pop\n"
      "lyon,500\n"
      "paris,2100\n"
      "lyon,500\n"
      ",0\n"
      "paris,2100\n");
  auto table = ReadCsv(in, {});
  ASSERT_TRUE(table.ok());
  const Column& city = *(*table)->column(0);
  ASSERT_EQ(city.type(), DataType::kString);
  EXPECT_EQ(city.dictionary()->size(), 2u);  // lyon, paris
  EXPECT_EQ(city.codes()[0], city.codes()[2]);
  EXPECT_EQ(city.codes()[1], city.codes()[4]);
  EXPECT_EQ(city.codes()[3], Dictionary::kNullCode);
  EXPECT_EQ(city.StringAt(4), "paris");
}

TEST(DictionaryColumnTest, PredicateOnAbsentLiteral) {
  // A literal that was never interned must behave like plain comparison:
  // Eq matches nothing, Ne matches every non-null, IN skips it.
  TableBuilder b(Schema({{"s", DataType::kString}}));
  ASSERT_TRUE(b.AppendRow({Value::Str("a")}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Str("b")}).ok());
  TablePtr t = *b.Finish();
  auto eq = Conjunction({Condition::Compare("s", CompareOp::kEq,
                                            Value::Str("missing"))})
                .Evaluate(*t);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq->rows().empty());
  auto ne = Conjunction({Condition::Compare("s", CompareOp::kNe,
                                            Value::Str("missing"))})
                .Evaluate(*t);
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne->rows(), (std::vector<uint32_t>{0, 2}));
  auto in = Conjunction({Condition::InSet("s", {"missing", "b"})}).Evaluate(*t);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in->rows(), (std::vector<uint32_t>{2}));
}

TEST(GroupByKeyTest, SeparatorBytesInValuesDoNotCollide) {
  // Regression: the old group key joined renderings with '\x02', so the
  // tuples ("a\x02", "b") and ("a", "\x02b") hashed identically and their
  // rows were merged into one group.
  TableBuilder b(Schema({{"k1", DataType::kString},
                         {"k2", DataType::kString},
                         {"v", DataType::kInt64}}));
  ASSERT_TRUE(b.AppendRow({Value::Str("a\x02"), Value::Str("b"),
                           Value::Int(1)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Str("a"), Value::Str("\x02b"),
                           Value::Int(10)}).ok());
  TablePtr t = *b.Finish();
  auto grouped = GroupBy(*t, {"k1", "k2"}, {{AggFn::kCount, "", "n"}});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ((*grouped)->num_rows(), 2u);
}

TEST(GroupByKeyTest, NullSentinelStringDoesNotCollideWithNull) {
  // Regression: a cell whose VALUE is the old "\x01NULL" sentinel used to
  // merge with an actual NULL key.
  TableBuilder b(Schema({{"k", DataType::kString}, {"v", DataType::kInt64}}));
  ASSERT_TRUE(b.AppendRow({Value::Str("\x01NULL"), Value::Int(1)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Null(), Value::Int(2)}).ok());
  TablePtr t = *b.Finish();
  auto grouped = GroupBy(*t, {"k"}, {{AggFn::kCount, "", "n"}});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ((*grouped)->num_rows(), 2u);
}

TEST(GroupByKeyTest, CountDistinctOnStringsUsesCodes) {
  TableBuilder b(Schema({{"k", DataType::kString}, {"s", DataType::kString}}));
  ASSERT_TRUE(b.AppendRow({Value::Str("g"), Value::Str("x")}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Str("g"), Value::Str("y")}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Str("g"), Value::Str("x")}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Str("g"), Value::Null()}).ok());
  TablePtr t = *b.Finish();
  auto grouped = GroupBy(*t, {"k"}, {{AggFn::kCountDistinct, "s", "d"}});
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ((*grouped)->num_rows(), 1u);
  EXPECT_EQ((*grouped)->column(1)->GetValue(0).AsInt(), 2);
}

// -- Dictionary-path vs string-path equivalence ---------------------------

TEST(DictionaryEquivalenceTest, PreprocessMatricesAreBitIdentical) {
  auto data = workloads::MakeHollywood({});  // categorical-heavy workload
  const Table& table = *data.table;
  SelectionVector all = SelectionVector::All(table.num_rows());
  for (auto encoding : {core::CategoricalEncoding::kDummy,
                        core::CategoricalEncoding::kGower}) {
    core::PreprocessOptions fast;
    fast.encoding = encoding;
    core::PreprocessOptions slow = fast;
    slow.use_dictionary = false;
    auto a = core::Preprocess(table, all, fast);
    auto b = core::Preprocess(table, all, slow);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->feature_info.size(), b->feature_info.size());
    for (size_t f = 0; f < a->feature_info.size(); ++f) {
      EXPECT_EQ(a->feature_info[f].category, b->feature_info[f].category);
    }
    ASSERT_EQ(a->features.rows(), b->features.rows());
    ASSERT_EQ(a->features.cols(), b->features.cols());
    for (size_t i = 0; i < a->features.rows(); ++i) {
      for (size_t j = 0; j < a->features.cols(); ++j) {
        const double x = a->features.At(i, j);
        const double y = b->features.At(i, j);
        if (std::isnan(x)) {
          ASSERT_TRUE(std::isnan(y)) << "row " << i << " col " << j;
        } else {
          ASSERT_EQ(x, y) << "row " << i << " col " << j;
        }
      }
    }
  }
}

TEST(DictionaryEquivalenceTest, MapJsonIsByteIdentical) {
  workloads::HollywoodSpec spec;
  spec.rows = 600;
  auto data = workloads::MakeHollywood(spec);
  core::MapOptions fast;
  fast.sample_size = 300;
  fast.k_max = 4;
  core::MapOptions slow = fast;
  slow.preprocess.use_dictionary = false;
  auto a = core::BuildMap(*data.table, fast);
  auto b = core::BuildMap(*data.table, slow);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(core::CanonicalMapJson(*a), core::CanonicalMapJson(*b));
}

}  // namespace
}  // namespace blaeu::monet
