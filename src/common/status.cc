#include "common/status.h"

namespace blaeu {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kKeyError:
      return "KeyError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kIndexError:
      return "IndexError";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace blaeu
