// Hollywood tour: the paper's first demo scenario (§4.2).
//
// "Which films are the most profitable? Which are those that fail? How do
// critics and commercial success relate to each other?" — answered by
// navigating the cluster map instead of writing SQL.
//
// Run:  ./hollywood_tour

#include <cstdio>

#include "core/navigation.h"
#include "core/render.h"
#include "monet/column_stats.h"
#include "workloads/hollywood.h"

using namespace blaeu;

namespace {

/// Leaf whose region has the highest mean of `column` over the current
/// selection. Returns -1 when nothing qualifies.
int LeafWithExtremeMean(const core::Session& session,
                        const std::string& column, bool maximize) {
  const core::DataMap& map = session.current().map;
  int best = -1;
  double best_mean = maximize ? -1e300 : 1e300;
  for (int leaf : map.LeafIds()) {
    auto highlight = session.Highlight(column);
    if (!highlight.ok()) return -1;
    for (const core::RegionHighlight& r : highlight->regions) {
      if (r.region_id != leaf || r.tuple_count < 10) continue;
      if ((maximize && r.stats.mean > best_mean) ||
          (!maximize && r.stats.mean < best_mean)) {
        best_mean = r.stats.mean;
        best = leaf;
      }
    }
  }
  return best;
}

}  // namespace

int main() {
  auto data = workloads::MakeHollywood();
  std::printf("Hollywood dataset: %zu movies, %zu columns (2007-2013)\n\n",
              data.table->num_rows(), data.table->num_columns());

  core::SessionOptions options;
  options.map.sample_size = 900;
  auto session = *core::Session::Start(data.table, "movies", options);

  std::printf("%s\n", core::RenderThemeList(session.themes()).c_str());

  // Find the money theme (budget/gross) and map it.
  int money = -1;
  for (const core::Theme& t : session.themes().themes) {
    for (const std::string& name : t.names) {
      if (name == "worldwide_gross_musd") money = t.id;
    }
  }
  if (money >= 0) {
    session.SelectTheme(static_cast<size_t>(money)).ok();
  }
  std::printf("=== Map over the money columns ===\n%s\n",
              core::RenderMap(session.current().map).c_str());

  // Q1: which films are the most profitable? Zoom into the region with the
  // highest mean profitability and inspect it.
  int profitable = LeafWithExtremeMean(session, "profitability", true);
  if (profitable >= 0 && session.Zoom(profitable).ok()) {
    std::printf("=== Most profitable region (zoomed) ===\n");
    auto genres = session.Highlight("genre");
    if (genres.ok()) {
      std::printf("%s", core::RenderHighlight(*genres).c_str());
    }
    auto rows = session.Inspect(0, 5);
    if (rows.ok()) {
      std::printf("\nSample tuples:\n%s\n", (*rows)->ToString(5).c_str());
    }
    std::printf("Query: %s\n\n", session.CurrentQuery().ToSql().c_str());
    session.Rollback().ok();
  }

  // Q2: which films fail? Lowest mean profitability region.
  int flops = LeafWithExtremeMean(session, "profitability", false);
  if (flops >= 0 && session.Zoom(flops).ok()) {
    std::printf("=== Flop region (zoomed) ===\n");
    auto studios = session.Highlight("studio");
    if (studios.ok()) {
      std::printf("%s", core::RenderHighlight(*studios).c_str());
    }
    std::printf("Query: %s\n\n", session.CurrentQuery().ToSql().c_str());
    session.Rollback().ok();
  }

  // Q3: critics vs commercial success — project the whole table onto the
  // reception theme and compare the money highlight across its regions.
  int reception = -1;
  for (const core::Theme& t : session.themes().themes) {
    for (const std::string& name : t.names) {
      if (name == "rt_critics") reception = t.id;
    }
  }
  if (reception >= 0 && session.Project(static_cast<size_t>(reception)).ok()) {
    std::printf("=== Map over the reception columns ===\n%s\n",
                core::RenderMap(session.current().map).c_str());
    auto gross = session.Highlight("worldwide_gross_musd");
    if (gross.ok()) {
      std::printf("How commercial success distributes across the critic "
                  "clusters:\n%s\n",
                  core::RenderHighlight(*gross).c_str());
    }
  }

  std::printf("%s", core::RenderBreadcrumbs(session).c_str());
  return 0;
}
