#include "workloads/gaussian.h"

#include <cmath>

#include "common/rng.h"

namespace blaeu::workloads {

using monet::Column;
using monet::DataType;
using monet::Field;
using monet::Schema;
using monet::Table;

namespace {

/// Center of cluster c in a `dims`-dimensional space: coordinates cycle
/// through +/- separation patterns so any two centers differ by at least
/// `separation` in some coordinate.
std::vector<double> ClusterCenter(size_t c, size_t dims, double separation) {
  std::vector<double> center(dims, 0.0);
  for (size_t d = 0; d < dims; ++d) {
    // Gray-code-ish placement: bit d of c decides the sign, the cluster
    // index shifts the magnitude so centers stay distinct for any k.
    double sign = ((c >> (d % 8)) & 1) ? 1.0 : -1.0;
    center[d] = sign * separation *
                (1.0 + 0.25 * static_cast<double>(c % (d + 2)));
  }
  return center;
}

}  // namespace

Dataset MakeGaussianMixture(const MixtureSpec& spec) {
  Rng rng(spec.seed);
  std::vector<double> weights = spec.weights;
  if (weights.empty()) weights.assign(spec.num_clusters, 1.0);

  std::vector<std::vector<double>> centers;
  centers.reserve(spec.num_clusters);
  for (size_t c = 0; c < spec.num_clusters; ++c) {
    centers.push_back(ClusterCenter(c, spec.dims, spec.separation));
  }

  std::vector<Field> fields;
  if (spec.with_id) fields.push_back({"row_id", DataType::kInt64});
  for (size_t d = 0; d < spec.dims; ++d) {
    fields.push_back({"x" + std::to_string(d), DataType::kDouble});
  }
  if (spec.with_categorical) fields.push_back({"group", DataType::kString});

  std::vector<monet::ColumnPtr> columns;
  for (const Field& f : fields) {
    auto col = std::make_shared<Column>(f.type);
    col->Reserve(spec.rows);
    columns.push_back(col);
  }

  Dataset out;
  out.name = "gaussian_mixture";
  out.truth.num_clusters = spec.num_clusters;
  out.truth.num_themes = 1;
  out.truth.row_clusters.reserve(spec.rows);
  for (const Field& f : fields) {
    out.truth.column_themes.push_back(
        (f.name == "row_id") ? -1 : 0);
  }

  for (size_t r = 0; r < spec.rows; ++r) {
    size_t c = rng.NextDiscrete(weights);
    out.truth.row_clusters.push_back(static_cast<int>(c));
    size_t col_idx = 0;
    if (spec.with_id) {
      columns[col_idx++]->AppendInt(static_cast<int64_t>(r));
    }
    for (size_t d = 0; d < spec.dims; ++d) {
      if (spec.null_rate > 0 && rng.NextBernoulli(spec.null_rate)) {
        columns[col_idx++]->AppendNull();
      } else {
        columns[col_idx++]->AppendDouble(centers[c][d] + rng.NextGaussian());
      }
    }
    if (spec.with_categorical) {
      // Correlated with the cluster, with 10% label noise.
      size_t shown = rng.NextBernoulli(0.1)
                         ? rng.NextBounded(spec.num_clusters)
                         : c;
      columns[col_idx++]->AppendString("g" + std::to_string(shown));
    }
  }
  out.table = *Table::Make(Schema(std::move(fields)), std::move(columns));
  return out;
}

Dataset MakeTwoThemeMixture(size_t rows, size_t dims_per_theme,
                            size_t clusters_a, size_t clusters_b,
                            uint64_t seed) {
  MixtureSpec a;
  a.rows = rows;
  a.dims = dims_per_theme;
  a.num_clusters = clusters_a;
  a.seed = seed;
  MixtureSpec b = a;
  b.num_clusters = clusters_b;
  b.seed = seed + 1;
  Dataset da = MakeGaussianMixture(a);
  Dataset db = MakeGaussianMixture(b);

  std::vector<Field> fields;
  std::vector<monet::ColumnPtr> columns;
  Dataset out;
  out.name = "two_theme_mixture";
  out.truth.num_clusters = clusters_a;  // cluster truth follows theme A
  out.truth.num_themes = 2;
  out.truth.row_clusters = da.truth.row_clusters;
  for (size_t d = 0; d < dims_per_theme; ++d) {
    fields.push_back({"a" + std::to_string(d), DataType::kDouble});
    columns.push_back(
        da.table->column(d));
    out.truth.column_themes.push_back(0);
  }
  for (size_t d = 0; d < dims_per_theme; ++d) {
    fields.push_back({"b" + std::to_string(d), DataType::kDouble});
    columns.push_back(
        db.table->column(d));
    out.truth.column_themes.push_back(1);
  }
  out.table = *Table::Make(Schema(std::move(fields)), std::move(columns));
  return out;
}

}  // namespace blaeu::workloads
