#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "obs/metrics.h"

namespace blaeu {

namespace {

/// Non-zero while this thread is executing chunks of some ParallelFor.
/// Nested parallel calls check it and run inline: the enclosing loop
/// already owns the thread budget, and a worker blocking on an inner loop's
/// completion could deadlock the pool.
thread_local int tls_parallel_depth = 0;

}  // namespace

size_t NumThreadsFromEnv(const char* value, size_t fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0) return fallback;
  return static_cast<size_t>(parsed);
}

size_t DefaultNumThreads() {
  static const size_t cached = [] {
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    return NumThreadsFromEnv(std::getenv("BLAEU_NUM_THREADS"), hw);
  }();
  return cached;
}

size_t EffectiveNumThreads(size_t requested) {
  return requested == 0 ? DefaultNumThreads() : requested;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();  // leaked: see class comment
  return *pool;
}

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? DefaultNumThreads() : num_threads) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return started_;
}

void ThreadPool::EnsureStarted() {
  std::call_once(start_once_, [this] {
    workers_.reserve(num_threads_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      started_ = true;
    }
    for (size_t i = 0; i < num_threads_; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
    obs::MetricsRegistry::Global()
        .gauge("common.parallel.workers")
        ->Set(static_cast<double>(num_threads_));
  });
}

void ThreadPool::Submit(std::function<void()> fn) {
  EnsureStarted();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one ParallelFor: heap-allocated and reference-counted so
/// a helper task that is dequeued after the loop already finished (every
/// chunk claimed by other participants) still has valid state to inspect.
struct ForState {
  ForState(size_t begin, size_t end, size_t grain, size_t num_chunks,
           std::function<void(size_t, size_t)> body)
      : begin(begin),
        end(end),
        grain(grain),
        num_chunks(num_chunks),
        body(std::move(body)) {}

  const size_t begin;
  const size_t end;
  const size_t grain;
  const size_t num_chunks;
  const std::function<void(size_t, size_t)> body;

  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> completed{0};
  std::atomic<bool> cancelled{false};

  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;  // guarded by mu; first exception wins

  /// Claims and runs chunks until none remain. Called by the loop's caller
  /// and by every helper task.
  void RunChunks() {
    ++tls_parallel_depth;
    for (;;) {
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      if (!cancelled.load(std::memory_order_relaxed)) {
        try {
          const size_t lo = begin + c * grain;
          const size_t hi = std::min(end, lo + grain);
          body(lo, hi);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mu);
            if (!error) error = std::current_exception();
          }
          cancelled.store(true, std::memory_order_relaxed);
        }
      }
      // acq_rel: releases this chunk's writes to whoever observes the final
      // count (the waiting caller), and pairs with other chunks' releases.
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        std::lock_guard<std::mutex> lock(mu);  // pin the waiter's predicate
        done_cv.notify_all();
      }
    }
    --tls_parallel_depth;
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [this] {
      return completed.load(std::memory_order_acquire) == num_chunks;
    });
  }
};

}  // namespace

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body,
                 size_t num_threads, ThreadPool* pool) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t num_chunks = (end - begin + grain - 1) / grain;

  ThreadPool& target = pool != nullptr ? *pool : ThreadPool::Global();
  size_t threads = num_threads == 0 ? target.num_threads() : num_threads;
  threads = std::min(threads, num_chunks);

  if (threads <= 1 || tls_parallel_depth > 0) {
    // Inline path: same chunking (the determinism contract), no pool, no
    // allocation, exceptions propagate naturally.
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t lo = begin + c * grain;
      body(lo, std::min(end, lo + grain));
    }
    return;
  }

  static obs::Counter* tasks =
      obs::MetricsRegistry::Global().counter("common.parallel.tasks");
  tasks->Add(static_cast<int64_t>(num_chunks));

  auto state = std::make_shared<ForState>(begin, end, grain, num_chunks, body);
  for (size_t i = 0; i + 1 < threads; ++i) {
    target.Submit([state] { state->RunChunks(); });
  }
  state->RunChunks();
  state->Wait();
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace blaeu
