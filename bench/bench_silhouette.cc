// Experiment C3: the Monte-Carlo silhouette (paper §3: "it computes the
// silhouette scores in a Monte-Carlo fashion: it extracts a few sub-samples
// ... and averages the results").
//
// Reports latency of the exact O(n^2) silhouette vs the Monte-Carlo
// estimator, with the absolute estimation error as a counter, across table
// sizes and sub-sample budgets.

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.h"
#include "stats/silhouette.h"

using namespace blaeu;

namespace {

struct Fixture {
  stats::Matrix data;
  std::vector<int> labels;
  double exact = 0.0;  // reference value, computed once
};

const Fixture& BlobsCached(size_t n) {
  static std::map<size_t, Fixture>* cache = new std::map<size_t, Fixture>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    Rng rng(n);
    Fixture f;
    f.data = stats::Matrix(n, 4);
    f.labels.resize(n);
    for (size_t i = 0; i < n; ++i) {
      int c = static_cast<int>(i % 3);
      f.labels[i] = c;
      for (size_t d = 0; d < 4; ++d) {
        f.data.At(i, d) = rng.NextGaussian(6.0 * c, 1.0);
      }
    }
    f.exact = stats::MeanSilhouetteEuclidean(f.data, f.labels);
    it = cache->emplace(n, std::move(f)).first;
  }
  return it->second;
}

void BM_ExactSilhouette(benchmark::State& state) {
  const Fixture& f = BlobsCached(static_cast<size_t>(state.range(0)));
  double value = 0;
  for (auto _ : state) {
    value = stats::MeanSilhouetteEuclidean(f.data, f.labels);
    benchmark::DoNotOptimize(value);
  }
  state.counters["silhouette"] = value;
}

void BM_MonteCarloSilhouette(benchmark::State& state) {
  const Fixture& f = BlobsCached(static_cast<size_t>(state.range(0)));
  stats::MonteCarloSilhouetteOptions opt;
  opt.num_subsamples = static_cast<size_t>(state.range(1));
  opt.subsample_size = 200;
  double value = 0;
  for (auto _ : state) {
    opt.seed++;
    value = stats::MonteCarloSilhouette(f.data, f.labels, opt);
    benchmark::DoNotOptimize(value);
  }
  state.counters["silhouette"] = value;
  state.counters["abs_error"] = std::fabs(value - f.exact);
}

BENCHMARK(BM_ExactSilhouette)
    ->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

// (n, num_subsamples)
BENCHMARK(BM_MonteCarloSilhouette)
    ->Args({500, 5})->Args({1000, 5})->Args({2000, 5})->Args({4000, 5})
    ->Args({4000, 2})->Args({4000, 10})
    ->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
