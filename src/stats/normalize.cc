#include "stats/normalize.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace blaeu::stats {

Normalizer Normalizer::ZScore(const std::vector<double>& values) {
  if (values.empty()) return Normalizer(0.0, 1.0);
  double mean = std::accumulate(values.begin(), values.end(), 0.0) /
                static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  double stddev = var > 0 ? std::sqrt(var) : 0.0;
  if (stddev == 0.0) return Normalizer(mean, 1.0);
  return Normalizer(mean, 1.0 / stddev);
}

Normalizer Normalizer::MinMax(const std::vector<double>& values) {
  if (values.empty()) return Normalizer(0.0, 1.0);
  auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  if (*mx == *mn) return Normalizer(*mn, 1.0);
  return Normalizer(*mn, 1.0 / (*mx - *mn));
}

}  // namespace blaeu::stats
