// Unit tests for the VP-tree index and index-backed DBSCAN.
#include "cluster/vptree.h"

#include <gtest/gtest.h>

#include <set>

#include "cluster/dbscan.h"
#include "common/rng.h"
#include "stats/distance.h"
#include "stats/metrics.h"

namespace blaeu::cluster {
namespace {

using stats::Matrix;

Matrix RandomPoints(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  Matrix data(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t f = 0; f < dims; ++f) data.At(i, f) = rng.NextGaussian();
  }
  return data;
}

/// Brute-force radius query for verification.
std::vector<size_t> BruteRadius(const Matrix& data, size_t q, double r) {
  std::vector<size_t> out;
  for (size_t i = 0; i < data.rows(); ++i) {
    if (stats::EuclideanDistance(data.RowPtr(q), data.RowPtr(i),
                                 data.cols()) <= r) {
      out.push_back(i);
    }
  }
  return out;
}

TEST(VpTreeTest, RadiusQueryMatchesBruteForce) {
  Matrix data = RandomPoints(300, 4, 1);
  VpTree tree(data);
  for (size_t q = 0; q < 300; q += 23) {
    for (double r : {0.5, 1.0, 2.0, 5.0}) {
      EXPECT_EQ(tree.RadiusQuery(q, r), BruteRadius(data, q, r))
          << "q=" << q << " r=" << r;
    }
  }
}

TEST(VpTreeTest, KnnMatchesBruteForce) {
  Matrix data = RandomPoints(200, 3, 2);
  VpTree tree(data);
  for (size_t q = 0; q < 200; q += 17) {
    for (size_t k : {1ul, 5ul, 20ul}) {
      std::vector<size_t> knn = tree.KnnQuery(q, k);
      ASSERT_EQ(knn.size(), k);
      EXPECT_EQ(knn[0], q);  // self at distance 0
      // Verify against a brute-force sort.
      std::vector<std::pair<double, size_t>> all;
      for (size_t i = 0; i < 200; ++i) {
        all.emplace_back(stats::EuclideanDistance(data.RowPtr(q),
                                                  data.RowPtr(i), 3),
                         i);
      }
      std::sort(all.begin(), all.end());
      for (size_t i = 0; i < k; ++i) {
        EXPECT_DOUBLE_EQ(
            stats::EuclideanDistance(data.RowPtr(q), data.RowPtr(knn[i]), 3),
            all[i].first);
      }
    }
  }
}

TEST(VpTreeTest, KnnDistanceMatchesQuery) {
  Matrix data = RandomPoints(150, 2, 3);
  VpTree tree(data);
  for (size_t q = 0; q < 150; q += 31) {
    std::vector<size_t> knn = tree.KnnQuery(q, 6);
    double d = tree.KnnDistance(q, 6);
    EXPECT_DOUBLE_EQ(
        d, stats::EuclideanDistance(data.RowPtr(q), data.RowPtr(knn[5]), 2));
  }
}

TEST(VpTreeTest, SinglePoint) {
  Matrix data(1, 2);
  VpTree tree(data);
  EXPECT_EQ(tree.RadiusQuery(0, 1.0), (std::vector<size_t>{0}));
  EXPECT_EQ(tree.KnnQuery(0, 1), (std::vector<size_t>{0}));
}

TEST(VpTreeTest, DuplicatePointsAllFound) {
  Matrix data(10, 2);  // all at the origin
  VpTree tree(data);
  EXPECT_EQ(tree.RadiusQuery(3, 0.0).size(), 10u);
}

TEST(IndexedDbscanTest, AgreesWithMatrixDbscan) {
  Rng rng(4);
  Matrix data(250, 2);
  for (size_t i = 0; i < 250; ++i) {
    double cx = (i % 3) * 10.0;
    data.At(i, 0) = rng.NextGaussian(cx, 0.4);
    data.At(i, 1) = rng.NextGaussian(0.0, 0.4);
  }
  DbscanOptions opt;
  opt.eps = 1.2;
  opt.min_points = 4;
  auto matrix_result = *Dbscan(stats::DistanceMatrix::Euclidean(data), opt);
  IndexedDbscanResult indexed =
      DbscanIndexed(data, opt.eps, opt.min_points);
  EXPECT_EQ(indexed.num_clusters, matrix_result.num_clusters);
  EXPECT_EQ(indexed.num_noise, matrix_result.num_noise);
  // Same partition up to relabeling; compare only core/border points.
  std::vector<int> a, b;
  for (size_t i = 0; i < 250; ++i) {
    if (matrix_result.labels[i] >= 0 && indexed.labels[i] >= 0) {
      a.push_back(matrix_result.labels[i]);
      b.push_back(indexed.labels[i]);
    }
    // Noise agrees exactly.
    EXPECT_EQ(matrix_result.labels[i] < 0, indexed.labels[i] < 0);
  }
  EXPECT_DOUBLE_EQ(stats::AdjustedRandIndex(a, b), 1.0);
}

TEST(IndexedDbscanTest, ScalesToLargerInputs) {
  Rng rng(5);
  Matrix data(5000, 3);
  std::vector<int> truth;
  for (size_t i = 0; i < 5000; ++i) {
    int c = static_cast<int>(i % 4);
    truth.push_back(c);
    for (size_t f = 0; f < 3; ++f) {
      data.At(i, f) = rng.NextGaussian(8.0 * ((c >> f) & 1), 0.5);
    }
  }
  IndexedDbscanResult result = DbscanIndexed(data, 1.5, 5);
  EXPECT_EQ(result.num_clusters, 4u);
  std::vector<int> labels = result.labels;
  for (auto& l : labels) {
    if (l < 0) l = 99;  // noise bucket for ARI
  }
  EXPECT_GT(stats::AdjustedRandIndex(labels, truth), 0.95);
}

}  // namespace
}  // namespace blaeu::cluster
