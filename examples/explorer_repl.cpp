// Interactive explorer REPL: the terminal stand-in for Blaeu's web UI
// (Figures 5 and 6). Keyboard-driven navigation over any CSV file or over
// the built-in demo datasets.
//
// Run:  ./explorer_repl [csv_path | hollywood | oecd | lofar]
//
// Commands:
//   themes              list themes (Figure 5)
//   select <i>          map the current selection on theme i
//   map                 redraw the current map (Figure 6)
//   zoom <region>       drill into a region
//   project <i>         re-map the selection on theme i's columns
//   highlight <column>  summarize a column per region
//   detail <column>     per-region histograms / frequency bars
//   scatter <x> <y>     per-region density scatter of two numeric columns
//   annotate <region> <note...>   attach a note to a region
//   suggest             rank themes for the current selection
//   inspect <region>    show sample tuples of a region
//   sql                 print the implicit Select-Project query
//   history             show the breadcrumb trail
//   rollback            undo the last action
//   json                dump the current map as JSON
//   stats               per-session and process-wide metrics (JSON)
//   stats --format=openmetrics      Prometheus text exposition of the metrics
//   stats --format=html [path]      self-contained HTML perf report
//   flightlog [n]       last n flight-recorder events (default: everything)
//   flightlog dump <path>           dump the flight log as JSON to <path>
//   trace <path>        dump a Chrome trace of all spans so far to <path>
//   help                this text
//   quit                exit

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include <fstream>

#include "common/string_util.h"
#include "core/explorer.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/atlas.h"
#include "core/report.h"
#include "core/suggest.h"
#include "core/render.h"
#include "workloads/hollywood.h"
#include "workloads/lofar.h"
#include "workloads/oecd.h"

using namespace blaeu;

namespace {

void PrintHelp() {
  std::printf(
      "commands: themes | select <i> | map | zoom <r> | project <i> |\n"
      "          highlight <col> | detail <col> | scatter <x> <y> |\n"
      "          annotate <r> <note> | suggest | atlas | inspect <r> |\n"
      "          sql | history | rollback | json | session |\n"
      "          stats [--format=openmetrics|html [path]] |\n"
      "          flightlog [n] | flightlog dump <path> |\n"
      "          trace <path> | export <dir> | help | quit\n");
}

monet::TablePtr LoadDataset(const std::string& arg, std::string* name) {
  if (arg == "hollywood") {
    *name = "hollywood";
    return workloads::MakeHollywood().table;
  }
  if (arg == "oecd") {
    workloads::OecdSpec spec;
    spec.rows = 3000;  // keep the REPL snappy
    spec.indicator_columns = 60;
    *name = "oecd";
    return workloads::MakeOecd(spec).table;
  }
  if (arg == "lofar") {
    workloads::LofarSpec spec;
    spec.rows = 50000;
    *name = "lofar";
    return workloads::MakeLofar(spec).table;
  }
  auto table = monet::ReadCsvFile(arg);
  if (!table.ok()) {
    std::fprintf(stderr, "cannot read '%s': %s\n", arg.c_str(),
                 table.status().ToString().c_str());
    return nullptr;
  }
  *name = "table";
  return *table;
}

}  // namespace

int main(int argc, char** argv) {
  std::string arg = argc > 1 ? argv[1] : "hollywood";
  std::string name;
  monet::TablePtr table = LoadDataset(arg, &name);
  if (table == nullptr) return 1;
  std::printf("Loaded '%s': %zu rows x %zu columns\n", name.c_str(),
              table->num_rows(), table->num_columns());

  // Trace every map build of the session; the `trace` command dumps the
  // accumulated spans as a chrome://tracing file.
  obs::Tracer::Global().set_enabled(true);

  core::SessionOptions options;
  options.map.sample_size = 2000;
  core::Explorer explorer(options);
  if (Status st = explorer.LoadTable(table, name); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto session_or = explorer.OpenSession(name);
  if (!session_or.ok()) {
    std::fprintf(stderr, "session failed: %s\n",
                 session_or.status().ToString().c_str());
    return 1;
  }
  core::Session& session = **session_or;
  std::printf("%s\n", core::RenderThemeList(session.themes()).c_str());
  std::printf("%s\n", core::RenderMap(session.current().map).c_str());
  PrintHelp();

  std::string line;
  while (true) {
    std::printf("blaeu> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "themes") {
      std::printf("%s", core::RenderThemeList(session.themes()).c_str());
    } else if (cmd == "map") {
      std::printf("%s", core::RenderMap(session.current().map).c_str());
      std::printf("%s",
                  core::RenderTreemapStrip(session.current().map).c_str());
    } else if (cmd == "select" || cmd == "project") {
      size_t idx = 0;
      if (!(in >> idx)) {
        std::printf("usage: %s <theme index>\n", cmd.c_str());
        continue;
      }
      Status st = cmd == "select" ? session.SelectTheme(idx)
                                  : session.Project(idx);
      if (!st.ok()) {
        std::printf("%s\n", st.ToString().c_str());
        continue;
      }
      std::printf("%s", core::RenderMap(session.current().map).c_str());
    } else if (cmd == "zoom") {
      int region = 0;
      if (!(in >> region)) {
        std::printf("usage: zoom <region id>\n");
        continue;
      }
      if (Status st = session.Zoom(region); !st.ok()) {
        std::printf("%s\n", st.ToString().c_str());
        continue;
      }
      std::printf("%s", core::RenderMap(session.current().map).c_str());
    } else if (cmd == "highlight") {
      std::string column;
      if (!(in >> column)) {
        std::printf("usage: highlight <column>\n");
        continue;
      }
      auto h = session.Highlight(column);
      if (!h.ok()) {
        std::printf("%s\n", h.status().ToString().c_str());
        continue;
      }
      std::printf("%s", core::RenderHighlight(*h).c_str());
    } else if (cmd == "inspect") {
      int region = 0;
      if (!(in >> region)) {
        std::printf("usage: inspect <region id>\n");
        continue;
      }
      auto rows = session.Inspect(region, 8);
      if (!rows.ok()) {
        std::printf("%s\n", rows.status().ToString().c_str());
        continue;
      }
      std::printf("%s", (*rows)->ToString(8).c_str());
    } else if (cmd == "detail") {
      std::string column;
      if (!(in >> column)) {
        std::printf("usage: detail <column>\n");
        continue;
      }
      auto d = session.HighlightDetail(column);
      if (!d.ok()) {
        std::printf("%s\n", d.status().ToString().c_str());
        continue;
      }
      for (const core::RegionDetail& r : d->regions) {
        std::printf("-- region %d (%zu tuples) --\n%s", r.region_id,
                    r.tuple_count, r.rendering.c_str());
      }
    } else if (cmd == "scatter") {
      std::string x, y;
      if (!(in >> x >> y)) {
        std::printf("usage: scatter <x column> <y column>\n");
        continue;
      }
      auto d = session.ScatterDetail(x, y);
      if (!d.ok()) {
        std::printf("%s\n", d.status().ToString().c_str());
        continue;
      }
      for (const core::RegionDetail& r : d->regions) {
        std::printf("-- region %d (%zu tuples) --\n%s", r.region_id,
                    r.tuple_count, r.rendering.c_str());
      }
    } else if (cmd == "annotate") {
      int region = 0;
      if (!(in >> region)) {
        std::printf("usage: annotate <region id> <note>\n");
        continue;
      }
      std::string note;
      std::getline(in, note);
      if (Status st = session.Annotate(
              region, std::string(Trim(note))); !st.ok()) {
        std::printf("%s\n", st.ToString().c_str());
        continue;
      }
      std::printf("noted.\n");
    } else if (cmd == "atlas") {
      core::AtlasOptions opt;
      opt.map.sample_size = 1000;
      opt.min_theme_columns = 2;
      auto atlas = core::BuildAtlas(session.table(),
                                    session.current().selection,
                                    session.themes(), opt);
      if (!atlas.ok()) {
        std::printf("%s\n", atlas.status().ToString().c_str());
        continue;
      }
      std::printf("%s",
                  core::RenderAtlas(*atlas, session.themes()).c_str());
    } else if (cmd == "suggest") {
      auto suggestions = core::SuggestProjections(session);
      if (!suggestions.ok()) {
        std::printf("%s\n", suggestions.status().ToString().c_str());
        continue;
      }
      std::printf("%s",
                  core::RenderSuggestions(session, *suggestions).c_str());
    } else if (cmd == "export") {
      std::string dir;
      if (!(in >> dir)) {
        std::printf("usage: export <existing directory>\n");
        continue;
      }
      if (Status st = core::ExportSessionReport(session, dir); !st.ok()) {
        std::printf("%s\n", st.ToString().c_str());
        continue;
      }
      std::printf("report written to %s/\n", dir.c_str());
    } else if (cmd == "session") {
      std::printf("%s\n", session.ToJson().c_str());
    } else if (cmd == "stats") {
      std::string format;
      in >> format;
      if (format.empty()) {
        std::printf("%s\n", explorer.StatsReport().c_str());
      } else if (format == "--format=openmetrics") {
        std::printf("%s",
                    obs::ToOpenMetrics(obs::MetricsRegistry::Global()).c_str());
      } else if (format == "--format=html") {
        std::string html = obs::ToHtmlReport(obs::MetricsRegistry::Global(),
                                             "Blaeu session perf report");
        std::string path;
        if (in >> path) {
          std::ofstream out(path);
          if (!out.is_open()) {
            std::printf("cannot open '%s' for writing\n", path.c_str());
            continue;
          }
          out << html;
          std::printf("perf report written to %s\n", path.c_str());
        } else {
          std::printf("%s", html.c_str());
        }
      } else {
        std::printf("usage: stats [--format=openmetrics|html [path]]\n");
      }
    } else if (cmd == "flightlog") {
      std::string sub;
      in >> sub;
      if (sub == "dump") {
        std::string path;
        if (!(in >> path)) {
          std::printf("usage: flightlog dump <path>\n");
          continue;
        }
        std::ofstream out(path);
        if (!out.is_open()) {
          std::printf("cannot open '%s' for writing\n", path.c_str());
          continue;
        }
        out << explorer.FlightLogJson();
        std::printf("flight log written to %s\n", path.c_str());
      } else {
        size_t n = 0;
        if (!sub.empty()) {
          try {
            n = std::stoul(sub);
          } catch (...) {
            std::printf("usage: flightlog [n] | flightlog dump <path>\n");
            continue;
          }
        }
        std::printf("%s", obs::FlightRecorder::Global().ToText(n).c_str());
      }
    } else if (cmd == "trace") {
      std::string path;
      if (!(in >> path)) {
        std::printf("usage: trace <output path>\n");
        continue;
      }
      std::ofstream out(path);
      if (!out.is_open()) {
        std::printf("cannot open '%s' for writing\n", path.c_str());
        continue;
      }
      out << obs::Tracer::Global().ToChromeTrace();
      std::printf("chrome trace written to %s (load in chrome://tracing)\n",
                  path.c_str());
    } else if (cmd == "sql") {
      std::printf("%s\n", session.CurrentQuery().ToSql().c_str());
    } else if (cmd == "history") {
      std::printf("%s", core::RenderBreadcrumbs(session).c_str());
    } else if (cmd == "rollback") {
      if (Status st = session.Rollback(); !st.ok()) {
        std::printf("%s\n", st.ToString().c_str());
        continue;
      }
      std::printf("%s", core::RenderMap(session.current().map).c_str());
    } else if (cmd == "json") {
      std::printf("%s\n", core::MapToJson(session.current().map).c_str());
    } else {
      std::printf("unknown command '%s' (try: help)\n", cmd.c_str());
    }
  }
  std::printf("bye\n");
  return 0;
}
