#include "stats/column_dependency.h"

#include <unordered_map>

#include "monet/sampling.h"
#include "stats/discretize.h"
#include "stats/entropy.h"

namespace blaeu::stats {

using monet::Column;
using monet::DataType;
using monet::Table;

std::vector<int> EncodeColumnDiscrete(const Column& col,
                                      const std::vector<uint32_t>& rows,
                                      size_t num_bins) {
  std::vector<int> codes(rows.size());
  if (col.type() == DataType::kString) {
    // Dictionary columns: dense remap of dictionary codes in order of first
    // appearance. Distinct strings and distinct codes are one-to-one, so
    // this emits exactly the codes the string-keyed path would — without
    // materializing or hashing a single cell.
    const std::vector<int32_t>& cell_codes = col.codes();
    std::vector<int> remap(col.dictionary()->size(), -2);  // -2 = unseen
    int next = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      const int32_t c = cell_codes[rows[i]];
      if (c == monet::Dictionary::kNullCode) {
        codes[i] = -1;
        continue;
      }
      int& slot = remap[static_cast<size_t>(c)];
      if (slot == -2) slot = next++;
      codes[i] = slot;
    }
    return codes;
  }
  if (col.type() == DataType::kBool) {
    // Same first-appearance contract over the two bool renderings.
    int remap[2] = {-2, -2};
    int next = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      uint32_t r = rows[i];
      if (col.IsNull(r)) {
        codes[i] = -1;
        continue;
      }
      int& slot = remap[col.bools()[r] ? 1 : 0];
      if (slot == -2) slot = next++;
      codes[i] = slot;
    }
    return codes;
  }
  // Numeric: equal-frequency binning over the non-null values.
  std::vector<double> values;
  values.reserve(rows.size());
  for (uint32_t r : rows) {
    if (!col.IsNull(r)) values.push_back(col.GetNumeric(r));
  }
  Discretizer disc = Discretizer::EqualFrequency(values, num_bins);
  for (size_t i = 0; i < rows.size(); ++i) {
    uint32_t r = rows[i];
    codes[i] = col.IsNull(r) ? -1 : disc.Bin(col.GetNumeric(r));
  }
  return codes;
}

namespace {

bool BothNumeric(const Table& table, size_t a, size_t b) {
  return monet::IsNumeric(table.schema().field(a).type) &&
         monet::IsNumeric(table.schema().field(b).type);
}

double AbsCorrelation(const Table& table, size_t col_a, size_t col_b,
                      const std::vector<uint32_t>& rows, bool spearman) {
  const Column& a = *table.column(col_a);
  const Column& b = *table.column(col_b);
  std::vector<double> xs, ys;
  xs.reserve(rows.size());
  ys.reserve(rows.size());
  for (uint32_t r : rows) {
    if (a.IsNull(r) || b.IsNull(r)) continue;  // pairwise deletion
    xs.push_back(a.GetNumeric(r));
    ys.push_back(b.GetNumeric(r));
  }
  double c = spearman ? SpearmanCorrelation(xs, ys)
                      : PearsonCorrelation(xs, ys);
  return c < 0 ? -c : c;
}

}  // namespace

double ColumnDependency(const Table& table, size_t col_a, size_t col_b,
                        const std::vector<uint32_t>& rows,
                        const DependencyOptions& options) {
  switch (options.measure) {
    case DependencyMeasure::kAbsPearson:
      if (BothNumeric(table, col_a, col_b)) {
        return AbsCorrelation(table, col_a, col_b, rows, /*spearman=*/false);
      }
      break;  // fall through to NMI for mixed pairs
    case DependencyMeasure::kAbsSpearman:
      if (BothNumeric(table, col_a, col_b)) {
        return AbsCorrelation(table, col_a, col_b, rows, /*spearman=*/true);
      }
      break;
    case DependencyMeasure::kMutualInformation:
      break;
  }
  std::vector<int> xs =
      EncodeColumnDiscrete(*table.column(col_a), rows, options.num_bins);
  std::vector<int> ys =
      EncodeColumnDiscrete(*table.column(col_b), rows, options.num_bins);
  return NormalizedMutualInformationMM(xs, ys);
}

Result<std::vector<std::vector<double>>> DependencyMatrix(
    const Table& table, const DependencyOptions& options) {
  const size_t m = table.num_columns();
  Rng rng(options.seed);
  std::vector<uint32_t> rows;
  if (options.sample_rows > 0 && table.num_rows() > options.sample_rows) {
    rows = monet::UniformSampleIndices(table.num_rows(), options.sample_rows,
                                       &rng)
               .rows();
  } else {
    rows.resize(table.num_rows());
    for (size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<uint32_t>(i);
    }
  }
  if (rows.empty()) return Status::Invalid("empty table");

  // Pre-encode every column once for the MI path (each pair reuses them).
  std::vector<std::vector<int>> encoded(m);
  if (options.measure == DependencyMeasure::kMutualInformation) {
    for (size_t i = 0; i < m; ++i) {
      encoded[i] =
          EncodeColumnDiscrete(*table.column(i), rows, options.num_bins);
    }
  }

  std::vector<std::vector<double>> dep(m, std::vector<double>(m, 0.0));
  for (size_t i = 0; i < m; ++i) {
    dep[i][i] = 1.0;
    for (size_t j = i + 1; j < m; ++j) {
      double d;
      if (options.measure == DependencyMeasure::kMutualInformation) {
        d = NormalizedMutualInformationMM(encoded[i], encoded[j]);
      } else {
        d = ColumnDependency(table, i, j, rows, options);
      }
      dep[i][j] = dep[j][i] = d;
    }
  }
  return dep;
}

}  // namespace blaeu::stats
