#include "monet/column.h"

#include <cassert>

namespace blaeu::monet {

Column::Column(DataType type) : type_(type) {
  if (type_ == DataType::kString) dict_ = std::make_shared<Dictionary>();
}

void Column::Reserve(size_t n) {
  validity_.reserve(n);
  switch (type_) {
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kString:
      codes_.reserve(n);
      break;
    case DataType::kBool:
      bools_.reserve(n);
      break;
  }
}

void Column::AppendDouble(double v) {
  assert(type_ == DataType::kDouble);
  doubles_.push_back(v);
  validity_.push_back(1);
}

void Column::AppendInt(int64_t v) {
  assert(type_ == DataType::kInt64);
  ints_.push_back(v);
  validity_.push_back(1);
}

void Column::AppendString(std::string v) {
  assert(type_ == DataType::kString);
  codes_.push_back(dict_->Intern(v));
  validity_.push_back(1);
}

void Column::AppendBool(bool v) {
  assert(type_ == DataType::kBool);
  bools_.push_back(v ? 1 : 0);
  validity_.push_back(1);
}

void Column::AppendNull() {
  switch (type_) {
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kString:
      codes_.push_back(Dictionary::kNullCode);
      break;
    case DataType::kBool:
      bools_.push_back(0);
      break;
  }
  validity_.push_back(0);
  ++null_count_;
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kDouble:
      if (!IsNumeric(v.type()) && v.type() != DataType::kBool) {
        return Status::TypeError("cannot append " +
                                 std::string(DataTypeName(v.type())) +
                                 " to double column");
      }
      AppendDouble(v.AsDouble());
      return Status::OK();
    case DataType::kInt64:
      if (!IsNumeric(v.type()) && v.type() != DataType::kBool) {
        return Status::TypeError("cannot append " +
                                 std::string(DataTypeName(v.type())) +
                                 " to int64 column");
      }
      AppendInt(v.AsInt());
      return Status::OK();
    case DataType::kString:
      if (v.type() != DataType::kString) {
        return Status::TypeError("cannot append " +
                                 std::string(DataTypeName(v.type())) +
                                 " to string column");
      }
      AppendString(v.AsString());
      return Status::OK();
    case DataType::kBool:
      if (v.type() != DataType::kBool) {
        return Status::TypeError("cannot append " +
                                 std::string(DataTypeName(v.type())) +
                                 " to bool column");
      }
      AppendBool(v.AsBool());
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

const std::string& Column::StringAt(size_t row) const {
  assert(type_ == DataType::kString && row < size());
  static const std::string kEmpty;
  const int32_t code = codes_[row];
  return code == Dictionary::kNullCode ? kEmpty : dict_->value(code);
}

Value Column::GetValue(size_t row) const {
  assert(row < size());
  if (validity_[row] == 0) return Value::Null();
  switch (type_) {
    case DataType::kDouble:
      return Value::Double(doubles_[row]);
    case DataType::kInt64:
      return Value::Int(ints_[row]);
    case DataType::kString:
      return Value::Str(dict_->value(codes_[row]));
    case DataType::kBool:
      return Value::Boolean(bools_[row] != 0);
  }
  return Value::Null();
}

double Column::GetNumeric(size_t row) const {
  assert(row < size());
  switch (type_) {
    case DataType::kDouble:
      return doubles_[row];
    case DataType::kInt64:
      return static_cast<double>(ints_[row]);
    case DataType::kBool:
      return bools_[row] ? 1.0 : 0.0;
    case DataType::kString:
      assert(false && "GetNumeric on string column");
      return 0.0;
  }
  return 0.0;
}

Column Column::Take(const std::vector<uint32_t>& indices) const {
  Column out(type_);
  if (type_ == DataType::kString) {
    // Share the dictionary: codes stay valid verbatim, so the gather is a
    // plain int32 copy and gathered columns compare codes with their source.
    out.dict_ = dict_;
  }
  out.Reserve(indices.size());
  for (uint32_t idx : indices) {
    assert(idx < size());
    if (validity_[idx] == 0) {
      out.AppendNull();
      continue;
    }
    switch (type_) {
      case DataType::kDouble:
        out.AppendDouble(doubles_[idx]);
        break;
      case DataType::kInt64:
        out.AppendInt(ints_[idx]);
        break;
      case DataType::kString:
        out.codes_.push_back(codes_[idx]);
        out.validity_.push_back(1);
        break;
      case DataType::kBool:
        out.AppendBool(bools_[idx] != 0);
        break;
    }
  }
  return out;
}

}  // namespace blaeu::monet
