// Unit tests for hierarchical agglomerative clustering.
#include "cluster/agglomerative.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/metrics.h"

namespace blaeu::cluster {
namespace {

using stats::DistanceMatrix;
using stats::Matrix;

DistanceMatrix LineDistances() {
  // Points on a line: 0, 1, 10, 11 -> two natural pairs.
  Matrix data(4, 1);
  data.At(0, 0) = 0;
  data.At(1, 0) = 1;
  data.At(2, 0) = 10;
  data.At(3, 0) = 11;
  return DistanceMatrix::Euclidean(data);
}

TEST(AgglomerativeTest, DendrogramHasNMinusOneMerges) {
  auto dendro = *AgglomerativeCluster(LineDistances(), Linkage::kSingle);
  EXPECT_EQ(dendro.num_leaves, 4u);
  EXPECT_EQ(dendro.merges.size(), 3u);
  // Merge heights are non-decreasing for single linkage on a metric.
  for (size_t i = 1; i < dendro.merges.size(); ++i) {
    EXPECT_GE(dendro.merges[i].height, dendro.merges[i - 1].height - 1e-12);
  }
}

TEST(AgglomerativeTest, CutToTwoFindsNaturalPairs) {
  auto dendro = *AgglomerativeCluster(LineDistances(), Linkage::kSingle);
  auto labels = *dendro.CutToK(2);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(AgglomerativeTest, CutBoundsChecked) {
  auto dendro = *AgglomerativeCluster(LineDistances(), Linkage::kComplete);
  EXPECT_FALSE(dendro.CutToK(0).ok());
  EXPECT_FALSE(dendro.CutToK(5).ok());
  auto all = *dendro.CutToK(4);
  std::set<int> labels(all.begin(), all.end());
  EXPECT_EQ(labels.size(), 4u);  // every leaf its own cluster
  auto one = *dendro.CutToK(1);
  for (int l : one) EXPECT_EQ(l, 0);
}

TEST(AgglomerativeTest, SingleLinkageChainsCompleteDoesNot) {
  // A chain of close points plus one far point. Single linkage keeps the
  // chain together at k=2; complete linkage splits it.
  Matrix data(6, 1);
  for (size_t i = 0; i < 5; ++i) data.At(i, 0) = static_cast<double>(i);
  data.At(5, 0) = 50.0;
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  auto single = *AgglomerativeToK(dist, Linkage::kSingle, 2);
  std::set<int> chain_labels;
  for (size_t i = 0; i < 5; ++i) chain_labels.insert(single.labels[i]);
  EXPECT_EQ(chain_labels.size(), 1u);
  EXPECT_NE(single.labels[5], single.labels[0]);
}

TEST(AgglomerativeTest, AverageLinkageRecoversBlobs) {
  Rng rng(1);
  Matrix data(60, 2);
  std::vector<int> truth;
  for (size_t i = 0; i < 60; ++i) {
    int c = static_cast<int>(i / 20);
    data.At(i, 0) = rng.NextGaussian(8.0 * c, 0.5);
    data.At(i, 1) = rng.NextGaussian(0.0, 0.5);
    truth.push_back(c);
  }
  DistanceMatrix dist = DistanceMatrix::Euclidean(data);
  auto result = *AgglomerativeToK(dist, Linkage::kAverage, 3);
  EXPECT_GT(stats::AdjustedRandIndex(result.labels, truth), 0.95);
  EXPECT_EQ(result.medoids.size(), 3u);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(result.labels[result.medoids[m]], static_cast<int>(m));
  }
}

TEST(AgglomerativeTest, SinglePointDendrogram) {
  DistanceMatrix dist(1);
  auto dendro = *AgglomerativeCluster(dist, Linkage::kAverage);
  EXPECT_EQ(dendro.num_leaves, 1u);
  EXPECT_TRUE(dendro.merges.empty());
  auto labels = *dendro.CutToK(1);
  EXPECT_EQ(labels, std::vector<int>{0});
}

TEST(AgglomerativeTest, EmptyInputRejected) {
  DistanceMatrix dist(0);
  EXPECT_FALSE(AgglomerativeCluster(dist, Linkage::kSingle).ok());
}

}  // namespace
}  // namespace blaeu::cluster
