// Metric exporters: OpenMetrics/Prometheus text exposition and a
// self-contained HTML perf report, both generated from a MetricsRegistry
// snapshot. This is the "show the numbers to something that is not a C++
// debugger" half of the obs layer: the text format is what a Prometheus
// scraper (or the REPL's `stats --format=openmetrics`) consumes, the HTML
// report is what bench_map_pipeline and CI attach to every run.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace blaeu::obs {

/// Labels attached to every exported sample ({{"dataset","lofar"}, ...}).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Sanitizes a metric name for the OpenMetrics grammar: "core.map.builds"
/// -> "blaeu_core_map_builds" (dots and any other illegal character become
/// underscores; the blaeu_ prefix keeps the first character legal).
std::string OpenMetricsName(const std::string& name);

/// Escapes a label value per the OpenMetrics ABNF: backslash, double quote
/// and newline become \\, \" and \n.
std::string OpenMetricsEscape(const std::string& value);

/// OpenMetrics text exposition of a snapshot. Counters export as `counter`
/// with the `_total` sample suffix, gauges as `gauge`, histograms as
/// `summary` (quantile-labelled p50/p95/p99 plus _sum/_count). Ends with
/// the mandatory `# EOF` line.
std::string ToOpenMetrics(const MetricsSnapshot& snapshot,
                          const MetricLabels& labels = {});
std::string ToOpenMetrics(const MetricsRegistry& registry,
                          const MetricLabels& labels = {});

/// Self-contained HTML perf report: a stage waterfall built from the
/// core.map.stage.*_seconds histograms plus full counter/gauge/histogram
/// tables. No external assets; open the file anywhere.
std::string ToHtmlReport(const MetricsSnapshot& snapshot,
                         const std::string& title);
std::string ToHtmlReport(const MetricsRegistry& registry,
                         const std::string& title);

}  // namespace blaeu::obs
