// Synthetic stand-in for the paper's Countries-and-Work dataset: OECD
// regional indicators, "6,823 rows and 378 columns" over "1,500 regions
// belonging to 31 different countries" (paper §4.2). Columns are organized
// into named indicator themes (economy, labor conditions, unemployment,
// health, well-being, education, environment, housing); rows are
// region-year observations whose indicator values are driven by latent
// per-theme factors, so MI-based theme detection and the Figure 1
// navigation scenario (long working hours vs income vs unemployment) are
// both exercised.
#pragma once

#include <cstdint>

#include "workloads/dataset.h"

namespace blaeu::workloads {

/// OECD generator options.
struct OecdSpec {
  size_t rows = 6823;
  /// Indicator columns (theme columns; identifiers come on top). The
  /// default reproduces the paper's 378 total columns: 375 indicators +
  /// region + country + region_id.
  size_t indicator_columns = 375;
  size_t num_countries = 31;
  uint64_t seed = 42;
  double missing_rate = 0.03;
  /// Fraction of generic indicators that depend on their theme factor
  /// through a non-linear transform (square, absolute value or sine).
  /// Exercises the paper's argument for mutual information over linear
  /// correlation as the dependency measure.
  double nonlinear_fraction = 0.0;
};

/// Planted row clusters (truth.row_clusters) follow four development
/// profiles that determine the latent factors:
///   0 "work-life balance" — low long-hours share, high income, low unemp
///   1 "long-hours high-income"
///   2 "high-unemployment" — low income, high unemployment
///   3 "average"
/// Columns: region_id (PK, -1), region:string (-1), country:string (-1),
/// then indicators with truth.column_themes in [0, 8): economy(0),
/// labor(1), unemployment(2), health(3), wellbeing(4), education(5),
/// environment(6), housing(7). The first labor columns reproduce the
/// figure's names: "pct_employees_working_long_hours", "average_income_kusd",
/// "time_dedicated_to_leisure_hours"; the first unemployment columns are
/// "unemployment_rate", "long_term_unemployment_rate",
/// "female_unemployment_rate".
Dataset MakeOecd(const OecdSpec& spec = {});

}  // namespace blaeu::workloads
