#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/json_writer.h"

namespace blaeu::obs {

size_t Histogram::BucketIndex(double value) {
  if (!(value > kFirstBound)) return 0;
  // Bucket i covers (kFirstBound * 2^(i-1), kFirstBound * 2^i].
  double ratio = value / kFirstBound;
  size_t idx = static_cast<size_t>(std::ceil(std::log2(ratio)));
  return std::min(idx, kNumBuckets - 1);
}

void Histogram::Observe(double value) {
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  buckets_[BucketIndex(value)]++;
  sum_ += value;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_++;
}

double Histogram::QuantileLocked(double q) const {
  // Degenerate cases first, exactly: an empty histogram has no quantiles
  // (0 by convention) and a single sample IS every quantile — the bucket
  // midpoint must not leak through for either.
  if (count_ == 0) return 0.0;
  if (count_ == 1 || min_ == max_) return min_;
  // Rank of the q-quantile (1-based, nearest-rank method).
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  rank = std::max<uint64_t>(1, std::min(rank, count_));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Geometric midpoint of bucket i, clamped to what was actually seen.
      double hi = kFirstBound * std::ldexp(1.0, static_cast<int>(i));
      double lo = i == 0 ? 0.0 : hi / 2.0;
      double mid = i == 0 ? hi / 2.0 : std::sqrt(lo * hi);
      return std::max(min_, std::min(max_, mid));
    }
  }
  return max_;
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.p50 = QuantileLocked(0.50);
  snap.p95 = QuantileLocked(0.95);
  snap.p99 = QuantileLocked(0.99);
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrumented destructors may run after static
  // teardown would have destroyed a function-local registry.
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  return snap;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) w.KV(name, c->value());
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) w.KV(name, g->value());
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s = h->Snapshot();
    w.Key(name).BeginObject();
    w.KV("count", static_cast<int64_t>(s.count));
    w.KV("sum", s.sum);
    w.KV("mean", s.mean());
    w.KV("min", s.min);
    w.KV("max", s.max);
    w.KV("p50", s.p50);
    w.KV("p95", s.p95);
    w.KV("p99", s.p99);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace blaeu::obs
