// Logical types and scalar values of the mini column store. The store is the
// stand-in for MonetDB in Blaeu's architecture (Figure 4): it provides
// columnar storage, scans, filters and sampling.
#pragma once

#include <cstdint>
#include <string>

namespace blaeu::monet {

/// Logical column types. Blaeu distinguishes continuous columns (normalized
/// during preprocessing) from categorical ones (dummy-coded); kString and
/// kBool columns are treated as categorical, kDouble and kInt64 as
/// continuous unless their distinct-value count is tiny.
enum class DataType : uint8_t {
  kDouble = 0,
  kInt64 = 1,
  kString = 2,
  kBool = 3,
};

/// Stable lower-case name ("double", "int64", "string", "bool").
const char* DataTypeName(DataType type);

/// True for kDouble / kInt64.
inline bool IsNumeric(DataType type) {
  return type == DataType::kDouble || type == DataType::kInt64;
}

/// \brief A nullable scalar, the row-wise unit of the store.
///
/// A small tagged union; strings own their storage. Used on non-hot paths
/// (row assembly, CSV, highlights); bulk operations work directly on column
/// vectors.
class Value {
 public:
  /// Constructs a NULL of type kDouble (type is irrelevant for nulls).
  Value() : type_(DataType::kDouble), is_null_(true) {}

  static Value Null() { return Value(); }
  static Value Double(double v) {
    Value out;
    out.type_ = DataType::kDouble;
    out.is_null_ = false;
    out.double_ = v;
    return out;
  }
  static Value Int(int64_t v) {
    Value out;
    out.type_ = DataType::kInt64;
    out.is_null_ = false;
    out.int_ = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.type_ = DataType::kString;
    out.is_null_ = false;
    out.str_ = std::move(v);
    return out;
  }
  static Value Boolean(bool v) {
    Value out;
    out.type_ = DataType::kBool;
    out.is_null_ = false;
    out.bool_ = v;
    return out;
  }

  bool is_null() const { return is_null_; }
  DataType type() const { return type_; }

  double AsDouble() const;     ///< numeric/bool widening; 0 for null.
  int64_t AsInt() const;       ///< numeric narrowing; 0 for null.
  bool AsBool() const;         ///< bool value; false for null.
  const std::string& AsString() const;  ///< only valid for kString.

  /// Human-readable rendering ("NULL", "3.14", "true", the string itself).
  std::string ToString() const;

  /// Deep equality: same nullness and, for non-nulls, same type and payload.
  bool operator==(const Value& other) const;

 private:
  DataType type_;
  bool is_null_;
  double double_ = 0;
  int64_t int_ = 0;
  bool bool_ = false;
  std::string str_;
};

}  // namespace blaeu::monet
