#include "obs/flight_recorder.h"

#include <cstdio>

#include "common/json_writer.h"
#include "obs/trace.h"

namespace blaeu::obs {

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kMapBuilt: return "map_built";
    case FlightEventKind::kCacheHit: return "cache_hit";
    case FlightEventKind::kCacheMiss: return "cache_miss";
    case FlightEventKind::kCacheEvict: return "cache_evict";
    case FlightEventKind::kNavigation: return "navigation";
    case FlightEventKind::kQuery: return "query";
    case FlightEventKind::kLoad: return "load";
    case FlightEventKind::kError: return "error";
    case FlightEventKind::kNote: return "note";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1),
      epoch_(std::chrono::steady_clock::now()) {
  // The ring grows lazily up to capacity_ so short sessions stay small.
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* global = new FlightRecorder();  // leaked on purpose
  return *global;
}

void FlightRecorder::Record(
    FlightEventKind kind, std::string name,
    std::vector<std::pair<std::string, std::string>> attrs) {
  if (!enabled()) return;
  FlightEvent event;
  event.t_ns = NowNs();
  event.kind = kind;
  event.name = std::move(name);
  event.thread = ThisThreadId();
  event.attrs = std::move(attrs);
  std::lock_guard<std::mutex> lock(mu_);
  event.seq = total_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
    dropped_++;
  }
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<FlightEvent> FlightRecorder::Tail(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  // Chronological order: when the ring has wrapped, next_ points at the
  // oldest retained event.
  const size_t start = ring_.size() < capacity_ ? 0 : next_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  if (n > 0 && out.size() > n) out.erase(out.begin(), out.end() - n);
  return out;
}

std::string FlightRecorder::ToJson(size_t n) const {
  std::vector<FlightEvent> events = Tail(n);
  uint64_t total, lost;
  {
    std::lock_guard<std::mutex> lock(mu_);
    total = total_;
    lost = dropped_;
  }
  JsonWriter w;
  w.BeginObject();
  w.KV("capacity", capacity_);
  w.KV("total_recorded", static_cast<int64_t>(total));
  w.KV("dropped", static_cast<int64_t>(lost));
  w.Key("events").BeginArray();
  for (const FlightEvent& e : events) {
    w.BeginObject();
    w.KV("seq", static_cast<int64_t>(e.seq));
    w.KV("t_us", static_cast<double>(e.t_ns) / 1e3);
    w.KV("kind", FlightEventKindName(e.kind));
    w.KV("name", e.name);
    w.KV("thread", static_cast<int64_t>(e.thread));
    w.Key("attrs").BeginObject();
    for (const auto& [k, v] : e.attrs) w.KV(k, v);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string FlightRecorder::ToText(size_t n) const {
  std::vector<FlightEvent> events = Tail(n);
  std::string out;
  char line[160];
  for (const FlightEvent& e : events) {
    std::snprintf(line, sizeof(line), "%6llu %12.3fms %-10s %s",
                  static_cast<unsigned long long>(e.seq),
                  static_cast<double>(e.t_ns) / 1e6,
                  FlightEventKindName(e.kind), e.name.c_str());
    out += line;
    for (const auto& [k, v] : e.attrs) out += " " + k + "=" + v;
    out += "\n";
  }
  if (uint64_t lost = dropped(); lost > 0) {
    out += "(" + std::to_string(lost) + " older events overwritten)\n";
  }
  return out;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

}  // namespace blaeu::obs
