#include "stats/metrics.h"

#include <cassert>
#include <map>
#include <unordered_map>

#include "stats/entropy.h"

namespace blaeu::stats {

namespace {

double Choose2(double n) { return n * (n - 1.0) / 2.0; }

}  // namespace

double AdjustedRandIndex(const std::vector<int>& a,
                         const std::vector<int>& b) {
  assert(a.size() == b.size());
  const size_t n = a.size();
  if (n < 2) return 1.0;
  std::map<std::pair<int, int>, size_t> contingency;
  std::unordered_map<int, size_t> row_sums, col_sums;
  for (size_t i = 0; i < n; ++i) {
    ++contingency[{a[i], b[i]}];
    ++row_sums[a[i]];
    ++col_sums[b[i]];
  }
  double sum_cells = 0.0;
  for (const auto& [_, c] : contingency) {
    sum_cells += Choose2(static_cast<double>(c));
  }
  double sum_rows = 0.0;
  for (const auto& [_, c] : row_sums) {
    sum_rows += Choose2(static_cast<double>(c));
  }
  double sum_cols = 0.0;
  for (const auto& [_, c] : col_sums) {
    sum_cols += Choose2(static_cast<double>(c));
  }
  double total_pairs = Choose2(static_cast<double>(n));
  double expected = sum_rows * sum_cols / total_pairs;
  double max_index = (sum_rows + sum_cols) / 2.0;
  if (max_index == expected) return 1.0;  // both partitions trivial
  return (sum_cells - expected) / (max_index - expected);
}

double ClusteringNMI(const std::vector<int>& a, const std::vector<int>& b) {
  return NormalizedMutualInformation(a, b);
}

double Purity(const std::vector<int>& predicted,
              const std::vector<int>& truth) {
  assert(predicted.size() == truth.size());
  if (predicted.empty()) return 0.0;
  std::unordered_map<int, std::unordered_map<int, size_t>> votes;
  for (size_t i = 0; i < predicted.size(); ++i) {
    ++votes[predicted[i]][truth[i]];
  }
  size_t correct = 0;
  for (const auto& [cluster, counts] : votes) {
    size_t best = 0;
    for (const auto& [_, c] : counts) best = std::max(best, c);
    correct += best;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

double Accuracy(const std::vector<int>& predicted,
                const std::vector<int>& truth) {
  assert(predicted.size() == truth.size());
  if (predicted.empty()) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == truth[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

}  // namespace blaeu::stats
