// Shared shape of the synthetic demo datasets. The paper demos Blaeu on
// three real tables (Hollywood, OECD countries-and-work, LOFAR); the
// generators here reproduce their dimensions, mixed types and — crucially —
// planted structure: ground-truth row clusters (for map accuracy) and
// column themes (for theme-detection accuracy).
#pragma once

#include <string>
#include <vector>

#include "monet/table.h"

namespace blaeu::workloads {

/// \brief Planted structure of a generated dataset.
struct GroundTruth {
  /// Cluster id per row.
  std::vector<int> row_clusters;
  /// Theme id per column (-1 for identifier columns outside any theme).
  std::vector<int> column_themes;
  size_t num_clusters = 0;
  size_t num_themes = 0;
};

/// \brief A generated table plus its ground truth.
struct Dataset {
  std::string name;
  monet::TablePtr table;
  GroundTruth truth;
};

}  // namespace blaeu::workloads
