#include "core/render.h"

#include <algorithm>
#include <sstream>

#include "common/json_writer.h"
#include "common/string_util.h"

namespace blaeu::core {

std::string RenderThemeList(const ThemeSet& themes) {
  std::ostringstream out;
  out << "Themes (" << themes.size() << "):\n";
  for (const Theme& t : themes.themes) {
    out << "  [" << t.id << "] " << t.Label() << "  (" << t.columns.size()
        << " columns, cohesion " << FormatDouble(t.cohesion, 3) << ")\n";
  }
  return out.str();
}

namespace {

void RenderRegion(const DataMap& map, const MapRegion& region,
                  const std::string& prefix, bool last, size_t root_count,
                  std::ostringstream* out) {
  std::string connector = region.parent < 0 ? "" : (last ? "`- " : "|- ");
  *out << prefix << connector;
  if (region.parent < 0) {
    *out << "[0] ALL  (" << region.tuple_count << " tuples)";
  } else {
    *out << "[" << region.id << "] " << region.EdgeLabel() << "  ("
         << region.tuple_count << " tuples";
    if (root_count > 0) {
      *out << ", "
           << FormatDouble(100.0 * static_cast<double>(region.tuple_count) /
                               static_cast<double>(root_count),
                           3)
           << "%";
    }
    *out << ")";
  }
  if (region.is_leaf()) {
    *out << "  <cluster " << region.cluster_label << ">";
    size_t bar = root_count > 0 ? (region.tuple_count * 24) / root_count : 0;
    *out << "  " << std::string(std::max<size_t>(bar, 1), '#');
  }
  *out << "\n";
  std::string child_prefix =
      prefix + (region.parent < 0 ? "" : (last ? "   " : "|  "));
  for (size_t i = 0; i < region.children.size(); ++i) {
    RenderRegion(map, map.region(region.children[i]), child_prefix,
                 i + 1 == region.children.size(), root_count, out);
  }
}

}  // namespace

std::string RenderMap(const DataMap& map) {
  std::ostringstream out;
  out << "Data map over {" << Join(map.active_columns, ", ") << "}\n";
  out << "  clusters: " << map.num_clusters << "  silhouette: "
      << FormatDouble(map.silhouette, 3) << "  tree fidelity: "
      << FormatDouble(map.tree_fidelity, 3) << "  algorithm: "
      << map.algorithm << "  (" << map.sample_size << "/"
      << map.total_tuples << " tuples clustered, "
      << FormatDouble(map.build_seconds * 1e3, 4) << " ms)\n";
  RenderRegion(map, map.root(), "", true, map.root().tuple_count, &out);
  return out.str();
}

std::string RenderTreemapStrip(const DataMap& map, size_t width) {
  std::vector<int> leaves = map.LeafIds();
  size_t total = map.root().tuple_count;
  if (total == 0 || leaves.empty()) return "(empty map)\n";
  std::ostringstream bar, legend;
  static const char kFill[] = "#=@%+*o.";
  size_t used = 0;
  for (size_t i = 0; i < leaves.size(); ++i) {
    const MapRegion& r = map.region(leaves[i]);
    size_t w = (r.tuple_count * width) / total;
    if (i + 1 == leaves.size()) w = width > used ? width - used : 0;
    w = std::max<size_t>(w, 1);
    used += w;
    bar << "[" << std::string(w, kFill[i % 8]) << "]";
    legend << "  " << std::string(1, kFill[i % 8]) << " region " << r.id
           << ": " << r.EdgeLabel() << " (" << r.tuple_count << ")\n";
  }
  return bar.str() + "\n" + legend.str();
}

std::string RenderHighlight(const HighlightResult& highlight) {
  std::ostringstream out;
  out << "Highlight '" << highlight.column << "':\n";
  for (const RegionHighlight& r : highlight.regions) {
    out << "  region " << r.region_id << " (" << r.tuple_count
        << " tuples): ";
    if (r.examples.empty()) {
      out << "(no values)";
    } else {
      out << Join(r.examples, ", ");
      if (r.stats.distinct > r.examples.size()) {
        out << ", ... (" << r.stats.distinct << " distinct)";
      }
    }
    if (r.stats.count > r.stats.null_count && r.stats.stddev >= 0 &&
        r.stats.distinct > 1 && r.stats.min != r.stats.max) {
      out << "  [mean " << FormatDouble(r.stats.mean, 4) << ", range "
          << FormatDouble(r.stats.min, 4) << ".."
          << FormatDouble(r.stats.max, 4) << "]";
    }
    out << "\n";
  }
  return out.str();
}

std::string RenderBreadcrumbs(const Session& session) {
  std::ostringstream out;
  out << "History:\n";
  for (size_t i = 0; i < session.history_size(); ++i) {
    const NavState& s = session.state(i);
    out << "  " << (i + 1 == session.history_size() ? "*" : " ") << "[" << i
        << "] " << s.action << "  (" << s.selection.size() << " tuples, "
        << s.columns.size() << " columns)\n";
  }
  return out.str();
}

namespace {

/// Shared body of MapToJson / CanonicalMapJson. `canonical` drops the
/// timing field and adds the medoid rows (which MapToJson predates).
void WriteMapJson(const DataMap& map, bool canonical, JsonWriter* w) {
  w->BeginObject();
  w->Key("active_columns").BeginArray();
  for (const auto& c : map.active_columns) w->String(c);
  w->EndArray();
  w->KV("num_clusters", map.num_clusters)
      .KV("silhouette", map.silhouette)
      .KV("tree_fidelity", map.tree_fidelity)
      .KV("sample_size", map.sample_size)
      .KV("total_tuples", map.total_tuples)
      .KV("algorithm", map.algorithm);
  if (!canonical) w->KV("build_seconds", map.build_seconds);
  w->Key("regions").BeginArray();
  for (const MapRegion& r : map.regions) {
    w->BeginObject();
    w->KV("id", static_cast<int64_t>(r.id))
        .KV("parent", static_cast<int64_t>(r.parent))
        .KV("edge", r.EdgeLabel())
        .KV("predicate", r.predicate.ToSql())
        .KV("tuples", r.tuple_count)
        .KV("leaf", r.is_leaf())
        .KV("cluster", static_cast<int64_t>(r.cluster_label));
    if (canonical) {
      w->KV("medoid_row", r.has_medoid
                              ? static_cast<int64_t>(r.medoid_row)
                              : static_cast<int64_t>(-1));
    }
    w->Key("children").BeginArray();
    for (int c : r.children) w->Int(c);
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace

std::string MapToJson(const DataMap& map) {
  JsonWriter w;
  WriteMapJson(map, /*canonical=*/false, &w);
  return w.str();
}

std::string CanonicalMapJson(const DataMap& map) {
  JsonWriter w;
  WriteMapJson(map, /*canonical=*/true, &w);
  return w.str();
}

std::string ThemesToJson(const ThemeSet& themes) {
  JsonWriter w;
  w.BeginObject();
  w.KV("silhouette", themes.silhouette);
  w.Key("themes").BeginArray();
  for (const Theme& t : themes.themes) {
    w.BeginObject();
    w.KV("id", static_cast<int64_t>(t.id)).KV("cohesion", t.cohesion);
    w.Key("columns").BeginArray();
    for (const auto& n : t.names) w.String(n);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string DependencyGraphToDot(const ThemeSet& themes, double min_weight) {
  // Group vertices by theme for coloring.
  std::vector<int> groups(themes.graph.num_vertices(), -1);
  for (const Theme& t : themes.themes) {
    for (size_t col : t.columns) {
      for (size_t v = 0; v < themes.graph_columns.size(); ++v) {
        if (themes.graph_columns[v] == col) groups[v] = t.id;
      }
    }
  }
  return themes.graph.ToDot(min_weight, &groups);
}

}  // namespace blaeu::core
