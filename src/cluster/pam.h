// Partitioning Around Medoids (Kaufman & Rousseeuw 1990), the clustering
// algorithm Blaeu uses for both themes and maps: "We chose Partitioning
// Around Medoids (PAM) because it is accurate, well established and fast
// enough" (paper §3).
#pragma once

#include "common/status.h"
#include "cluster/clustering.h"
#include "stats/distance.h"

namespace blaeu::cluster {

/// PAM options.
struct PamOptions {
  /// Cap on SWAP passes; each pass scans all (medoid, non-medoid) pairs.
  size_t max_swap_iterations = 50;
};

/// \brief Exact PAM on a precomputed distance matrix.
///
/// BUILD greedily seeds k medoids (first: the point with minimal total
/// distance; then: maximal aggregate cost reduction). SWAP repeatedly
/// applies the single best (medoid, candidate) exchange until no exchange
/// lowers the objective, using the FastPAM1 delta computation (Schubert &
/// Rousseeuw 2019): the swap deltas for all k medoids against one
/// candidate come out of a single O(n) pass, so a SWAP pass costs O(n^2)
/// instead of O(k n^2) while choosing exactly the same swaps.
///
/// Invalid when k == 0 or k > n.
Result<ClusteringResult> Pam(const stats::DistanceMatrix& dist, size_t k,
                             const PamOptions& options = {});

/// Reference implementation with the textbook O(k(n-k)^2) SWAP pass.
/// Chooses the same swap sequence as Pam(); kept for equivalence testing
/// and as documentation of the classic algorithm.
Result<ClusteringResult> PamNaive(const stats::DistanceMatrix& dist, size_t k,
                                  const PamOptions& options = {});

/// Assigns each of `n` points to its nearest medoid under `dist_fn`;
/// returns labels (index into `medoids`) and the summed cost.
ClusteringResult AssignToMedoids(size_t n, const std::vector<size_t>& medoids,
                                 const RowDistanceFn& dist_fn);

}  // namespace blaeu::cluster
