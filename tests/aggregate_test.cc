// Unit tests for GROUP BY aggregation.
#include "monet/aggregate.h"

#include <gtest/gtest.h>

namespace blaeu::monet {
namespace {

TablePtr SalesTable() {
  TableBuilder b(Schema({{"region", DataType::kString},
                         {"product", DataType::kString},
                         {"amount", DataType::kDouble},
                         {"units", DataType::kInt64}}));
  struct Row {
    const char* region;
    const char* product;
    double amount;
    int64_t units;
  };
  Row rows[] = {
      {"east", "a", 10.0, 1}, {"east", "b", 20.0, 2}, {"west", "a", 30.0, 3},
      {"east", "a", 40.0, 4}, {"west", "b", 50.0, 5}, {"west", "b", 60.0, 6},
  };
  for (const Row& r : rows) {
    EXPECT_TRUE(b.AppendRow({Value::Str(r.region), Value::Str(r.product),
                             Value::Double(r.amount), Value::Int(r.units)})
                    .ok());
  }
  return *b.Finish();
}

TEST(GroupByTest, SingleKeyCountAndSum) {
  auto t = SalesTable();
  auto result = *GroupBy(*t, {"region"},
                         {{AggFn::kCount, "", ""},
                          {AggFn::kSum, "amount", ""}});
  ASSERT_EQ(result->num_rows(), 2u);
  // First-seen order: east, west.
  EXPECT_EQ(result->GetValue(0, 0).AsString(), "east");
  EXPECT_EQ(result->GetValue(0, 1).AsInt(), 3);
  EXPECT_DOUBLE_EQ(result->GetValue(0, 2).AsDouble(), 70.0);
  EXPECT_EQ(result->GetValue(1, 0).AsString(), "west");
  EXPECT_DOUBLE_EQ(result->GetValue(1, 2).AsDouble(), 140.0);
}

TEST(GroupByTest, MultiKeyGrouping) {
  auto t = SalesTable();
  auto result = *GroupBy(*t, {"region", "product"},
                         {{AggFn::kCount, "", "n"}});
  EXPECT_EQ(result->num_rows(), 4u);  // east-a, east-b, west-a, west-b
  EXPECT_EQ(result->schema().field(2).name, "n");
}

TEST(GroupByTest, MeanMinMax) {
  auto t = SalesTable();
  auto result = *GroupBy(*t, {"region"},
                         {{AggFn::kMean, "amount", ""},
                          {AggFn::kMin, "units", ""},
                          {AggFn::kMax, "units", ""}});
  // east: amounts {10,20,40} mean 23.33; units min 1 max 4.
  EXPECT_NEAR(result->GetValue(0, 1).AsDouble(), 70.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(result->GetValue(0, 2).AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(result->GetValue(0, 3).AsDouble(), 4.0);
}

TEST(GroupByTest, CountDistinct) {
  auto t = SalesTable();
  auto result = *GroupBy(*t, {"region"},
                         {{AggFn::kCountDistinct, "product", "products"}});
  EXPECT_EQ(result->GetValue(0, 1).AsInt(), 2);  // east sells a and b
  EXPECT_EQ(result->GetValue(1, 1).AsInt(), 2);
}

TEST(GroupByTest, SelectionRestricted) {
  auto t = SalesTable();
  SelectionVector sel({0, 1, 2});  // first three rows
  auto result = *GroupBy(*t, sel, {"region"}, {{AggFn::kCount, "", ""}});
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->GetValue(0, 1).AsInt(), 2);  // east x2
  EXPECT_EQ(result->GetValue(1, 1).AsInt(), 1);  // west x1
}

TEST(GroupByTest, NullKeysGroupTogether) {
  TableBuilder b(Schema({{"k", DataType::kString},
                         {"v", DataType::kDouble}}));
  ASSERT_TRUE(b.AppendRow({Value::Null(), Value::Double(1)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Str("x"), Value::Double(2)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Null(), Value::Double(3)}).ok());
  auto t = *b.Finish();
  auto result = *GroupBy(*t, {"k"}, {{AggFn::kSum, "v", ""}});
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_TRUE(result->GetValue(0, 0).is_null());
  EXPECT_DOUBLE_EQ(result->GetValue(0, 1).AsDouble(), 4.0);
}

TEST(GroupByTest, NullValuesSkippedInAggregates) {
  TableBuilder b(Schema({{"k", DataType::kString},
                         {"v", DataType::kDouble}}));
  ASSERT_TRUE(b.AppendRow({Value::Str("x"), Value::Double(5)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Str("x"), Value::Null()}).ok());
  auto t = *b.Finish();
  auto result = *GroupBy(*t, {"k"},
                         {{AggFn::kCount, "v", ""},
                          {AggFn::kMean, "v", ""}});
  EXPECT_EQ(result->GetValue(0, 1).AsInt(), 1);  // null not counted
  EXPECT_DOUBLE_EQ(result->GetValue(0, 2).AsDouble(), 5.0);
}

TEST(GroupByTest, AllNullGroupYieldsNullAggregate) {
  TableBuilder b(Schema({{"k", DataType::kString},
                         {"v", DataType::kDouble}}));
  ASSERT_TRUE(b.AppendRow({Value::Str("x"), Value::Null()}).ok());
  auto t = *b.Finish();
  auto result = *GroupBy(*t, {"k"}, {{AggFn::kMean, "v", ""}});
  EXPECT_TRUE(result->GetValue(0, 1).is_null());
}

TEST(GroupByTest, EmptyKeysIsGlobalAggregate) {
  auto t = SalesTable();
  auto result = *GroupBy(*t, {}, {{AggFn::kSum, "amount", "total"}});
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(result->GetValue(0, 0).AsDouble(), 210.0);
}

TEST(GroupByTest, ErrorsOnBadInputs) {
  auto t = SalesTable();
  EXPECT_EQ(GroupBy(*t, {"ghost"}, {{AggFn::kCount, "", ""}})
                .status()
                .code(),
            StatusCode::kKeyError);
  EXPECT_EQ(GroupBy(*t, {"region"}, {{AggFn::kSum, "product", ""}})
                .status()
                .code(),
            StatusCode::kTypeError);
  EXPECT_EQ(GroupBy(*t, {"region"}, {{AggFn::kSum, "", ""}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(GroupByTest, DefaultOutputNames) {
  AggSpec spec{AggFn::kMean, "amount", ""};
  EXPECT_EQ(spec.OutputName(), "avg_amount");
  AggSpec star{AggFn::kCount, "", ""};
  EXPECT_EQ(star.OutputName(), "count");
  AggSpec named{AggFn::kSum, "x", "total"};
  EXPECT_EQ(named.OutputName(), "total");
}

}  // namespace
}  // namespace blaeu::monet
