// Agglomerative hierarchical clustering (Lance-Williams updates). Baseline
// comparator for PAM and an alternative map detector for arbitrarily shaped
// clusters (single linkage chains).
#pragma once

#include "common/status.h"
#include "cluster/clustering.h"
#include "stats/distance.h"

namespace blaeu::cluster {

/// Linkage criteria.
enum class Linkage { kSingle, kComplete, kAverage };

/// \brief One merge step of the dendrogram.
///
/// Nodes 0..n-1 are leaves; merge i creates node n+i from `left` and
/// `right` at the given `height`.
struct MergeStep {
  size_t left;
  size_t right;
  double height;
};

/// \brief Full dendrogram.
struct Dendrogram {
  size_t num_leaves = 0;
  std::vector<MergeStep> merges;  ///< size num_leaves - 1

  /// Flat labels obtained by cutting into exactly `k` clusters (undoing the
  /// last k-1 merges). Labels are renumbered 0..k-1 by first occurrence.
  Result<std::vector<int>> CutToK(size_t k) const;
};

/// Builds the dendrogram over a distance matrix. O(n^3) naive
/// implementation; adequate for sampled inputs.
Result<Dendrogram> AgglomerativeCluster(const stats::DistanceMatrix& dist,
                                        Linkage linkage);

/// Convenience: dendrogram cut to `k` clusters as a ClusteringResult (the
/// medoid of each cluster is its point with minimal within-cluster distance
/// sum).
Result<ClusteringResult> AgglomerativeToK(const stats::DistanceMatrix& dist,
                                          Linkage linkage, size_t k);

}  // namespace blaeu::cluster
