// Selection vectors: sorted row-id sets produced by filters and samples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace blaeu::monet {

/// \brief A subset of row positions in a table, kept sorted ascending.
///
/// The MonetDB-style intermediate: filters produce selections, selections
/// compose by intersection, and materialization (Table::Take) is deferred
/// until the data is actually needed.
class SelectionVector {
 public:
  SelectionVector() = default;
  explicit SelectionVector(std::vector<uint32_t> rows)
      : rows_(std::move(rows)) {}

  /// All rows of a table of `n` rows.
  static SelectionVector All(size_t n);

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  uint32_t operator[](size_t i) const { return rows_[i]; }
  const std::vector<uint32_t>& rows() const { return rows_; }
  std::vector<uint32_t>& mutable_rows() { return rows_; }

  void push_back(uint32_t row) { rows_.push_back(row); }

  /// Set intersection with another sorted selection.
  SelectionVector Intersect(const SelectionVector& other) const;

  /// Set union with another sorted selection.
  SelectionVector Union(const SelectionVector& other) const;

  /// Rows of this selection NOT in `other` (both sorted).
  SelectionVector Difference(const SelectionVector& other) const;

  bool operator==(const SelectionVector& other) const {
    return rows_ == other.rows_;
  }

  /// Stable 64-bit content fingerprint (FNV-1a over size + row ids). Equal
  /// selections always fingerprint equal; distinct selections collide with
  /// probability ~2^-64. Used as the selection component of map-cache keys.
  uint64_t Fingerprint() const;

 private:
  std::vector<uint32_t> rows_;
};

}  // namespace blaeu::monet
