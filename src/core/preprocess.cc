#include "core/preprocess.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_map>

#include "common/parallel.h"
#include "monet/column_stats.h"
#include "stats/normalize.h"

namespace blaeu::core {

using monet::Column;
using monet::ColumnStats;
using monet::DataType;
using monet::SelectionVector;
using monet::Table;

std::vector<bool> PreprocessedData::categorical_mask() const {
  std::vector<bool> mask;
  mask.reserve(feature_info.size());
  for (const auto& f : feature_info) mask.push_back(f.is_categorical);
  return mask;
}

size_t PreprocessPlan::ApproxBytes() const {
  size_t bytes = sizeof(PreprocessPlan);
  for (const ColumnPlan& plan : columns) {
    bytes += sizeof(ColumnPlan);
    for (const std::string& c : plan.categories) bytes += c.capacity() + 1;
    for (const auto& [key, value] : plan.code) {
      (void)value;
      bytes += key.capacity() + sizeof(int) + 32;  // node overhead estimate
    }
  }
  for (const FeatureInfo& f : feature_info) {
    bytes += sizeof(FeatureInfo) + f.source_name.capacity() +
             f.category.capacity();
  }
  bytes += (used_columns.size() + dropped_keys.size()) * sizeof(size_t);
  return bytes;
}

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Top categories of a column over the selection, most frequent first.
std::vector<std::string> TopCategories(const Column& col,
                                       const SelectionVector& sel,
                                       size_t max_categories) {
  std::unordered_map<std::string, size_t> counts;
  for (uint32_t r : sel.rows()) {
    if (!col.IsNull(r)) ++counts[col.GetValue(r).ToString()];
  }
  std::vector<std::pair<std::string, size_t>> ranked(counts.begin(),
                                                     counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::string> out;
  for (size_t i = 0; i < ranked.size() && i < max_categories; ++i) {
    out.push_back(ranked[i].first);
  }
  return out;
}

}  // namespace

Result<PreprocessPlan> PlanPreprocess(const Table& table,
                                      const SelectionVector& sel,
                                      const PreprocessOptions& options) {
  if (sel.empty()) return Status::Invalid("empty selection");
  PreprocessPlan out;
  out.encoding = options.encoding;

  std::vector<size_t> keys;
  if (options.remove_primary_keys) {
    // Key detection scans the whole table (not the selection), so a caller
    // that already knows the answer for this (table, columns) pair can pass
    // it back in without changing the output.
    keys = options.known_primary_keys != nullptr
               ? *options.known_primary_keys
               : monet::DetectPrimaryKeyColumns(table);
  }
  out.dropped_keys = keys;
  auto is_key = [&](size_t c) {
    return std::find(keys.begin(), keys.end(), c) != keys.end();
  };

  // Each column's plan (stats, category ranking, normalizer fit) is a full
  // pass over the selection and independent of the others, so columns are
  // planned in parallel and collected in schema order afterwards.
  const size_t num_columns = table.num_columns();
  std::vector<std::optional<ColumnPlan>> column_plans(num_columns);
  ParallelFor(
      0, num_columns, 1,
      [&](size_t col_lo, size_t col_hi) {
        for (size_t c = col_lo; c < col_hi; ++c) {
          if (is_key(c)) continue;
          const Column& col = *table.column(c);
          ColumnStats cs = monet::ComputeColumnStats(col, sel);
          if (cs.count == cs.null_count) continue;  // all-null: no encoding
          if (cs.distinct <= 1) continue;           // constant: no signal
          ColumnPlan plan;
          plan.column = c;
          plan.categorical = monet::LooksCategorical(
              col, cs, options.categorical_distinct_threshold);
          if (plan.categorical) {
            plan.categories = TopCategories(col, sel, options.max_categories);
            if (options.encoding == CategoricalEncoding::kGower) {
              for (size_t i = 0; i < plan.categories.size(); ++i) {
                plan.code[plan.categories[i]] = static_cast<int>(i);
              }
            }
          } else {
            std::vector<double> values;
            values.reserve(sel.size());
            for (uint32_t r : sel.rows()) {
              if (!col.IsNull(r)) values.push_back(col.GetNumeric(r));
            }
            plan.normalizer = options.zscore
                                  ? stats::Normalizer::ZScore(values)
                                  : stats::Normalizer::MinMax(values);
            double sum = 0;
            for (double v : values) sum += plan.normalizer.Apply(v);
            plan.impute = values.empty()
                              ? 0.0
                              : sum / static_cast<double>(values.size());
          }
          column_plans[c] = std::move(plan);
        }
      },
      options.num_threads);
  for (size_t c = 0; c < num_columns; ++c) {
    if (!column_plans[c].has_value()) continue;
    out.used_columns.push_back(c);
    out.columns.push_back(std::move(*column_plans[c]));
  }
  if (out.columns.empty()) {
    return Status::Invalid("no usable columns after preprocessing");
  }

  // Feature layout.
  for (const ColumnPlan& plan : out.columns) {
    const std::string& name = table.schema().field(plan.column).name;
    if (!plan.categorical) {
      out.feature_info.push_back({plan.column, name, false, ""});
    } else if (options.encoding == CategoricalEncoding::kDummy) {
      for (const std::string& cat : plan.categories) {
        out.feature_info.push_back({plan.column, name, true, cat});
      }
    } else {
      out.feature_info.push_back({plan.column, name, true, ""});
    }
  }
  return out;
}

Result<PreprocessedData> FillFeatures(const Table& table,
                                      const SelectionVector& sel,
                                      const PreprocessPlan& plan,
                                      size_t num_threads) {
  if (sel.empty()) return Status::Invalid("empty selection");
  for (const ColumnPlan& cp : plan.columns) {
    if (cp.column >= table.num_columns()) {
      return Status::Invalid("preprocess plan does not match the table");
    }
  }
  PreprocessedData out;
  out.rows = sel.rows();
  out.feature_info = plan.feature_info;
  out.used_columns = plan.used_columns;
  out.dropped_keys = plan.dropped_keys;

  const size_t n = sel.size();
  const size_t dims = plan.feature_info.size();
  out.features = stats::Matrix(n, dims);
  const bool gower = plan.encoding == CategoricalEncoding::kGower;

  // Fill one matrix row per selected tuple. Rows are disjoint, so the loop
  // parallelizes with bit-identical output at any thread count.
  ParallelFor(
      0, n, 64,
      [&](size_t row_lo, size_t row_hi) {
        for (size_t i = row_lo; i < row_hi; ++i) {
          uint32_t r = sel[i];
          double* row = out.features.MutableRowPtr(i);
          size_t f = 0;
          for (const ColumnPlan& cp : plan.columns) {
            const Column& col = *table.column(cp.column);
            if (!cp.categorical) {
              if (col.IsNull(r)) {
                row[f++] = gower ? kNaN : cp.impute;
              } else {
                row[f++] = cp.normalizer.Apply(col.GetNumeric(r));
              }
              continue;
            }
            if (gower) {
              if (col.IsNull(r)) {
                row[f++] = kNaN;
              } else {
                auto it = cp.code.find(col.GetValue(r).ToString());
                // Categories beyond the cap share one overflow code.
                row[f++] = it != cp.code.end()
                               ? static_cast<double>(it->second)
                               : static_cast<double>(cp.code.size());
              }
              continue;
            }
            // Dummy coding: 1 for the matching category, else 0. The null
            // test and cell string are per-row, not per-category.
            const bool is_null = col.IsNull(r);
            const std::string cell =
                is_null ? std::string() : col.GetValue(r).ToString();
            for (const std::string& cat : cp.categories) {
              row[f++] = (!is_null && cell == cat) ? 1.0 : 0.0;
            }
          }
        }
      },
      num_threads);
  return out;
}

Result<PreprocessedData> Preprocess(const Table& table,
                                    const SelectionVector& sel,
                                    const PreprocessOptions& options) {
  std::shared_ptr<const PreprocessPlan> plan = options.reuse_plan;
  if (plan == nullptr) {
    BLAEU_ASSIGN_OR_RETURN(PreprocessPlan fresh,
                           PlanPreprocess(table, sel, options));
    plan = std::make_shared<const PreprocessPlan>(std::move(fresh));
  }
  if (options.plan_out != nullptr) *options.plan_out = plan;
  return FillFeatures(table, sel, *plan, options.num_threads);
}

}  // namespace blaeu::core
