// Unit tests for selection vectors.
#include "monet/selection.h"

#include <gtest/gtest.h>

namespace blaeu::monet {
namespace {

TEST(SelectionTest, AllCoversRange) {
  SelectionVector s = SelectionVector::All(4);
  EXPECT_EQ(s.rows(), (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(SelectionVector::All(0).size(), 0u);
}

TEST(SelectionTest, Intersect) {
  SelectionVector a({0, 2, 4, 6});
  SelectionVector b({2, 3, 4, 7});
  EXPECT_EQ(a.Intersect(b).rows(), (std::vector<uint32_t>{2, 4}));
  EXPECT_EQ(a.Intersect(SelectionVector()).size(), 0u);
}

TEST(SelectionTest, Union) {
  SelectionVector a({0, 2});
  SelectionVector b({1, 2, 5});
  EXPECT_EQ(a.Union(b).rows(), (std::vector<uint32_t>{0, 1, 2, 5}));
}

TEST(SelectionTest, Difference) {
  SelectionVector a({0, 1, 2, 3});
  SelectionVector b({1, 3});
  EXPECT_EQ(a.Difference(b).rows(), (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(b.Difference(a).size(), 0u);
}

TEST(SelectionTest, SetAlgebraIdentities) {
  SelectionVector a({1, 4, 9});
  EXPECT_EQ(a.Intersect(a), a);
  EXPECT_EQ(a.Union(a), a);
  EXPECT_EQ(a.Difference(a).size(), 0u);
}

}  // namespace
}  // namespace blaeu::monet
