// Unit tests for the column dependency measure (the Figure 2 edge weights).
#include "stats/column_dependency.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "monet/table.h"

namespace blaeu::stats {
namespace {

using monet::DataType;
using monet::Schema;
using monet::TableBuilder;
using monet::TablePtr;
using monet::Value;

/// Builds a table with: x uniform; y = x^2 (nonlinear dependence);
/// z independent noise; cat a category tracking sign(x).
TablePtr DependencyTable(size_t n, uint64_t seed) {
  TableBuilder b(Schema({{"x", DataType::kDouble},
                         {"y", DataType::kDouble},
                         {"z", DataType::kDouble},
                         {"cat", DataType::kString}}));
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    double x = rng.NextUniform(-3.0, 3.0);
    EXPECT_TRUE(b.AppendRow({Value::Double(x), Value::Double(x * x),
                             Value::Double(rng.NextGaussian()),
                             Value::Str(x > 0 ? "pos" : "neg")})
                    .ok());
  }
  return *b.Finish();
}

std::vector<uint32_t> AllRows(size_t n) {
  std::vector<uint32_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = static_cast<uint32_t>(i);
  return rows;
}

TEST(EncodeTest, CategoricalDictionaryCoding) {
  auto t = DependencyTable(50, 1);
  std::vector<int> codes =
      EncodeColumnDiscrete(*t->column(3), AllRows(50), 8);
  for (int c : codes) {
    EXPECT_GE(c, 0);
    EXPECT_LE(c, 1);
  }
}

TEST(EncodeTest, NullsGetOwnCode) {
  monet::Column col(DataType::kDouble);
  col.AppendDouble(1);
  col.AppendNull();
  col.AppendDouble(2);
  std::vector<int> codes = EncodeColumnDiscrete(col, {0, 1, 2}, 4);
  EXPECT_EQ(codes[1], -1);
  EXPECT_GE(codes[0], 0);
}

TEST(DependencyTest, NonlinearDependenceDetectedByMI) {
  auto t = DependencyTable(2000, 2);
  DependencyOptions mi;
  mi.sample_rows = 0;
  double dep_xy = ColumnDependency(*t, 0, 1, AllRows(2000), mi);
  double dep_xz = ColumnDependency(*t, 0, 2, AllRows(2000), mi);
  EXPECT_GT(dep_xy, 0.5);   // y = x^2 strongly dependent
  EXPECT_LT(dep_xz, 0.15);  // noise independent
}

TEST(DependencyTest, PearsonMissesNonlinearMIFinds) {
  // The paper's reason for choosing MI: sensitivity to non-linear
  // relationships. y = x^2 on symmetric x has |Pearson| ~ 0.
  auto t = DependencyTable(2000, 3);
  DependencyOptions pearson;
  pearson.measure = DependencyMeasure::kAbsPearson;
  pearson.sample_rows = 0;
  DependencyOptions mi;
  mi.sample_rows = 0;
  double p = ColumnDependency(*t, 0, 1, AllRows(2000), pearson);
  double m = ColumnDependency(*t, 0, 1, AllRows(2000), mi);
  EXPECT_LT(p, 0.15);
  EXPECT_GT(m, 0.5);
}

TEST(DependencyTest, MixedTypePairsUseMIEvenUnderCorrelationMeasure) {
  auto t = DependencyTable(500, 4);
  DependencyOptions pearson;
  pearson.measure = DependencyMeasure::kAbsPearson;
  pearson.sample_rows = 0;
  // x vs cat: cat tracks sign(x), strong dependence; correlation is not
  // defined for strings so the implementation falls back to NMI.
  double dep = ColumnDependency(*t, 0, 3, AllRows(500), pearson);
  EXPECT_GT(dep, 0.3);
}

TEST(DependencyMatrixTest, SymmetricUnitDiagonal) {
  auto t = DependencyTable(800, 5);
  DependencyOptions opt;
  opt.sample_rows = 400;
  auto dep = *DependencyMatrix(*t, opt);
  ASSERT_EQ(dep.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(dep[i][i], 1.0);
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(dep[i][j], dep[j][i]);
      EXPECT_GE(dep[i][j], 0.0);
      EXPECT_LE(dep[i][j], 1.0);
    }
  }
  EXPECT_GT(dep[0][1], dep[0][2]);  // x-y beats x-noise
}

TEST(DependencyMatrixTest, SamplingApproximatesFull) {
  auto t = DependencyTable(3000, 6);
  DependencyOptions full;
  full.sample_rows = 0;
  DependencyOptions sampled;
  sampled.sample_rows = 600;
  auto dep_full = *DependencyMatrix(*t, full);
  auto dep_sample = *DependencyMatrix(*t, sampled);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(dep_full[i][j], dep_sample[i][j], 0.12);
    }
  }
}

TEST(DependencyMatrixTest, EmptyTableFails) {
  TableBuilder b(Schema({{"x", DataType::kDouble}}));
  auto t = *b.Finish();
  DependencyOptions opt;
  EXPECT_FALSE(DependencyMatrix(*t, opt).ok());
}

}  // namespace
}  // namespace blaeu::stats
