#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "common/string_util.h"

namespace blaeu::stats {

using monet::Column;
using monet::DataType;
using monet::SelectionVector;

std::string Histogram::ToAscii(size_t width) const {
  std::ostringstream out;
  size_t max_count = 1;
  for (size_t c : counts) max_count = std::max(max_count, c);
  const size_t k = counts.size();
  const double bin_width = k > 0 ? (max - min) / static_cast<double>(k) : 0;
  for (size_t i = 0; i < k; ++i) {
    double lo = min + bin_width * static_cast<double>(i);
    double hi = lo + bin_width;
    size_t bar = (counts[i] * width) / max_count;
    out << "[" << FormatDouble(lo, 4) << ", " << FormatDouble(hi, 4)
        << (i + 1 == k ? "]" : ")") << "\t" << std::string(bar, '#') << " "
        << counts[i] << "\n";
  }
  if (null_count > 0) out << "NULL\t" << null_count << "\n";
  return out.str();
}

Result<Histogram> NumericHistogram(const Column& col,
                                   const SelectionVector& sel,
                                   size_t num_bins) {
  if (col.type() == DataType::kString) {
    return blaeu::Status::TypeError("histogram requires a numeric column");
  }
  if (num_bins == 0) return blaeu::Status::Invalid("num_bins must be > 0");
  Histogram h;
  h.counts.assign(num_bins, 0);
  bool first = true;
  std::vector<double> values;
  values.reserve(sel.size());
  for (uint32_t r : sel.rows()) {
    if (col.IsNull(r)) {
      ++h.null_count;
      continue;
    }
    double v = col.GetNumeric(r);
    values.push_back(v);
    if (first) {
      h.min = h.max = v;
      first = false;
    } else {
      h.min = std::min(h.min, v);
      h.max = std::max(h.max, v);
    }
  }
  if (values.empty()) return h;
  double range = h.max - h.min;
  for (double v : values) {
    size_t bin =
        range > 0
            ? std::min(num_bins - 1,
                       static_cast<size_t>((v - h.min) / range *
                                           static_cast<double>(num_bins)))
            : 0;
    ++h.counts[bin];
  }
  return h;
}

std::string FrequencyTable::ToAscii(size_t width) const {
  std::ostringstream out;
  size_t max_count = 1;
  for (const auto& [_, c] : entries) max_count = std::max(max_count, c);
  for (const auto& [name, c] : entries) {
    size_t bar = (c * width) / max_count;
    out << name << "\t" << std::string(bar, '#') << " " << c << "\n";
  }
  if (null_count > 0) out << "NULL\t" << null_count << "\n";
  if (distinct > entries.size()) {
    out << "... (" << distinct - entries.size() << " more values)\n";
  }
  return out.str();
}

FrequencyTable CategoricalFrequencies(const Column& col,
                                      const SelectionVector& sel,
                                      size_t max_entries) {
  FrequencyTable t;
  if (col.type() == DataType::kString) {
    // One dense counter slot per dictionary code; strings render once per
    // distinct value when the table is assembled.
    const std::vector<int32_t>& codes = col.codes();
    const monet::Dictionary& dict = *col.dictionary();
    std::vector<size_t> counts(dict.size(), 0);
    for (uint32_t r : sel.rows()) {
      const int32_t c = codes[r];
      if (c == monet::Dictionary::kNullCode) {
        ++t.null_count;
      } else {
        ++counts[static_cast<size_t>(c)];
      }
    }
    for (size_t code = 0; code < counts.size(); ++code) {
      if (counts[code] > 0) {
        ++t.distinct;
        t.entries.emplace_back(dict.value(static_cast<int32_t>(code)),
                               counts[code]);
      }
    }
    std::sort(t.entries.begin(), t.entries.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (t.entries.size() > max_entries) t.entries.resize(max_entries);
    return t;
  }
  std::unordered_map<std::string, size_t> counts;
  for (uint32_t r : sel.rows()) {
    if (col.IsNull(r)) {
      ++t.null_count;
      continue;
    }
    ++counts[col.GetValue(r).ToString()];
  }
  t.distinct = counts.size();
  t.entries.assign(counts.begin(), counts.end());
  std::sort(t.entries.begin(), t.entries.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (t.entries.size() > max_entries) t.entries.resize(max_entries);
  return t;
}

std::string BinnedScatter::ToAscii() const {
  static const char kShades[] = " .:*#@";
  size_t max_count = 1;
  for (size_t c : counts) max_count = std::max(max_count, c);
  std::ostringstream out;
  for (size_t yi = y_bins; yi-- > 0;) {  // top row = largest y
    out << "|";
    for (size_t xi = 0; xi < x_bins; ++xi) {
      size_t c = At(yi, xi);
      size_t shade = c == 0 ? 0 : 1 + (c * 4) / max_count;
      out << kShades[std::min<size_t>(shade, 5)];
    }
    out << "|\n";
  }
  out << "x: [" << FormatDouble(x_min, 4) << ", " << FormatDouble(x_max, 4)
      << "]  y: [" << FormatDouble(y_min, 4) << ", " << FormatDouble(y_max, 4)
      << "]\n";
  return out.str();
}

Result<BinnedScatter> BivariateScatter(const Column& x, const Column& y,
                                       const SelectionVector& sel,
                                       size_t x_bins, size_t y_bins) {
  if (x.type() == DataType::kString || y.type() == DataType::kString) {
    return blaeu::Status::TypeError("scatter requires numeric columns");
  }
  if (x_bins == 0 || y_bins == 0) {
    return blaeu::Status::Invalid("bins must be > 0");
  }
  BinnedScatter s;
  s.x_bins = x_bins;
  s.y_bins = y_bins;
  s.counts.assign(x_bins * y_bins, 0);
  std::vector<std::pair<double, double>> pts;
  bool first = true;
  for (uint32_t r : sel.rows()) {
    if (x.IsNull(r) || y.IsNull(r)) continue;
    double xv = x.GetNumeric(r), yv = y.GetNumeric(r);
    pts.emplace_back(xv, yv);
    if (first) {
      s.x_min = s.x_max = xv;
      s.y_min = s.y_max = yv;
      first = false;
    } else {
      s.x_min = std::min(s.x_min, xv);
      s.x_max = std::max(s.x_max, xv);
      s.y_min = std::min(s.y_min, yv);
      s.y_max = std::max(s.y_max, yv);
    }
  }
  double xr = s.x_max - s.x_min, yr = s.y_max - s.y_min;
  for (auto [xv, yv] : pts) {
    size_t xi = xr > 0 ? std::min(x_bins - 1,
                                  static_cast<size_t>((xv - s.x_min) / xr *
                                                      static_cast<double>(
                                                          x_bins)))
                       : 0;
    size_t yi = yr > 0 ? std::min(y_bins - 1,
                                  static_cast<size_t>((yv - s.y_min) / yr *
                                                      static_cast<double>(
                                                          y_bins)))
                       : 0;
    ++s.counts[yi * x_bins + xi];
  }
  return s;
}

}  // namespace blaeu::stats
