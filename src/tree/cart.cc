#include "tree/cart.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "common/parallel.h"
#include "common/string_util.h"

namespace blaeu::tree {

using monet::Column;
using monet::Condition;
using monet::DataType;
using monet::Table;

namespace {

/// Nodes with fewer training rows than this search their split serially:
/// the per-column work is too small to amortize a pool dispatch.
constexpr size_t kParallelSplitMinRows = 256;

double Impurity(const std::vector<size_t>& counts, size_t total,
                SplitCriterion criterion) {
  if (total == 0) return 0.0;
  const double dt = static_cast<double>(total);
  double v = criterion == SplitCriterion::kGini ? 1.0 : 0.0;
  for (size_t c : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / dt;
    if (criterion == SplitCriterion::kGini) {
      v -= p * p;
    } else {
      v -= p * std::log(p);
    }
  }
  return v;
}

struct SplitSpec {
  bool found = false;
  size_t column = 0;
  bool categorical = false;
  double threshold = 0.0;
  std::vector<std::string> categories;
  bool null_goes_left = false;
  double impurity_decrease = 0.0;
};

struct TrainContext {
  const Table* table;
  const std::vector<int>* labels;  // parallel to the *original* rows vector
  size_t num_classes;
  CartOptions options;
};

/// Class histogram of a row subset. `idx` indexes into ctx.labels.
std::vector<size_t> CountClasses(const TrainContext& ctx,
                                 const std::vector<size_t>& idx) {
  std::vector<size_t> counts(ctx.num_classes, 0);
  for (size_t i : idx) ++counts[(*ctx.labels)[i]];
  return counts;
}

/// Best numeric split of `col` over the subset.
void BestNumericSplit(const TrainContext& ctx,
                      const std::vector<uint32_t>& rows,
                      const std::vector<size_t>& idx, size_t col_idx,
                      double parent_impurity, SplitSpec* best) {
  const Column& col = *ctx.table->column(col_idx);
  // Collect (value, label) pairs; count nulls per class.
  std::vector<std::pair<double, int>> pairs;
  pairs.reserve(idx.size());
  std::vector<size_t> null_counts(ctx.num_classes, 0);
  size_t nulls = 0;
  for (size_t i : idx) {
    uint32_t r = rows[i];
    int label = (*ctx.labels)[i];
    if (col.IsNull(r)) {
      ++null_counts[label];
      ++nulls;
    } else {
      pairs.emplace_back(col.GetNumeric(r), label);
    }
  }
  if (pairs.size() < 2) return;
  std::sort(pairs.begin(), pairs.end());
  if (pairs.front().first == pairs.back().first) return;  // constant

  const size_t total = idx.size();
  // Candidate thresholds: midpoints between distinct consecutive values,
  // optionally thinned to quantiles.
  std::vector<size_t> boundaries;  // index i: split between i-1 and i
  for (size_t i = 1; i < pairs.size(); ++i) {
    if (pairs[i].first != pairs[i - 1].first) boundaries.push_back(i);
  }
  if (ctx.options.max_thresholds > 0 &&
      boundaries.size() > ctx.options.max_thresholds) {
    std::vector<size_t> thinned;
    for (size_t t = 0; t < ctx.options.max_thresholds; ++t) {
      size_t pick = (t * boundaries.size()) / ctx.options.max_thresholds;
      thinned.push_back(boundaries[pick]);
    }
    thinned.erase(std::unique(thinned.begin(), thinned.end()), thinned.end());
    boundaries = std::move(thinned);
  }

  // Prefix class counts for O(1) impurity at each boundary.
  std::vector<size_t> total_counts = CountClasses(ctx, idx);
  std::vector<size_t> left_counts(ctx.num_classes, 0);
  size_t next_boundary = 0;
  for (size_t i = 0; i < pairs.size() && next_boundary < boundaries.size();
       ++i) {
    if (i == boundaries[next_boundary]) {
      // Evaluate split "value <= midpoint" with left = pairs[0..i).
      // Nulls join the larger side.
      size_t left_n = i;
      size_t right_n = pairs.size() - i;
      bool null_left = left_n >= right_n;
      std::vector<size_t> lc = left_counts;
      std::vector<size_t> rc(ctx.num_classes);
      for (size_t c = 0; c < ctx.num_classes; ++c) {
        rc[c] = total_counts[c] - lc[c] - null_counts[c];
      }
      if (null_left) {
        for (size_t c = 0; c < ctx.num_classes; ++c) lc[c] += null_counts[c];
        left_n += nulls;
      } else {
        right_n += nulls;
      }
      if (left_n >= ctx.options.min_samples_leaf &&
          right_n >= ctx.options.min_samples_leaf) {
        double wl = static_cast<double>(left_n) / static_cast<double>(total);
        double wr = static_cast<double>(right_n) / static_cast<double>(total);
        double child = wl * Impurity(lc, left_n, ctx.options.criterion) +
                       wr * Impurity(rc, right_n, ctx.options.criterion);
        double decrease = parent_impurity - child;
        if (decrease > best->impurity_decrease) {
          best->found = true;
          best->column = col_idx;
          best->categorical = false;
          best->threshold =
              (pairs[i - 1].first + pairs[i].first) / 2.0;
          best->null_goes_left = null_left;
          best->impurity_decrease = decrease;
        }
      }
      ++next_boundary;
    }
    ++left_counts[pairs[i].second];
  }
}

/// Best categorical split: greedy set growing over categories ordered by
/// their class profile (start from the best single category, keep adding
/// while impurity improves).
void BestCategoricalSplit(const TrainContext& ctx,
                          const std::vector<uint32_t>& rows,
                          const std::vector<size_t>& idx, size_t col_idx,
                          double parent_impurity, SplitSpec* best) {
  const Column& col = *ctx.table->column(col_idx);
  std::unordered_map<std::string, std::vector<size_t>> per_category;
  std::vector<size_t> null_counts(ctx.num_classes, 0);
  size_t nulls = 0;
  if (col.type() == DataType::kString) {
    // Count class profiles per dictionary code; category strings are
    // rendered once per distinct value when the map is assembled below.
    const std::vector<int32_t>& cell_codes = col.codes();
    std::unordered_map<int32_t, std::vector<size_t>> per_code;
    for (size_t i : idx) {
      const int32_t c = cell_codes[rows[i]];
      if (c == monet::Dictionary::kNullCode) {
        ++null_counts[(*ctx.labels)[i]];
        ++nulls;
        continue;
      }
      auto [it, _] = per_code.try_emplace(c);
      it->second.resize(ctx.num_classes, 0);
      ++it->second[(*ctx.labels)[i]];
    }
    const monet::Dictionary& dict = *col.dictionary();
    for (auto& [code, counts] : per_code) {
      per_category.emplace(dict.value(code), std::move(counts));
    }
  } else if (col.type() == DataType::kBool) {
    std::vector<size_t> counts[2];
    for (size_t i : idx) {
      uint32_t r = rows[i];
      if (col.IsNull(r)) {
        ++null_counts[(*ctx.labels)[i]];
        ++nulls;
        continue;
      }
      std::vector<size_t>& slot = counts[col.bools()[r] ? 1 : 0];
      slot.resize(ctx.num_classes, 0);
      ++slot[(*ctx.labels)[i]];
    }
    if (!counts[1].empty()) per_category.emplace("true", std::move(counts[1]));
    if (!counts[0].empty()) per_category.emplace("false", std::move(counts[0]));
  } else {
    for (size_t i : idx) {
      uint32_t r = rows[i];
      if (col.IsNull(r)) {
        ++null_counts[(*ctx.labels)[i]];
        ++nulls;
        continue;
      }
      std::string key = col.GetValue(r).ToString();
      auto [it, _] = per_category.try_emplace(key);
      it->second.resize(ctx.num_classes, 0);
      ++it->second[(*ctx.labels)[i]];
    }
  }
  if (per_category.size() < 2 || per_category.size() > 64) return;

  std::vector<size_t> total_counts = CountClasses(ctx, idx);
  const size_t total = idx.size();

  // Evaluate a candidate left-set given its class counts.
  auto evaluate = [&](const std::vector<size_t>& lc_base, size_t left_base) {
    size_t left_n = left_base;
    size_t right_n = total - nulls - left_base;
    bool null_left = left_n >= right_n;
    std::vector<size_t> lc = lc_base;
    std::vector<size_t> rc(ctx.num_classes);
    for (size_t c = 0; c < ctx.num_classes; ++c) {
      rc[c] = total_counts[c] - lc[c] - null_counts[c];
    }
    if (null_left) {
      for (size_t c = 0; c < ctx.num_classes; ++c) lc[c] += null_counts[c];
      left_n += nulls;
    } else {
      right_n += nulls;
    }
    if (left_n < ctx.options.min_samples_leaf ||
        right_n < ctx.options.min_samples_leaf) {
      return std::make_pair(-1.0, false);
    }
    double wl = static_cast<double>(left_n) / static_cast<double>(total);
    double wr = static_cast<double>(right_n) / static_cast<double>(total);
    double child = wl * Impurity(lc, left_n, ctx.options.criterion) +
                   wr * Impurity(rc, right_n, ctx.options.criterion);
    return std::make_pair(parent_impurity - child, null_left);
  };

  // Greedy growth.
  std::vector<std::string> remaining;
  remaining.reserve(per_category.size());
  for (const auto& [cat, _] : per_category) remaining.push_back(cat);
  std::sort(remaining.begin(), remaining.end());  // determinism

  std::vector<std::string> chosen;
  std::vector<size_t> chosen_counts(ctx.num_classes, 0);
  size_t chosen_n = 0;
  double chosen_decrease = 0.0;
  bool chosen_null_left = false;

  while (!remaining.empty() && chosen.size() + 1 < per_category.size()) {
    double round_best = chosen_decrease;
    size_t round_pick = remaining.size();
    bool round_null_left = false;
    for (size_t r = 0; r < remaining.size(); ++r) {
      const auto& counts = per_category[remaining[r]];
      std::vector<size_t> lc = chosen_counts;
      size_t ln = chosen_n;
      for (size_t c = 0; c < ctx.num_classes; ++c) {
        lc[c] += counts[c];
        ln += counts[c];
      }
      auto [decrease, null_left] = evaluate(lc, ln);
      if (decrease > round_best) {
        round_best = decrease;
        round_pick = r;
        round_null_left = null_left;
      }
    }
    if (round_pick == remaining.size()) break;  // no improvement
    const auto& counts = per_category[remaining[round_pick]];
    for (size_t c = 0; c < ctx.num_classes; ++c) {
      chosen_counts[c] += counts[c];
      chosen_n += counts[c];
    }
    chosen.push_back(remaining[round_pick]);
    remaining.erase(remaining.begin() + round_pick);
    chosen_decrease = round_best;
    chosen_null_left = round_null_left;
  }

  if (!chosen.empty() && chosen_decrease > best->impurity_decrease) {
    best->found = true;
    best->column = col_idx;
    best->categorical = true;
    std::sort(chosen.begin(), chosen.end());
    best->categories = std::move(chosen);
    best->null_goes_left = chosen_null_left;
    best->impurity_decrease = chosen_decrease;
  }
}

bool RowGoesLeft(const CartNode& node, const Column& col, uint32_t row) {
  if (col.IsNull(row)) return node.null_goes_left;
  if (node.categorical_split) {
    // Categorical splits only exist on string/bool columns; both sides of
    // the comparison are referenced, not materialized.
    static const std::string kTrue = "true", kFalse = "false";
    const std::string& v = col.type() == DataType::kString
                               ? col.StringAt(row)
                               : (col.bools()[row] ? kTrue : kFalse);
    return std::binary_search(node.categories.begin(), node.categories.end(),
                              v);
  }
  return col.GetNumeric(row) <= node.threshold;
}

std::unique_ptr<CartNode> Grow(const TrainContext& ctx,
                               const std::vector<uint32_t>& rows,
                               const std::vector<size_t>& idx, size_t depth) {
  auto node = std::make_unique<CartNode>();
  std::vector<size_t> counts = CountClasses(ctx, idx);
  node->count = idx.size();
  node->class_fractions.resize(ctx.num_classes, 0.0);
  size_t best_count = 0;
  for (size_t c = 0; c < ctx.num_classes; ++c) {
    node->class_fractions[c] =
        idx.empty() ? 0.0
                    : static_cast<double>(counts[c]) /
                          static_cast<double>(idx.size());
    if (counts[c] > best_count) {
      best_count = counts[c];
      node->label = static_cast<int>(c);
    }
  }
  double parent_impurity = Impurity(counts, idx.size(), ctx.options.criterion);
  bool pure = best_count == idx.size();
  if (depth >= ctx.options.max_depth || pure ||
      idx.size() < ctx.options.min_samples_split) {
    return node;
  }

  SplitSpec best;
  best.impurity_decrease = ctx.options.min_impurity_decrease;
  const size_t num_columns = ctx.table->num_columns();
  auto search_column = [&](size_t col, SplitSpec* spec) {
    DataType type = ctx.table->schema().field(col).type;
    if (type == DataType::kString || type == DataType::kBool) {
      BestCategoricalSplit(ctx, rows, idx, col, parent_impurity, spec);
    } else {
      BestNumericSplit(ctx, rows, idx, col, parent_impurity, spec);
    }
  };
  if (num_columns > 1 && idx.size() >= kParallelSplitMinRows &&
      blaeu::EffectiveNumThreads(ctx.options.num_threads) > 1) {
    // Search each column independently, then merge in ascending column
    // order with a strict improvement test. That reproduces the serial
    // scan exactly: the winner is the lowest column achieving the maximal
    // decrease, and within a column the earliest such candidate.
    std::vector<SplitSpec> specs(num_columns);
    ParallelFor(
        0, num_columns, 1,
        [&](size_t col_lo, size_t col_hi) {
          for (size_t c = col_lo; c < col_hi; ++c) {
            specs[c].impurity_decrease = ctx.options.min_impurity_decrease;
            search_column(c, &specs[c]);
          }
        },
        ctx.options.num_threads);
    for (size_t c = 0; c < num_columns; ++c) {
      if (specs[c].found &&
          specs[c].impurity_decrease > best.impurity_decrease) {
        best = std::move(specs[c]);
      }
    }
  } else {
    for (size_t col = 0; col < num_columns; ++col) {
      search_column(col, &best);
    }
  }
  if (!best.found) return node;

  node->is_leaf = false;
  node->column = best.column;
  node->categorical_split = best.categorical;
  node->threshold = best.threshold;
  node->categories = best.categories;
  node->null_goes_left = best.null_goes_left;
  node->impurity_decrease =
      best.impurity_decrease * static_cast<double>(idx.size());

  const Column& col = *ctx.table->column(best.column);
  std::vector<size_t> left_idx, right_idx;
  for (size_t i : idx) {
    if (RowGoesLeft(*node, col, rows[i])) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  // Guard against degenerate partitions (should not happen given the
  // min_samples_leaf checks, but a NULL-routing corner could).
  if (left_idx.empty() || right_idx.empty()) {
    node->is_leaf = true;
    return node;
  }
  node->left = Grow(ctx, rows, left_idx, depth + 1);
  node->right = Grow(ctx, rows, right_idx, depth + 1);
  return node;
}

/// Training misclassifications in the subtree rooted at `node` (leaves
/// predict their majority class).
size_t SubtreeError(const CartNode& node) {
  if (node.is_leaf) {
    size_t majority = node.label < static_cast<int>(node.class_fractions.size())
                          ? static_cast<size_t>(
                                node.class_fractions[node.label] *
                                    static_cast<double>(node.count) +
                                0.5)
                          : 0;
    return node.count - majority;
  }
  return SubtreeError(*node.left) + SubtreeError(*node.right);
}

size_t SubtreeLeaves(const CartNode& node) {
  if (node.is_leaf) return 1;
  return SubtreeLeaves(*node.left) + SubtreeLeaves(*node.right);
}

/// One weakest-link pass: collapses every internal node whose effective
/// alpha — (error(node-as-leaf) - error(subtree)) / (leaves - 1), as a
/// fraction of the training size — is <= ccp_alpha. Returns true if
/// anything was pruned.
bool PrunePass(CartNode* node, double ccp_alpha, size_t total_rows) {
  if (node->is_leaf) return false;
  bool changed = PrunePass(node->left.get(), ccp_alpha, total_rows);
  changed |= PrunePass(node->right.get(), ccp_alpha, total_rows);
  size_t leaves = SubtreeLeaves(*node);
  if (leaves < 2) return changed;
  size_t majority = static_cast<size_t>(
      node->class_fractions[node->label] * static_cast<double>(node->count) +
      0.5);
  double leaf_error = static_cast<double>(node->count - majority);
  double subtree_error = static_cast<double>(SubtreeError(*node));
  double alpha_eff = (leaf_error - subtree_error) /
                     (static_cast<double>(leaves - 1) *
                      static_cast<double>(total_rows));
  if (alpha_eff <= ccp_alpha) {
    node->is_leaf = true;
    node->left.reset();
    node->right.reset();
    node->categories.clear();
    return true;
  }
  return changed;
}

}  // namespace

Result<CartModel> CartModel::Train(const Table& table,
                                   const std::vector<uint32_t>& rows,
                                   const std::vector<int>& labels,
                                   const CartOptions& options) {
  if (rows.size() != labels.size()) {
    return Status::Invalid("rows/labels size mismatch");
  }
  if (rows.empty()) return Status::Invalid("empty training set");
  int max_label = 0;
  for (int l : labels) {
    if (l < 0) return Status::Invalid("negative class label");
    max_label = std::max(max_label, l);
  }
  TrainContext ctx;
  ctx.table = &table;
  ctx.labels = &labels;
  ctx.num_classes = static_cast<size_t>(max_label) + 1;
  ctx.options = options;

  std::vector<size_t> idx(rows.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::unique_ptr<CartNode> root = Grow(ctx, rows, idx, 0);
  if (options.ccp_alpha > 0.0) {
    // Weakest-link pruning to a fixed alpha; iterate until stable since
    // collapsing children can make the parent prunable.
    while (PrunePass(root.get(), options.ccp_alpha, rows.size())) {
    }
  }

  std::vector<std::string> names;
  names.reserve(table.num_columns());
  for (const auto& f : table.schema().fields()) names.push_back(f.name);
  return CartModel(std::move(root), std::move(names), ctx.num_classes);
}

int CartModel::Predict(const Table& table, size_t row) const {
  const CartNode* node = root_.get();
  while (!node->is_leaf) {
    const Column& col = *table.column(node->column);
    node = RowGoesLeft(*node, col, static_cast<uint32_t>(row))
               ? node->left.get()
               : node->right.get();
  }
  return node->label;
}

std::vector<int> CartModel::PredictAll(
    const Table& table, const std::vector<uint32_t>& rows) const {
  std::vector<int> out;
  out.reserve(rows.size());
  for (uint32_t r : rows) out.push_back(Predict(table, r));
  return out;
}

double CartModel::Fidelity(const Table& table,
                           const std::vector<uint32_t>& rows,
                           const std::vector<int>& labels) const {
  assert(rows.size() == labels.size());
  if (rows.empty()) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (Predict(table, rows[i]) == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(rows.size());
}

namespace {

size_t DepthOf(const CartNode& node) {
  if (node.is_leaf) return 0;
  return 1 + std::max(DepthOf(*node.left), DepthOf(*node.right));
}

size_t LeavesOf(const CartNode& node) {
  if (node.is_leaf) return 1;
  return LeavesOf(*node.left) + LeavesOf(*node.right);
}

void Render(const CartNode& node, const std::vector<std::string>& names,
            size_t indent, std::ostringstream* out) {
  std::string pad(indent * 2, ' ');
  if (node.is_leaf) {
    *out << pad << "-> class " << node.label << " (" << node.count
         << " rows)\n";
    return;
  }
  std::string test;
  if (node.categorical_split) {
    test = names[node.column] + " in {" + Join(node.categories, ", ") + "}";
  } else {
    test = names[node.column] + " <= " + FormatDouble(node.threshold, 4);
  }
  *out << pad << "if " << test << ":\n";
  Render(*node.left, names, indent + 1, out);
  *out << pad << "else:\n";
  Render(*node.right, names, indent + 1, out);
}

}  // namespace

namespace {

void AccumulateImportance(const CartNode& node, std::vector<double>* out) {
  if (node.is_leaf) return;
  (*out)[node.column] += node.impurity_decrease;
  AccumulateImportance(*node.left, out);
  AccumulateImportance(*node.right, out);
}

}  // namespace

std::vector<double> CartModel::FeatureImportances() const {
  std::vector<double> out(column_names_.size(), 0.0);
  AccumulateImportance(*root_, &out);
  double total = 0.0;
  for (double v : out) total += v;
  if (total > 0) {
    for (double& v : out) v /= total;
  }
  return out;
}

size_t CartModel::Depth() const { return DepthOf(*root_); }
size_t CartModel::NumLeaves() const { return LeavesOf(*root_); }

Condition CartModel::BranchCondition(const CartNode& node, bool branch) const {
  assert(!node.is_leaf);
  const std::string& name = column_names_[node.column];
  if (node.categorical_split) {
    return Condition::InSet(name, node.categories, /*negated=*/!branch);
  }
  if (branch) {
    return Condition::Compare(name, monet::CompareOp::kLe,
                              monet::Value::Double(node.threshold));
  }
  return Condition::Compare(name, monet::CompareOp::kGt,
                            monet::Value::Double(node.threshold));
}

std::string CartModel::ToString() const {
  std::ostringstream out;
  Render(*root_, column_names_, 0, &out);
  return out.str();
}

}  // namespace blaeu::tree
