// Experiment C2: "Our experiments reveal that the loss of accuracy is
// minimal" (paper §3, on sampling after each zoom).
//
// Protocol: cluster the FULL table once (reference partition), then build
// maps from samples of growing size and measure (a) ARI of the map's leaf
// partition against the reference, (b) ARI against the planted ground
// truth, and (c) map latency. The accuracy column should plateau near the
// full-data value well before the sample reaches the table.

#include <cstdio>

#include "common/timer.h"
#include "core/map_builder.h"
#include "stats/metrics.h"
#include "workloads/gaussian.h"
#include "workloads/lofar.h"

using namespace blaeu;

namespace {

/// Leaf-region partition of the whole table induced by a map.
std::vector<int> MapPartition(const core::DataMap& map,
                              const monet::Table& table) {
  std::vector<int> labels(table.num_rows(), -1);
  int next = 0;
  for (int leaf : map.LeafIds()) {
    auto rows = map.region(leaf).predicate.Evaluate(table);
    if (!rows.ok()) continue;
    for (uint32_t r : rows->rows()) labels[r] = next;
    ++next;
  }
  return labels;
}

void Sweep(const char* name, const monet::Table& table,
           const std::vector<int>& truth,
           const std::vector<std::string>& columns, size_t fixed_k) {
  std::printf("== C2 on %s (%zu rows): map accuracy vs sample size ==\n",
              name, table.num_rows());

  // Reference: the unsampled map (CLARA over the full selection).
  core::MapOptions ref_opt;
  ref_opt.sample_size = 0;
  ref_opt.fixed_k = fixed_k;
  Timer ref_timer;
  auto ref_map = core::BuildMap(
      *&table, monet::SelectionVector::All(table.num_rows()), columns,
      ref_opt);
  double ref_ms = ref_timer.ElapsedMillis();
  if (!ref_map.ok()) {
    std::printf("reference failed: %s\n",
                ref_map.status().ToString().c_str());
    return;
  }
  std::vector<int> reference = MapPartition(*ref_map, table);
  std::printf("%12s %12s %14s %14s %12s\n", "sample", "latency_ms",
              "ari_vs_full", "ari_vs_truth", "speedup");
  std::printf("%12s %12.1f %14.3f %14.3f %12s\n", "full", ref_ms, 1.0,
              stats::AdjustedRandIndex(reference, truth), "1.0x");

  for (size_t sample : {250, 500, 1000, 2000, 4000}) {
    if (sample >= table.num_rows()) break;
    core::MapOptions opt;
    opt.sample_size = sample;
    opt.fixed_k = fixed_k;
    opt.seed = 7 + sample;
    Timer timer;
    auto map = core::BuildMap(*&table,
                              monet::SelectionVector::All(table.num_rows()),
                              columns, opt);
    double ms = timer.ElapsedMillis();
    if (!map.ok()) continue;
    std::vector<int> partition = MapPartition(*map, table);
    std::printf("%12zu %12.1f %14.3f %14.3f %11.1fx\n", sample, ms,
                stats::AdjustedRandIndex(partition, reference),
                stats::AdjustedRandIndex(partition, truth), ref_ms / ms);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Blaeu bench: sampling accuracy (C2)\n\n");

  {
    workloads::MixtureSpec spec;
    spec.rows = 20000;
    spec.num_clusters = 4;
    spec.dims = 5;
    spec.separation = 7.0;
    auto data = workloads::MakeGaussianMixture(spec);
    std::vector<std::string> cols;
    for (const auto& f : data.table->schema().fields()) {
      cols.push_back(f.name);
    }
    Sweep("gaussian-4x20k", *data.table, data.truth.row_clusters, cols, 4);
  }
  {
    workloads::LofarSpec spec;
    spec.rows = 50000;
    auto data = workloads::MakeLofar(spec);
    std::vector<std::string> cols;
    for (const auto& f : data.table->schema().fields()) {
      if (f.name.rfind("flux_", 0) == 0 || f.name == "spectral_index") {
        cols.push_back(f.name);
      }
    }
    Sweep("lofar-50k", *data.table, data.truth.row_clusters, cols, 5);
  }
  return 0;
}
