#include "core/explorer.h"

#include "common/json_writer.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace blaeu::core {

Explorer::Explorer(SessionOptions options) : options_(std::move(options)) {
  if (options_.cache_enabled && options_.cache == nullptr) {
    options_.cache = std::make_shared<MapCache>(
        MapCache::BudgetFromEnv(options_.cache_budget_bytes),
        options_.map.metrics, options_.map.tracer, options_.map.flight);
  }
}

void Explorer::InstallTable(const std::string& name, monet::TablePtr table) {
  const bool replacing = catalog_.Contains(name);
  catalog_.RegisterOrReplace(name, std::move(table));
  table_versions_[name]++;
  if (replacing && options_.cache != nullptr) {
    options_.cache->EvictTable(name);
  }
  auto loaded = catalog_.Get(name);
  obs::FlightRecorder* flight = options_.map.flight != nullptr
                                    ? options_.map.flight
                                    : &obs::FlightRecorder::Global();
  flight->Record(
      obs::FlightEventKind::kLoad, "core.explorer.load",
      {{"table", name},
       {"rows", loaded.ok() ? std::to_string((*loaded)->num_rows()) : "0"},
       {"columns",
        loaded.ok() ? std::to_string((*loaded)->num_columns()) : "0"},
       {"replaced", replacing ? "1" : "0"}});
}

Status Explorer::LoadCsv(const std::string& path, const std::string& name,
                         const monet::CsvOptions& csv_options) {
  BLAEU_ASSIGN_OR_RETURN(monet::TablePtr table,
                         monet::ReadCsvFile(path, csv_options));
  InstallTable(name, std::move(table));
  return Status::OK();
}

Status Explorer::LoadTable(monet::TablePtr table, const std::string& name) {
  if (table == nullptr) return Status::Invalid("cannot load a null table");
  InstallTable(name, std::move(table));
  return Status::OK();
}

Result<Session*> Explorer::OpenSession(const std::string& name) {
  BLAEU_ASSIGN_OR_RETURN(monet::TablePtr table, catalog_.Get(name));
  SessionOptions session_options = options_;
  session_options.table_version = table_versions_[name];
  BLAEU_ASSIGN_OR_RETURN(Session session,
                         Session::Start(table, name, session_options));
  auto owned = std::make_unique<Session>(std::move(session));
  Session* raw = owned.get();
  sessions_[name] = std::move(owned);
  return raw;
}

Result<Session*> Explorer::GetSession(const std::string& name) {
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    return Status::KeyError("no open session on '" + name + "'");
  }
  return it->second.get();
}

Status Explorer::CloseSession(const std::string& name) {
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    return Status::KeyError("no open session on '" + name + "'");
  }
  sessions_.erase(it);
  return Status::OK();
}

std::string Explorer::StatsReport() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("tables").BeginArray();
  for (const std::string& name : catalog_.List()) {
    auto table = catalog_.Get(name);
    w.BeginObject();
    w.KV("name", name);
    if (table.ok()) {
      w.KV("rows", (*table)->num_rows());
      w.KV("columns", (*table)->num_columns());
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("sessions").BeginArray();
  for (const auto& [name, session] : sessions_) {
    const SessionStats& s = session->stats();
    w.BeginObject();
    w.KV("table", name);
    w.KV("states", session->history_size());
    w.KV("maps_built", s.maps_built);
    w.KV("map_build_seconds", s.map_build_seconds);
    w.KV("last_build_seconds", s.last_build_seconds);
    w.KV("actions", s.actions);
    w.KV("rollbacks", s.rollbacks);
    w.KV("cache_hits", s.cache_hits);
    w.KV("cache_misses", s.cache_misses);
    w.KV("plan_reuses", s.plan_reuses);
    w.EndObject();
  }
  w.EndArray();
  if (options_.cache != nullptr) {
    w.Key("cache").RawValue(options_.cache->StatsJson());
  }
  // The process-wide registry: counters/histograms from every layer.
  w.Key("metrics").RawValue(obs::MetricsRegistry::Global().ToJson());
  w.EndObject();
  return w.str();
}

std::string Explorer::FlightLogJson(size_t n) const {
  obs::FlightRecorder* flight = options_.map.flight != nullptr
                                    ? options_.map.flight
                                    : &obs::FlightRecorder::Global();
  return flight->ToJson(n);
}

}  // namespace blaeu::core
