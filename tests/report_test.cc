// Unit tests for the session report exporter.
#include "core/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "monet/csv.h"
#include "monet/sql_parser.h"
#include "workloads/gaussian.h"

namespace blaeu::core {
namespace {

namespace fs = std::filesystem;

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("blaeu_report_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string ReadAll(const fs::path& p) {
    std::ifstream in(p);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  fs::path dir_;
};

Session MakeSession() {
  workloads::MixtureSpec spec;
  spec.rows = 400;
  spec.num_clusters = 3;
  spec.dims = 4;
  spec.with_categorical = true;
  auto data = workloads::MakeGaussianMixture(spec);
  SessionOptions opt;
  opt.map.sample_size = 400;
  auto session = Session::Start(data.table, "mixture", opt);
  EXPECT_TRUE(session.ok());
  return std::move(session).ValueOrDie();
}

TEST_F(ReportTest, WritesAllArtifacts) {
  Session s = MakeSession();
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_TRUE(s.Annotate(leaves[0], "exported note").ok());
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  ASSERT_TRUE(ExportSessionReport(s, dir_.string()).ok());

  EXPECT_TRUE(fs::exists(dir_ / "themes.txt"));
  EXPECT_TRUE(fs::exists(dir_ / "themes.json"));
  EXPECT_TRUE(fs::exists(dir_ / "dependency.dot"));
  EXPECT_TRUE(fs::exists(dir_ / "session.json"));
  // One map/query set per state (2 states: start + zoom).
  for (int i = 0; i < 2; ++i) {
    std::string stem = "state_" + std::to_string(i);
    EXPECT_TRUE(fs::exists(dir_ / (stem + "_map.txt")));
    EXPECT_TRUE(fs::exists(dir_ / (stem + "_map.json")));
    EXPECT_TRUE(fs::exists(dir_ / (stem + "_query.sql")));
  }
  // Every current leaf has a CSV.
  for (int leaf : s.current().map.LeafIds()) {
    EXPECT_TRUE(fs::exists(dir_ / ("region_" + std::to_string(leaf) +
                                   ".csv")));
  }
}

TEST_F(ReportTest, ExportedSqlParsesBack) {
  Session s = MakeSession();
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_TRUE(s.Zoom(leaves[0]).ok());
  ASSERT_TRUE(ExportSessionReport(s, dir_.string()).ok());
  std::string sql = ReadAll(dir_ / "state_1_query.sql");
  auto query = monet::ParseSql(sql);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->table_name, "mixture");
  EXPECT_FALSE(query->where.empty());
}

TEST_F(ReportTest, RegionCsvsReload) {
  Session s = MakeSession();
  ReportOptions opt;
  opt.region_csv_rows = 10;
  ASSERT_TRUE(ExportSessionReport(s, dir_.string(), opt).ok());
  int checked = 0;
  for (int leaf : s.current().map.LeafIds()) {
    fs::path p = dir_ / ("region_" + std::to_string(leaf) + ".csv");
    auto table = monet::ReadCsvFile(p.string());
    ASSERT_TRUE(table.ok());
    EXPECT_LE((*table)->num_rows(), 10u);
    EXPECT_EQ((*table)->num_columns(), s.table().num_columns());
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(ReportTest, SessionJsonContainsAnnotations) {
  Session s = MakeSession();
  std::vector<int> leaves = s.current().map.LeafIds();
  ASSERT_TRUE(s.Annotate(leaves[0], "marker-xyz").ok());
  ASSERT_TRUE(ExportSessionReport(s, dir_.string()).ok());
  std::string json = ReadAll(dir_ / "session.json");
  EXPECT_NE(json.find("marker-xyz"), std::string::npos);
}

TEST_F(ReportTest, MissingDirectoryIsIOError) {
  Session s = MakeSession();
  EXPECT_EQ(
      ExportSessionReport(s, "/nonexistent_dir_for_blaeu_test").code(),
      StatusCode::kIOError);
}

}  // namespace
}  // namespace blaeu::core
