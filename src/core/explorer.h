// Explorer: the top-level facade. Owns a catalog (the "MonetDB" of
// Figure 4) and the active sessions (the "NodeJS session manager"); this is
// the public entry point a downstream user starts from.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/navigation.h"
#include "monet/catalog.h"
#include "monet/csv.h"

namespace blaeu::core {

/// \brief Facade over catalog + sessions.
///
/// Typical flow:
///   Explorer explorer;
///   explorer.LoadCsv("data.csv", "movies");
///   auto* session = *explorer.OpenSession("movies");
///   session->SelectTheme(0);  // etc.
class Explorer {
 public:
  /// When `options.cache_enabled` and no cache instance is supplied, the
  /// Explorer creates one MapCache shared by all its sessions (so a
  /// rollback in one session can hit maps another session built).
  explicit Explorer(SessionOptions options = {});

  /// Imports a CSV file into the catalog under `name`. Re-loading an
  /// existing name replaces the table, bumps its version and invalidates
  /// every cached map built on it.
  Status LoadCsv(const std::string& path, const std::string& name,
                 const monet::CsvOptions& csv_options = {});

  /// Registers an existing table under `name` (same replace-and-invalidate
  /// semantics as LoadCsv).
  Status LoadTable(monet::TablePtr table, const std::string& name);

  /// Tables available for exploration.
  std::vector<std::string> Tables() const { return catalog_.List(); }

  const monet::Catalog& catalog() const { return catalog_; }

  /// Opens (or reopens) an exploration session on `name`. The returned
  /// pointer stays valid until the session is closed or the explorer dies.
  Result<Session*> OpenSession(const std::string& name);

  /// The open session for `name`, if any.
  Result<Session*> GetSession(const std::string& name);

  /// Closes the session on `name` (KeyError if none).
  Status CloseSession(const std::string& name);

  /// JSON snapshot of the explorer's observable state: loaded tables, open
  /// sessions with their per-session stats (maps built, map-build seconds,
  /// actions, rollbacks), and the process-wide metrics registry. This is
  /// what the REPL's `stats` command prints and what a serving layer would
  /// expose on a /stats endpoint.
  std::string StatsReport() const;

  /// JSON dump of the last `n` flight-recorder events (0 = everything still
  /// in the ring). Reads the recorder injected via the session options, else
  /// the process-global one — the REPL's `flightlog` command.
  std::string FlightLogJson(size_t n = 0) const;

  /// The cache shared by this explorer's sessions (null when disabled).
  const MapCachePtr& cache() const { return options_.cache; }

 private:
  /// Replaces `name` in the catalog, bumps its version and drops its cache
  /// entries — the single invalidation point for both Load paths.
  void InstallTable(const std::string& name, monet::TablePtr table);

  SessionOptions options_;
  monet::Catalog catalog_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;
  /// Monotonic per-name versions; a (re-)load bumps the version so stale
  /// cache keys can never match again.
  std::map<std::string, uint64_t> table_versions_;
};

}  // namespace blaeu::core
