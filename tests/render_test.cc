// Unit tests for the terminal / JSON / DOT renderers.
#include "core/render.h"

#include <gtest/gtest.h>

#include "core/explorer.h"
#include "workloads/gaussian.h"

namespace blaeu::core {
namespace {

struct Fixture {
  workloads::Dataset data;
  ThemeSet themes;
  DataMap map;
};

Fixture MakeFixture() {
  workloads::MixtureSpec spec;
  spec.rows = 400;
  spec.num_clusters = 3;
  spec.dims = 4;
  spec.with_categorical = true;
  Fixture f{workloads::MakeGaussianMixture(spec), {}, {}};
  f.themes = *DetectThemes(*f.data.table);
  MapOptions opt;
  opt.fixed_k = 3;
  f.map = *BuildMap(*f.data.table, opt);
  return f;
}

TEST(RenderTest, ThemeListShowsEveryTheme) {
  Fixture f = MakeFixture();
  std::string text = RenderThemeList(f.themes);
  EXPECT_NE(text.find("Themes ("), std::string::npos);
  for (const Theme& t : f.themes.themes) {
    EXPECT_NE(text.find("[" + std::to_string(t.id) + "]"),
              std::string::npos);
  }
}

TEST(RenderTest, MapShowsRegionsAndCounts) {
  Fixture f = MakeFixture();
  std::string text = RenderMap(f.map);
  EXPECT_NE(text.find("Data map over"), std::string::npos);
  EXPECT_NE(text.find("ALL"), std::string::npos);
  EXPECT_NE(text.find("tuples"), std::string::npos);
  EXPECT_NE(text.find("cluster"), std::string::npos);
  // Every region id appears.
  for (const MapRegion& r : f.map.regions) {
    EXPECT_NE(text.find("[" + std::to_string(r.id) + "]"),
              std::string::npos);
  }
}

TEST(RenderTest, TreemapStripCoversLeaves) {
  Fixture f = MakeFixture();
  std::string text = RenderTreemapStrip(f.map);
  for (int leaf : f.map.LeafIds()) {
    EXPECT_NE(text.find("region " + std::to_string(leaf)),
              std::string::npos);
  }
}

TEST(RenderTest, MapJsonIsWellFormedish) {
  Fixture f = MakeFixture();
  std::string json = MapToJson(f.map);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"regions\":["), std::string::npos);
  EXPECT_NE(json.find("\"silhouette\":"), std::string::npos);
  // Balanced braces/brackets.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(RenderTest, ThemesJsonListsThemes) {
  Fixture f = MakeFixture();
  std::string json = ThemesToJson(f.themes);
  EXPECT_NE(json.find("\"themes\":["), std::string::npos);
  EXPECT_NE(json.find("\"cohesion\":"), std::string::npos);
}

TEST(RenderTest, DependencyGraphDot) {
  Fixture f = MakeFixture();
  std::string dot = DependencyGraphToDot(f.themes, 0.1);
  EXPECT_NE(dot.find("graph dependency"), std::string::npos);
  EXPECT_NE(dot.find("x0"), std::string::npos);
}

TEST(RenderTest, HighlightRendering) {
  workloads::MixtureSpec spec;
  spec.rows = 300;
  spec.num_clusters = 2;
  spec.dims = 3;
  spec.with_categorical = true;
  auto data = workloads::MakeGaussianMixture(spec);
  SessionOptions opt;
  opt.map.sample_size = 300;
  auto session = *Session::Start(data.table, "t", opt);
  auto highlight = *session.Highlight("group");
  std::string text = RenderHighlight(highlight);
  EXPECT_NE(text.find("Highlight 'group'"), std::string::npos);
  EXPECT_NE(text.find("region"), std::string::npos);
}

TEST(RenderTest, BreadcrumbsShowHistory) {
  workloads::MixtureSpec spec;
  spec.rows = 300;
  spec.num_clusters = 2;
  spec.dims = 3;
  auto data = workloads::MakeGaussianMixture(spec);
  auto session = *Session::Start(data.table, "t", {});
  std::vector<int> leaves = session.current().map.LeafIds();
  ASSERT_TRUE(session.Zoom(leaves[0]).ok());
  std::string text = RenderBreadcrumbs(session);
  EXPECT_NE(text.find("start"), std::string::npos);
  EXPECT_NE(text.find("zoom("), std::string::npos);
  EXPECT_NE(text.find("*"), std::string::npos);  // current marker
}

TEST(ExplorerTest, LoadAndSession) {
  workloads::MixtureSpec spec;
  spec.rows = 200;
  spec.num_clusters = 2;
  spec.dims = 3;
  auto data = workloads::MakeGaussianMixture(spec);
  Explorer explorer;
  ASSERT_TRUE(explorer.LoadTable(data.table, "mix").ok());
  EXPECT_EQ(explorer.Tables(), (std::vector<std::string>{"mix"}));
  auto* session = *explorer.OpenSession("mix");
  EXPECT_GE(session->themes().size(), 1u);
  auto* again = *explorer.GetSession("mix");
  EXPECT_EQ(session, again);
  EXPECT_TRUE(explorer.CloseSession("mix").ok());
  EXPECT_FALSE(explorer.GetSession("mix").ok());
  EXPECT_FALSE(explorer.OpenSession("ghost").ok());
}

TEST(ExplorerTest, LoadCsvMissingFileFails) {
  Explorer explorer;
  EXPECT_EQ(explorer.LoadCsv("/no/such/file.csv", "x").code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace blaeu::core
