#include "stats/distance.h"

#include <cassert>
#include <cmath>

#include "common/parallel.h"

namespace blaeu::stats {

double SquaredEuclideanDistance(const double* a, const double* b,
                                size_t dims) {
  double sum = 0.0;
  for (size_t i = 0; i < dims; ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double EuclideanDistance(const double* a, const double* b, size_t dims) {
  return std::sqrt(SquaredEuclideanDistance(a, b, dims));
}

double ManhattanDistance(const double* a, const double* b, size_t dims) {
  double sum = 0.0;
  for (size_t i = 0; i < dims; ++i) {
    sum += std::fabs(a[i] - b[i]);
  }
  return sum;
}

GowerDistance::GowerDistance(std::vector<bool> is_categorical,
                             std::vector<double> ranges)
    : is_categorical_(std::move(is_categorical)), ranges_(std::move(ranges)) {
  assert(is_categorical_.size() == ranges_.size());
}

GowerDistance GowerDistance::Fit(const Matrix& data,
                                 std::vector<bool> is_categorical) {
  const size_t dims = data.cols();
  assert(is_categorical.size() == dims);
  std::vector<double> ranges(dims, 0.0);
  for (size_t f = 0; f < dims; ++f) {
    if (is_categorical[f]) continue;
    bool first = true;
    double mn = 0, mx = 0;
    for (size_t r = 0; r < data.rows(); ++r) {
      double v = data.At(r, f);
      if (std::isnan(v)) continue;
      if (first) {
        mn = mx = v;
        first = false;
      } else {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
    }
    ranges[f] = mx - mn;
  }
  return GowerDistance(std::move(is_categorical), std::move(ranges));
}

double GowerDistance::operator()(const double* a, const double* b) const {
  double sum = 0.0;
  size_t compared = 0;
  for (size_t f = 0; f < is_categorical_.size(); ++f) {
    double x = a[f], y = b[f];
    if (std::isnan(x) || std::isnan(y)) continue;
    ++compared;
    if (is_categorical_[f]) {
      sum += (x != y) ? 1.0 : 0.0;
    } else if (ranges_[f] > 0.0) {
      sum += std::fabs(x - y) / ranges_[f];
    }
  }
  if (compared == 0) return 1.0;
  return sum / static_cast<double>(compared);
}

DistanceMatrix DistanceMatrix::Euclidean(const Matrix& data) {
  const size_t n = data.rows();
  DistanceMatrix out(n);
  // Row-blocked: each (i, j) entry is written exactly once by the chunk
  // owning row i, so the matrix is identical at any thread count.
  ParallelFor(0, n, 16, [&](size_t row_lo, size_t row_hi) {
    for (size_t i = row_lo; i < row_hi; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        out.Set(i, j,
                EuclideanDistance(data.RowPtr(i), data.RowPtr(j),
                                  data.cols()));
      }
    }
  });
  return out;
}

DistanceMatrix DistanceMatrix::Gower(const Matrix& data,
                                     const GowerDistance& gower) {
  const size_t n = data.rows();
  DistanceMatrix out(n);
  ParallelFor(0, n, 16, [&](size_t row_lo, size_t row_hi) {
    for (size_t i = row_lo; i < row_hi; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        out.Set(i, j, gower(data.RowPtr(i), data.RowPtr(j)));
      }
    }
  });
  return out;
}

}  // namespace blaeu::stats
