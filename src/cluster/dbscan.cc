#include "cluster/dbscan.h"

#include <deque>
#include <limits>

namespace blaeu::cluster {

using stats::DistanceMatrix;

Result<DbscanResult> Dbscan(const DistanceMatrix& dist,
                            const DbscanOptions& options) {
  if (options.eps <= 0) return Status::Invalid("eps must be > 0");
  if (options.min_points == 0) {
    return Status::Invalid("min_points must be >= 1");
  }
  const size_t n = dist.size();
  constexpr int kUnvisited = -2, kNoise = -1;
  DbscanResult out;
  out.labels.assign(n, kUnvisited);

  auto neighbors = [&](size_t p) {
    std::vector<size_t> out_nb;
    for (size_t q = 0; q < n; ++q) {
      if (dist.At(p, q) <= options.eps) out_nb.push_back(q);  // includes p
    }
    return out_nb;
  };

  int cluster = 0;
  for (size_t p = 0; p < n; ++p) {
    if (out.labels[p] != kUnvisited) continue;
    std::vector<size_t> nb = neighbors(p);
    if (nb.size() < options.min_points) {
      out.labels[p] = kNoise;
      continue;
    }
    out.labels[p] = cluster;
    std::deque<size_t> frontier(nb.begin(), nb.end());
    while (!frontier.empty()) {
      size_t q = frontier.front();
      frontier.pop_front();
      if (out.labels[q] == kNoise) out.labels[q] = cluster;  // border point
      if (out.labels[q] != kUnvisited) continue;
      out.labels[q] = cluster;
      std::vector<size_t> qnb = neighbors(q);
      if (qnb.size() >= options.min_points) {
        frontier.insert(frontier.end(), qnb.begin(), qnb.end());
      }
    }
    ++cluster;
  }
  out.num_clusters = static_cast<size_t>(cluster);
  for (int l : out.labels) {
    if (l == kNoise) ++out.num_noise;
  }
  return out;
}

ClusteringResult DbscanToClustering(const DbscanResult& result,
                                    const DistanceMatrix& dist) {
  const size_t n = result.labels.size();
  ClusteringResult out;
  out.labels = result.labels;
  if (result.num_clusters == 0) {
    // Degenerate: everything is noise; one catch-all cluster.
    out.labels.assign(n, 0);
    out.medoids = {0};
    return out;
  }
  // Attach noise to the cluster of the nearest clustered point.
  for (size_t i = 0; i < n; ++i) {
    if (out.labels[i] >= 0) continue;
    double best = std::numeric_limits<double>::infinity();
    int best_label = 0;
    for (size_t j = 0; j < n; ++j) {
      if (result.labels[j] < 0) continue;
      if (dist.At(i, j) < best) {
        best = dist.At(i, j);
        best_label = result.labels[j];
      }
    }
    out.labels[i] = best_label;
  }
  // Medoids: minimal summed within-cluster distance.
  out.medoids.assign(result.num_clusters, 0);
  std::vector<double> best(result.num_clusters,
                           std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (out.labels[j] == out.labels[i]) sum += dist.At(i, j);
    }
    size_t c = static_cast<size_t>(out.labels[i]);
    if (sum < best[c]) {
      best[c] = sum;
      out.medoids[c] = i;
    }
  }
  out.total_cost = 0.0;
  for (size_t i = 0; i < n; ++i) {
    out.total_cost += dist.At(i, out.medoids[out.labels[i]]);
  }
  return out;
}

}  // namespace blaeu::cluster
