#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace blaeu {
namespace {

// splitmix64, used to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k >= n) {
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    Shuffle(&all);
    return all;
  }
  // Floyd's algorithm would need a set; for our sizes a partial
  // Fisher-Yates over an index array is simpler and still O(n).
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + NextBounded(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace blaeu
