// CLARA (Clustering LARge Applications, Kaufman & Rousseeuw 1990): the
// sampling-based PAM variant Blaeu switches to "when the data is too large"
// (paper §3). Runs PAM on several random sub-samples, extends each medoid
// set to the full data, and keeps the cheapest.
#pragma once

#include "common/rng.h"
#include "common/status.h"
#include "cluster/clustering.h"

namespace blaeu::cluster {

/// CLARA options.
struct ClaraOptions {
  /// Number of independent sub-samples (K&R recommend 5).
  size_t num_samples = 5;
  /// Sub-sample size; 0 means the K&R default 40 + 2k.
  size_t sample_size = 0;
  uint64_t seed = 42;
  /// Passed through to the inner PAM runs.
  size_t max_swap_iterations = 50;
};

/// Clusters `n` points into k groups under `dist_fn`.
///
/// Cost: num_samples * (PAM on sample_size points + O(n * k) extension),
/// versus PAM's O(n^2) matrix — this is the crossover the paper exploits at
/// interaction time.
Result<ClusteringResult> Clara(size_t n, const RowDistanceFn& dist_fn,
                               size_t k, const ClaraOptions& options = {});

}  // namespace blaeu::cluster
