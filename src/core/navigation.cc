#include "core/navigation.h"

#include <algorithm>
#include <cstring>

#include "common/json_writer.h"
#include "common/timer.h"
#include "obs/flight_recorder.h"
#include "stats/histogram.h"

namespace blaeu::core {

using monet::SelectionVector;
using monet::Table;
using monet::TablePtr;

namespace {

Rng MakeSamplerRng(uint64_t seed) { return Rng(seed ^ 0xb1aeb1aeULL); }

/// The session's flight recorder: the one injected through the map options,
/// else the process-global instance (same resolution as the other sinks).
obs::FlightRecorder* ResolveFlight(const SessionOptions& options) {
  return options.map.flight != nullptr ? options.map.flight
                                       : &obs::FlightRecorder::Global();
}

/// Fingerprint of every session option that can change a built map (the
/// map options plus the multi-scale sampler parameters and session seed).
uint64_t FingerprintSessionOptions(const SessionOptions& options) {
  uint64_t h = HashMix(kFnvOffset, FingerprintMapOptions(options.map));
  h = HashMix(h, options.multiscale_base);
  uint64_t growth_bits = 0;
  static_assert(sizeof(growth_bits) == sizeof(options.multiscale_growth),
                "double must be 64-bit");
  std::memcpy(&growth_bits, &options.multiscale_growth, sizeof(growth_bits));
  h = HashMix(h, growth_bits);
  h = HashMix(h, options.seed);
  return h;
}

}  // namespace

Session::Session(TablePtr table, std::string table_name,
                 SessionOptions options, ThemeSet themes)
    : table_(std::move(table)),
      table_name_(std::move(table_name)),
      options_(std::move(options)),
      themes_(std::move(themes)),
      sampler_(
          [&] {
            Rng rng = MakeSamplerRng(options_.seed);
            return monet::MultiScaleSampler(
                table_->num_rows(),
                std::min(options_.multiscale_base,
                         std::max<size_t>(1, table_->num_rows())),
                options_.multiscale_growth, &rng);
          }()),
      session_id_(MapCache::NextSessionId()),
      table_fp_(FingerprintTable(*table_)),
      options_fp_(FingerprintSessionOptions(options_)) {
  if (options_.cache_enabled) {
    cache_ = options_.cache != nullptr
                 ? options_.cache
                 : std::make_shared<MapCache>(
                       MapCache::BudgetFromEnv(options_.cache_budget_bytes),
                       options_.map.metrics, options_.map.tracer,
                       options_.map.flight);
  }
}

void Session::ReleaseCacheEntries() {
  if (cache_ != nullptr) cache_->EvictSession(session_id_);
}

Result<Session> Session::Start(TablePtr table, std::string table_name,
                               const SessionOptions& options) {
  if (table == nullptr || table->num_rows() == 0) {
    return Status::Invalid("cannot start a session on an empty table");
  }
  BLAEU_ASSIGN_OR_RETURN(ThemeSet themes,
                         DetectThemes(*table, options.themes));
  Session session(std::move(table), std::move(table_name), options,
                  std::move(themes));
  BLAEU_RETURN_NOT_OK(session.SelectTheme(0));
  session.history_.front().action = "start";
  return session;
}

Result<DataMap> Session::MakeMap(const SelectionVector& sel,
                                 const std::vector<std::string>& columns,
                                 MapCacheKey* out_key) {
  Timer build_timer;
  MapOptions map_options = options_.map;
  const uint64_t sel_fp = sel.Fingerprint();
  const uint64_t cols_fp = FingerprintStrings(columns);
  // The map seed is a deterministic function of the navigation state
  // (session seed, selection, columns): distinct states draw distinct
  // samples, while rebuilding the SAME state cold reproduces the same
  // sample and map — the property that makes cache hits bit-identical.
  map_options.seed =
      HashMix(HashMix(HashMix(kFnvOffset, options_.seed), sel_fp), cols_fp);
  MapCacheKey key;
  key.table_name = table_name_;
  key.table_version = options_.table_version;
  key.table_fp = table_fp_;
  key.selection_fp = sel_fp;
  key.columns_fp = cols_fp;
  key.options_fp = options_fp_;
  key.seed = map_options.seed;
  if (out_key != nullptr) *out_key = key;

  auto finish = [&](size_t* build_counter) {
    (*build_counter)++;
    stats_.actions++;
    stats_.last_build_seconds = build_timer.ElapsedSeconds();
    stats_.map_build_seconds += stats_.last_build_seconds;
  };

  if (cache_ != nullptr) {
    if (std::shared_ptr<const DataMap> hit = cache_->Lookup(key, session_id_)) {
      finish(&stats_.cache_hits);
      // The map is bit-identical to a cold build, but what THIS interaction
      // cost is not: a warm map did no sampling, no distance evaluations and
      // no counting. Report a fresh profile so resource accounting reflects
      // the work actually done (the acceptance contract of obs/resource.h).
      DataMap warm = *hit;
      warm.resources = obs::ResourceProfile{};
      warm.resources.cache_hits = 1;
      warm.resources.total_seconds = stats_.last_build_seconds;
      return warm;
    }
    stats_.cache_misses++;
  }

  // Tier-2 reuse (bit-identical): primary-key detection depends only on
  // (table, columns), so any prior build of this theme already knows it.
  std::shared_ptr<const std::vector<size_t>> known_keys;
  if (cache_ != nullptr && map_options.preprocess.remove_primary_keys) {
    known_keys = cache_->LookupPrimaryKeys(
        table_name_, options_.table_version, table_fp_, cols_fp);
    if (known_keys != nullptr) {
      map_options.preprocess.known_primary_keys = known_keys.get();
    }
  }
  // Tier-3 reuse (re-normalized, opt-in): fill the child's features with
  // the parent state's plan instead of re-planning on the child sample.
  if (options_.reuse_parent_plans && cache_ != nullptr && !history_.empty() &&
      FingerprintStrings(history_.back().columns) == cols_fp) {
    std::shared_ptr<const PreprocessPlan> parent_plan =
        cache_->LookupPlan(history_.back().cache_key);
    if (parent_plan != nullptr) {
      map_options.preprocess.reuse_plan = std::move(parent_plan);
      stats_.plan_reuses++;
      obs::MetricsRegistry* metrics = map_options.metrics != nullptr
                                          ? map_options.metrics
                                          : &obs::MetricsRegistry::Global();
      metrics->counter("core.cache.plan_reuses")->Increment();
    }
  }
  std::shared_ptr<const PreprocessPlan> used_plan;
  map_options.preprocess.plan_out = &used_plan;

  // Multi-scale sampling: pre-shrink very large selections through the
  // shared permutation, then let BuildMap take its per-map sample.
  SelectionVector working = sel;
  if (map_options.sample_size > 0 &&
      sel.size() > 4 * map_options.sample_size) {
    working = sampler_.SampleAtMost(sel, 4 * map_options.sample_size);
  }
  BLAEU_ASSIGN_OR_RETURN(DataMap map,
                         BuildMap(*table_, working, columns, map_options));
  if (cache_ != nullptr) map.resources.cache_misses = 1;
  // Counts must reflect the full selection, not the working sample: rescale
  // by evaluating predicates on the true selection when we pre-shrank.
  if (working.size() != sel.size()) {
    BLAEU_ASSIGN_OR_RETURN(TablePtr view, table_->ProjectNames(columns));
    for (MapRegion& region : map.regions) {
      if (region.parent < 0) {
        region.tuple_count = sel.size();
        continue;
      }
      BLAEU_ASSIGN_OR_RETURN(SelectionVector rows,
                             region.predicate.EvaluateOn(*view, sel));
      region.tuple_count = rows.size();
    }
    map.total_tuples = sel.size();
  }

  if (cache_ != nullptr) {
    if (known_keys == nullptr && used_plan != nullptr &&
        map_options.preprocess.remove_primary_keys) {
      cache_->InsertPrimaryKeys(
          table_name_, options_.table_version, table_fp_, cols_fp,
          std::make_shared<const std::vector<size_t>>(used_plan->dropped_keys));
    }
    cache_->Insert(key, session_id_, std::make_shared<const DataMap>(map),
                   std::move(used_plan));
  }
  finish(&stats_.maps_built);
  return map;
}

Status Session::SelectTheme(size_t theme_idx) {
  if (theme_idx >= themes_.size()) {
    return Status::IndexError("theme index " + std::to_string(theme_idx) +
                              " out of range (" +
                              std::to_string(themes_.size()) + " themes)");
  }
  const Theme& theme = themes_.theme(theme_idx);
  SelectionVector sel = history_.empty()
                            ? SelectionVector::All(table_->num_rows())
                            : history_.back().selection;
  monet::Conjunction where =
      history_.empty() ? monet::Conjunction() : history_.back().where;
  MapCacheKey key;
  BLAEU_ASSIGN_OR_RETURN(DataMap map, MakeMap(sel, theme.names, &key));
  NavState state;
  state.selection = std::move(sel);
  state.theme_id = static_cast<int>(theme_idx);
  state.columns = theme.names;
  state.where = std::move(where);
  state.map = std::move(map);
  state.cache_key = std::move(key);
  state.action = "select_theme(" + std::to_string(theme_idx) + ")";
  ResolveFlight(options_)->Record(
      obs::FlightEventKind::kNavigation, "core.session.select_theme",
      {{"theme", std::to_string(theme_idx)},
       {"rows", std::to_string(state.selection.size())},
       {"cached", state.map.resources.cache_hits > 0 ? "1" : "0"}});
  history_.push_back(std::move(state));
  return Status::OK();
}

Status Session::Zoom(int region_id) {
  const NavState& cur = current();
  BLAEU_RETURN_NOT_OK(cur.map.ValidateRegionId(region_id));
  const MapRegion& region = cur.map.region(region_id);
  if (region.parent < 0) {
    return Status::Invalid("cannot zoom into the root region");
  }
  BLAEU_ASSIGN_OR_RETURN(TablePtr view, table_->ProjectNames(cur.columns));
  BLAEU_ASSIGN_OR_RETURN(
      SelectionVector sub,
      region.predicate.EvaluateOn(*view, cur.selection));
  if (sub.empty()) {
    return Status::Invalid("region " + std::to_string(region_id) +
                           " covers no tuples");
  }
  MapCacheKey key;
  BLAEU_ASSIGN_OR_RETURN(DataMap map, MakeMap(sub, cur.columns, &key));
  NavState state;
  state.selection = std::move(sub);
  state.theme_id = cur.theme_id;
  state.columns = cur.columns;
  state.where = cur.where.And(region.predicate);
  state.map = std::move(map);
  state.cache_key = std::move(key);
  state.action = "zoom(" + std::to_string(region_id) + ")";
  ResolveFlight(options_)->Record(
      obs::FlightEventKind::kNavigation, "core.session.zoom",
      {{"region", std::to_string(region_id)},
       {"rows", std::to_string(state.selection.size())},
       {"cached", state.map.resources.cache_hits > 0 ? "1" : "0"}});
  history_.push_back(std::move(state));
  return Status::OK();
}

Status Session::Project(size_t theme_idx) {
  if (theme_idx >= themes_.size()) {
    return Status::IndexError("theme index " + std::to_string(theme_idx) +
                              " out of range (" +
                              std::to_string(themes_.size()) + " themes)");
  }
  const NavState& cur = current();
  const Theme& theme = themes_.theme(theme_idx);
  MapCacheKey key;
  BLAEU_ASSIGN_OR_RETURN(DataMap map,
                         MakeMap(cur.selection, theme.names, &key));
  NavState state;
  state.selection = cur.selection;
  state.theme_id = static_cast<int>(theme_idx);
  state.columns = theme.names;
  state.where = cur.where;
  state.map = std::move(map);
  state.cache_key = std::move(key);
  state.action = "project(" + std::to_string(theme_idx) + ")";
  ResolveFlight(options_)->Record(
      obs::FlightEventKind::kNavigation, "core.session.project",
      {{"theme", std::to_string(theme_idx)},
       {"rows", std::to_string(state.selection.size())},
       {"cached", state.map.resources.cache_hits > 0 ? "1" : "0"}});
  history_.push_back(std::move(state));
  return Status::OK();
}

Result<HighlightResult> Session::Highlight(const std::string& column) const {
  const NavState& cur = current();
  BLAEU_ASSIGN_OR_RETURN(size_t col_idx,
                         table_->schema().RequireFieldIndex(column));
  BLAEU_ASSIGN_OR_RETURN(TablePtr view, table_->ProjectNames(cur.columns));
  HighlightResult out;
  out.column = column;
  for (int leaf_id : cur.map.LeafIds()) {
    const MapRegion& region = cur.map.region(leaf_id);
    BLAEU_ASSIGN_OR_RETURN(
        SelectionVector rows,
        region.predicate.EvaluateOn(*view, cur.selection));
    RegionHighlight h;
    h.region_id = leaf_id;
    h.tuple_count = rows.size();
    h.stats = monet::ComputeColumnStats(*table_->column(col_idx), rows);
    for (size_t i = 0; i < h.stats.top_values.size() && i < 5; ++i) {
      h.examples.push_back(h.stats.top_values[i].first);
    }
    out.regions.push_back(std::move(h));
  }
  return out;
}

Result<HighlightDetailResult> Session::HighlightDetail(
    const std::string& column, size_t bins) const {
  const NavState& cur = current();
  BLAEU_ASSIGN_OR_RETURN(size_t col_idx,
                         table_->schema().RequireFieldIndex(column));
  const monet::Column& col = *table_->column(col_idx);
  BLAEU_ASSIGN_OR_RETURN(TablePtr view, table_->ProjectNames(cur.columns));
  HighlightDetailResult out;
  out.column = column;
  out.numeric = col.type() != monet::DataType::kString;
  for (int leaf_id : cur.map.LeafIds()) {
    const MapRegion& region = cur.map.region(leaf_id);
    BLAEU_ASSIGN_OR_RETURN(
        SelectionVector rows,
        region.predicate.EvaluateOn(*view, cur.selection));
    RegionDetail detail;
    detail.region_id = leaf_id;
    detail.tuple_count = rows.size();
    if (out.numeric) {
      BLAEU_ASSIGN_OR_RETURN(stats::Histogram h,
                             stats::NumericHistogram(col, rows, bins));
      detail.rendering = h.ToAscii();
    } else {
      detail.rendering = stats::CategoricalFrequencies(col, rows).ToAscii();
    }
    out.regions.push_back(std::move(detail));
  }
  return out;
}

Result<ScatterDetailResult> Session::ScatterDetail(
    const std::string& x_column, const std::string& y_column) const {
  const NavState& cur = current();
  BLAEU_ASSIGN_OR_RETURN(size_t x_idx,
                         table_->schema().RequireFieldIndex(x_column));
  BLAEU_ASSIGN_OR_RETURN(size_t y_idx,
                         table_->schema().RequireFieldIndex(y_column));
  BLAEU_ASSIGN_OR_RETURN(TablePtr view, table_->ProjectNames(cur.columns));
  ScatterDetailResult out;
  out.x_column = x_column;
  out.y_column = y_column;
  for (int leaf_id : cur.map.LeafIds()) {
    const MapRegion& region = cur.map.region(leaf_id);
    BLAEU_ASSIGN_OR_RETURN(
        SelectionVector rows,
        region.predicate.EvaluateOn(*view, cur.selection));
    BLAEU_ASSIGN_OR_RETURN(
        stats::BinnedScatter scatter,
        stats::BivariateScatter(*table_->column(x_idx),
                                *table_->column(y_idx), rows));
    RegionDetail detail;
    detail.region_id = leaf_id;
    detail.tuple_count = rows.size();
    detail.rendering = scatter.ToAscii();
    out.regions.push_back(std::move(detail));
  }
  return out;
}

Status Session::Annotate(int region_id, std::string note) {
  NavState& cur = history_.back();
  BLAEU_RETURN_NOT_OK(cur.map.ValidateRegionId(region_id));
  cur.annotations[region_id] = std::move(note);
  return Status::OK();
}

std::string Session::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.KV("table", table_name_)
      .KV("rows", table_->num_rows())
      .KV("columns", table_->num_columns())
      .KV("num_themes", themes_.size());
  w.Key("states").BeginArray();
  for (size_t i = 0; i < history_.size(); ++i) {
    const NavState& s = history_[i];
    monet::SelectProjectQuery q;
    q.table_name = table_name_;
    q.columns = s.columns;
    q.where = s.where;
    w.BeginObject();
    w.KV("index", i)
        .KV("action", s.action)
        .KV("theme", static_cast<int64_t>(s.theme_id))
        .KV("selection_size", s.selection.size())
        .KV("sql", q.ToSql())
        .KV("clusters", s.map.num_clusters)
        .KV("silhouette", s.map.silhouette)
        .KV("algorithm", s.map.algorithm);
    w.Key("annotations").BeginArray();
    for (const auto& [region, note] : s.annotations) {
      w.BeginObject();
      w.KV("region", static_cast<int64_t>(region)).KV("note", note);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Status Session::Rollback() {
  if (history_.size() <= 1) {
    return Status::Invalid("already at the initial state");
  }
  history_.pop_back();
  stats_.rollbacks++;
  ResolveFlight(options_)->Record(
      obs::FlightEventKind::kNavigation, "core.session.rollback",
      {{"depth", std::to_string(history_.size() - 1)}});
  return Status::OK();
}

Status Session::RollbackTo(size_t index) {
  if (index >= history_.size()) {
    return Status::IndexError("state index " + std::to_string(index) +
                              " out of range");
  }
  history_.resize(index + 1);
  stats_.rollbacks++;
  ResolveFlight(options_)->Record(
      obs::FlightEventKind::kNavigation, "core.session.rollback_to",
      {{"index", std::to_string(index)}});
  return Status::OK();
}

monet::SelectProjectQuery Session::CurrentQuery() const {
  const NavState& cur = current();
  monet::SelectProjectQuery q;
  q.table_name = table_name_;
  q.columns = cur.columns;
  q.where = cur.where;
  return q;
}

Result<monet::SelectProjectQuery> Session::RegionQuery(int region_id) const {
  const NavState& cur = current();
  BLAEU_RETURN_NOT_OK(cur.map.ValidateRegionId(region_id));
  monet::SelectProjectQuery q = CurrentQuery();
  q.where = q.where.And(cur.map.region(region_id).predicate);
  return q;
}

Result<TablePtr> Session::Inspect(int region_id, size_t max_rows) const {
  const NavState& cur = current();
  BLAEU_RETURN_NOT_OK(cur.map.ValidateRegionId(region_id));
  BLAEU_ASSIGN_OR_RETURN(TablePtr view, table_->ProjectNames(cur.columns));
  BLAEU_ASSIGN_OR_RETURN(
      SelectionVector rows,
      cur.map.region(region_id).predicate.EvaluateOn(*view, cur.selection));
  std::vector<uint32_t> head(rows.rows().begin(),
                             rows.rows().begin() +
                                 std::min(max_rows, rows.size()));
  return table_->Take(head);
}

}  // namespace blaeu::core
