// Deterministic random number generation. All stochastic components of the
// library (sampling, PAM BUILD tie-breaks, CLARA draws, Monte-Carlo
// silhouette, workload generators) draw from a blaeu::Rng so that every
// experiment is reproducible from a single seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace blaeu {

/// \brief Small, fast, seedable PRNG (xoshiro256**).
///
/// Not cryptographic. Streams from distinct seeds are independent enough for
/// simulation use; use Split() to derive a child generator deterministically.
class Rng {
 public:
  /// Seeds the generator. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling (Lemire) to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal variate (Box-Muller, cached pair).
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Weights must be non-negative with a positive sum.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly, in random order.
  /// If k >= n, returns a permutation of [0, n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; advances this generator.
  Rng Split() { return Rng(Next() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace blaeu
