// Unit tests for the observability subsystem: metrics semantics, span
// nesting, and the JSON / Chrome-trace export shapes (checked with
// parser-free substring assertions, like the other JSON tests).
#include "obs/metrics.h"
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/timer.h"

namespace blaeu::obs {
namespace {

TEST(CounterTest, AddAndIncrement) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram h;
  h.Observe(0.001);
  h.Observe(0.010);
  h.Observe(0.100);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 0.111);
  EXPECT_DOUBLE_EQ(s.min, 0.001);
  EXPECT_DOUBLE_EQ(s.max, 0.100);
  EXPECT_NEAR(s.mean(), 0.037, 1e-12);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, QuantilesTrackLogBuckets) {
  // 99 observations at ~1ms, one at 1s: p50 must sit near 1ms (within the
  // 2x bucket resolution), p99 may reach the outlier but never exceed max.
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Observe(0.001);
  h.Observe(1.0);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_GE(s.p50, 0.0005);
  EXPECT_LE(s.p50, 0.002);
  EXPECT_LE(s.p99, s.max);
  EXPECT_GE(s.p99, s.p50);
  EXPECT_GE(s.p95, s.p50);
}

TEST(HistogramTest, QuantilesClampToObservedRange) {
  Histogram h;
  h.Observe(0.5);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.p50, 0.5);
  EXPECT_DOUBLE_EQ(s.p99, 0.5);
}

TEST(HistogramTest, SingleSampleQuantilesAreTheSample) {
  // A one-observation histogram must report the observation itself, not a
  // log-bucket midpoint (the value would otherwise be off by up to 2x).
  Histogram h;
  h.Observe(0.0123);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.p50, 0.0123);
  EXPECT_DOUBLE_EQ(s.p95, 0.0123);
  EXPECT_DOUBLE_EQ(s.p99, 0.0123);
}

TEST(HistogramTest, IdenticalSamplesQuantilesAreExact) {
  // Same degenerate case with count > 1: min == max pins every quantile.
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Observe(0.0271828);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.p50, 0.0271828);
  EXPECT_DOUBLE_EQ(s.p95, 0.0271828);
  EXPECT_DOUBLE_EQ(s.p99, 0.0271828);
}

TEST(HistogramTest, NegativeAndNanInputsAreSafe) {
  Histogram h;
  h.Observe(-1.0);  // clamped to zero
  h.Observe(std::nan(""));  // dropped
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 0.0);
}

TEST(MetricsRegistryTest, NamesAreStable) {
  MetricsRegistry reg;
  Counter* c1 = reg.counter("a.b.c");
  Counter* c2 = reg.counter("a.b.c");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(reg.counter("other"), c1);
  // Families are independent namespaces.
  EXPECT_NE(static_cast<void*>(reg.gauge("a.b.c")),
            static_cast<void*>(c1));
}

TEST(MetricsRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(MetricsRegistryTest, ToJsonShape) {
  MetricsRegistry reg;
  reg.counter("x.count")->Add(7);
  reg.gauge("x.level")->Set(2.5);
  reg.histogram("x.seconds")->Observe(0.25);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\":{\"x.count\":7}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"x.level\":2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"x.seconds\":{\"count\":1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, ResetDropsEverything) {
  MetricsRegistry reg;
  reg.counter("gone")->Add(3);
  reg.Reset();
  EXPECT_EQ(reg.counter("gone")->value(), 0);
}

TEST(ScopedTimerTest, ReportsIntoHistogramOnDestruction) {
  MetricsRegistry reg;
  {
    ScopedTimer t(&reg, "scoped.seconds");
    EXPECT_GE(t.ElapsedSeconds(), 0.0);
  }
  HistogramSnapshot s = reg.histogram("scoped.seconds")->Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_GE(s.max, 0.0);
  // Null registry / histogram: must be a safe no-op.
  { ScopedTimer t(static_cast<Histogram*>(nullptr)); }
  { ScopedTimer t(static_cast<MetricsRegistry*>(nullptr), "x"); }
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;  // disabled by default
  {
    Span span(&tracer, "ignored");
    EXPECT_FALSE(span.active());
    span.SetAttr("k", 3);
  }
  EXPECT_TRUE(tracer.Finished().empty());
  { Span null_span(static_cast<Tracer*>(nullptr), "also ignored"); }
}

TEST(TracerTest, SpansNestLexically) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span root(&tracer, "root");
    {
      Span child(&tracer, "child");
      Span grandchild(&tracer, "grandchild");
    }
    Span sibling(&tracer, "sibling");
  }
  std::vector<SpanRecord> spans = tracer.Finished();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "grandchild");
  EXPECT_EQ(spans[2].parent, spans[1].id);
  EXPECT_EQ(spans[2].depth, 2);
  EXPECT_EQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[3].parent, spans[0].id);
  // All closed, with start/duration consistent with nesting.
  for (const SpanRecord& s : spans) {
    EXPECT_GE(s.duration_ns, 0) << s.name;
  }
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[0].duration_ns, spans[1].duration_ns);
}

TEST(TracerTest, AttrsAreRecorded) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span span(&tracer, "work");
    span.SetAttr("rows", static_cast<size_t>(2000));
    span.SetAttr("algorithm", "pam");
    span.SetAttr("silhouette", 0.5);
  }
  std::vector<SpanRecord> spans = tracer.Finished();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 3u);
  EXPECT_EQ(spans[0].attrs[0].first, "rows");
  EXPECT_EQ(spans[0].attrs[0].second, "2000");
  EXPECT_EQ(spans[0].attrs[1].second, "pam");
}

TEST(TracerTest, ClearDiscardsSpans) {
  Tracer tracer;
  tracer.set_enabled(true);
  { Span span(&tracer, "gone"); }
  tracer.Clear();
  EXPECT_TRUE(tracer.Finished().empty());
}

TEST(TracerTest, ToJsonNestsChildren) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span root(&tracer, "outer");
    root.SetAttr("k", 4);
    Span child(&tracer, "inner");
  }
  std::string json = tracer.ToJson();
  // Child objects appear inside the parent's "children" array.
  size_t outer = json.find("\"name\":\"outer\"");
  size_t children = json.find("\"children\":[", outer);
  size_t inner = json.find("\"name\":\"inner\"", children);
  ASSERT_NE(outer, std::string::npos) << json;
  ASSERT_NE(children, std::string::npos) << json;
  ASSERT_NE(inner, std::string::npos) << json;
  EXPECT_NE(json.find("\"attrs\":{\"k\":\"4\"}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"duration_us\":"), std::string::npos) << json;
}

TEST(TracerTest, ToChromeTraceShape) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span root(&tracer, "outer");
    Span child(&tracer, "inner");
    child.SetAttr("rows", 10);
  }
  std::string json = tracer.ToChromeTrace();
  // Minimum contract for chrome://tracing: a traceEvents array of complete
  // ("ph":"X") events with ts/dur in microseconds and integer pid/tid.
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"args\":{\"rows\":\"10\"}"), std::string::npos)
      << json;
  EXPECT_EQ(json.back(), '}');
}

TEST(TracerTest, GlobalDisabledByDefault) {
  EXPECT_FALSE(Tracer::Global().enabled());
  { Span span("no-op through the global tracer"); }
}

TEST(TracerTest, ConcurrentSpansKeepPerThreadNesting) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      Span outer(&tracer, "thread.outer");
      Span inner(&tracer, "thread.inner");
    });
  }
  for (auto& t : threads) t.join();
  std::vector<SpanRecord> spans = tracer.Finished();
  ASSERT_EQ(spans.size(), 2u * kThreads);
  for (const SpanRecord& s : spans) {
    if (s.name == "thread.outer") {
      EXPECT_EQ(s.parent, -1);
    } else {
      // Each inner span's parent is the outer span of the SAME thread.
      ASSERT_GE(s.parent, 0);
      EXPECT_EQ(spans[s.parent].thread, s.thread);
      EXPECT_EQ(spans[s.parent].name, "thread.outer");
    }
  }
}

}  // namespace
}  // namespace blaeu::obs
