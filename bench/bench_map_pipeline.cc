// Experiment C1 / F3: map-construction latency.
//
// The paper's claim: through sampling (a few thousand tuples per map) and
// CLARA, Blaeu stays at interaction time regardless of table size. This
// bench sweeps the LOFAR table size and compares:
//   - sampled maps (sample_size = 2000, the paper's operating point)
//   - unsampled maps (the whole selection is clustered)
// The sampled latency should stay flat; the unsampled one grows.
// google-benchmark binary: run with --benchmark_filter=... to narrow.
//
// After the sweeps, one traced build at the operating point emits
//   BENCH_map_pipeline_stages.json     — per-stage latency breakdown
//   BENCH_map_pipeline_trace.json      — chrome://tracing-loadable span dump
//   BENCH_map_pipeline_threads.json    — wall clock at 1/2/4/N threads
//   BENCH_map_pipeline_navigation.json — cold vs. warm zoom sequence (the
//                                        map cache's interaction-time win)
//   BENCH_map_pipeline_regression.json — exact p50/p95 of the operating-point
//                                        build (total + per-stage); compared
//                                        against bench/baselines/ by
//                                        tools/check_bench_regression (CI gate)
//   BENCH_map_pipeline_categorical.json— the same regression block for the
//                                        categorical-heavy Hollywood point
//                                        (string-path wins show up here)
//   BENCH_map_pipeline_report.html     — self-contained HTML perf report
//   BENCH_map_pipeline_openmetrics.txt — Prometheus/OpenMetrics exposition
// so the dominant pipeline stage is known before optimizing anything and
// the parallel layer's speedup stays measured.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/json_writer.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/map_builder.h"
#include "core/navigation.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workloads/hollywood.h"
#include "workloads/lofar.h"

using namespace blaeu;

namespace {

/// Cache of generated tables so each size is generated once.
const workloads::Dataset& LofarCached(size_t rows) {
  static std::map<size_t, workloads::Dataset>* cache =
      new std::map<size_t, workloads::Dataset>();
  auto it = cache->find(rows);
  if (it == cache->end()) {
    workloads::LofarSpec spec;
    spec.rows = rows;
    it = cache->emplace(rows, workloads::MakeLofar(spec)).first;
  }
  return it->second;
}

/// Cache of generated Hollywood tables (the categorical-heavy bench point:
/// genre/studio/title strings plus a small-domain year column).
const workloads::Dataset& HollywoodCached(size_t rows) {
  static std::map<size_t, workloads::Dataset>* cache =
      new std::map<size_t, workloads::Dataset>();
  auto it = cache->find(rows);
  if (it == cache->end()) {
    workloads::HollywoodSpec spec;
    spec.rows = rows;
    it = cache->emplace(rows, workloads::MakeHollywood(spec)).first;
  }
  return it->second;
}

std::vector<std::string> AllColumns(const monet::Table& table) {
  std::vector<std::string> cols;
  for (const auto& f : table.schema().fields()) cols.push_back(f.name);
  return cols;
}

std::vector<std::string> FluxColumns(const monet::Table& table) {
  std::vector<std::string> cols;
  for (const auto& f : table.schema().fields()) {
    if (f.name.rfind("flux_", 0) == 0 || f.name == "spectral_index") {
      cols.push_back(f.name);
    }
  }
  return cols;
}

void BM_MapSampled(benchmark::State& state) {
  const auto& data = LofarCached(static_cast<size_t>(state.range(0)));
  auto columns = FluxColumns(*data.table);
  core::MapOptions opt;
  opt.sample_size = 2000;  // paper operating point
  opt.fixed_k = 4;
  uint64_t seed = 1;
  for (auto _ : state) {
    // ScopedTimer feeds the global latency histogram the stage-breakdown
    // report prints alongside the google-benchmark numbers.
    ScopedTimer latency(&obs::MetricsRegistry::Global(),
                        "bench.map_sampled_seconds");
    opt.seed = seed++;
    auto map = core::BuildMap(
        *data.table, monet::SelectionVector::All(data.table->num_rows()),
        columns, opt);
    if (!map.ok()) state.SkipWithError(map.status().ToString().c_str());
    benchmark::DoNotOptimize(map);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

void BM_MapUnsampled(benchmark::State& state) {
  const auto& data = LofarCached(static_cast<size_t>(state.range(0)));
  auto columns = FluxColumns(*data.table);
  core::MapOptions opt;
  opt.sample_size = 0;  // cluster everything (CLARA beyond the threshold)
  opt.fixed_k = 4;
  uint64_t seed = 1;
  for (auto _ : state) {
    opt.seed = seed++;
    auto map = core::BuildMap(
        *data.table, monet::SelectionVector::All(data.table->num_rows()),
        columns, opt);
    if (!map.ok()) state.SkipWithError(map.status().ToString().c_str());
    benchmark::DoNotOptimize(map);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

// Categorical-heavy workload: Hollywood's schema is dominated by string
// columns (title/genre/studio) plus a small-domain year, so preprocessing
// spends its time in categorical ranking and dummy coding rather than
// normalizer fits. String-path wins show up here, not in LOFAR's mostly
// numeric profile.
void BM_MapCategorical(benchmark::State& state) {
  const auto& data = HollywoodCached(static_cast<size_t>(state.range(0)));
  auto columns = AllColumns(*data.table);
  core::MapOptions opt;
  opt.sample_size = 2000;
  opt.fixed_k = 4;
  uint64_t seed = 1;
  for (auto _ : state) {
    ScopedTimer latency(&obs::MetricsRegistry::Global(),
                        "bench.map_categorical_seconds");
    opt.seed = seed++;
    auto map = core::BuildMap(
        *data.table, monet::SelectionVector::All(data.table->num_rows()),
        columns, opt);
    if (!map.ok()) state.SkipWithError(map.status().ToString().c_str());
    benchmark::DoNotOptimize(map);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

// The full pipeline stage split at the operating point: preprocessing vs
// clustering vs description is visible via map metadata, so this reports
// the end-to-end figure per table size.
BENCHMARK(BM_MapSampled)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Arg(128000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

BENCHMARK(BM_MapUnsampled)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

BENCHMARK(BM_MapCategorical)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/// One traced build at the paper's operating point; writes the per-stage
/// breakdown + chrome trace next to the benchmark output.
void EmitStageBreakdown() {
  constexpr size_t kRows = 32000;
  const auto& data = LofarCached(kRows);
  auto columns = FluxColumns(*data.table);

  obs::Tracer tracer;
  tracer.set_enabled(true);
  obs::MetricsRegistry metrics;
  core::MapOptions opt;
  opt.sample_size = 2000;
  opt.fixed_k = 4;
  opt.seed = 7;
  opt.tracer = &tracer;
  opt.metrics = &metrics;
  auto map = core::BuildMap(
      *data.table, monet::SelectionVector::All(data.table->num_rows()),
      columns, opt);
  if (!map.ok()) {
    std::fprintf(stderr, "stage breakdown build failed: %s\n",
                 map.status().ToString().c_str());
    return;
  }

  // Stage table: direct children of the core.map.build root span.
  std::vector<obs::SpanRecord> spans = tracer.Finished();
  int build_id = -1;
  for (const auto& s : spans) {
    if (s.name == "core.map.build") build_id = s.id;
  }
  JsonWriter w;
  w.BeginObject();
  w.KV("bench", "map_pipeline_stages");
  w.KV("rows", kRows);
  w.KV("sample_size", opt.sample_size);
  w.KV("k", map->num_clusters);
  w.KV("algorithm", map->algorithm);
  w.KV("total_ms", map->build_seconds * 1e3);
  w.Key("stages").BeginArray();
  for (const auto& s : spans) {
    if (s.parent != build_id || s.duration_ns < 0) continue;
    w.BeginObject();
    w.KV("name", s.name);
    w.KV("ms", static_cast<double>(s.duration_ns) / 1e6);
    for (const auto& [k, v] : s.attrs) w.KV(k, v);
    w.EndObject();
  }
  w.EndArray();
  w.Key("metrics").RawValue(metrics.ToJson());
  w.EndObject();

  std::ofstream stages("BENCH_map_pipeline_stages.json");
  stages << w.str() << "\n";
  std::ofstream trace("BENCH_map_pipeline_trace.json");
  trace << tracer.ToChromeTrace() << "\n";
  std::printf("%s\n", w.str().c_str());
  std::printf(
      "wrote BENCH_map_pipeline_stages.json and BENCH_map_pipeline_trace.json"
      " (load the trace in chrome://tracing)\n");
}

/// Thread-scaling sweep at the operating point: the same build at 1/2/4/N
/// threads, best-of-5 wall clock. Writes BENCH_map_pipeline_threads.json
/// so the parallel layer's speedup (and any 1-thread regression) is a
/// tracked artifact rather than a claim.
void EmitThreadScaling() {
  constexpr size_t kRows = 32000;
  constexpr int kReps = 5;
  const auto& data = LofarCached(kRows);
  auto columns = FluxColumns(*data.table);
  auto sel = monet::SelectionVector::All(data.table->num_rows());

  std::vector<size_t> thread_counts = {1, 2, 4};
  if (DefaultNumThreads() > 4) thread_counts.push_back(DefaultNumThreads());

  core::MapOptions opt;
  opt.sample_size = 2000;
  opt.fixed_k = 4;
  opt.seed = 7;

  JsonWriter w;
  w.BeginObject();
  w.KV("bench", "map_pipeline_threads");
  w.KV("rows", kRows);
  w.KV("sample_size", opt.sample_size);
  w.KV("reps", kReps);
  w.KV("default_threads", DefaultNumThreads());
  w.Key("results").BeginArray();
  double one_thread_ms = 0.0;
  for (size_t threads : thread_counts) {
    opt.num_threads = threads;
    // Warm-up rep primes the table cache, pool workers and allocator.
    auto warm = core::BuildMap(*data.table, sel, columns, opt);
    if (!warm.ok()) {
      std::fprintf(stderr, "thread scaling build failed: %s\n",
                   warm.status().ToString().c_str());
      return;
    }
    double best_ms = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      Timer timer;
      auto map = core::BuildMap(*data.table, sel, columns, opt);
      const double ms = timer.ElapsedMillis();
      if (!map.ok()) {
        std::fprintf(stderr, "thread scaling build failed: %s\n",
                     map.status().ToString().c_str());
        return;
      }
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    if (threads == 1) one_thread_ms = best_ms;
    w.BeginObject();
    w.KV("threads", threads);
    w.KV("ms", best_ms);
    w.KV("speedup_vs_1thread",
         one_thread_ms > 0.0 ? one_thread_ms / best_ms : 0.0);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  std::ofstream out("BENCH_map_pipeline_threads.json");
  out << w.str() << "\n";
  std::printf("%s\nwrote BENCH_map_pipeline_threads.json\n", w.str().c_str());
}

/// Navigation latency with and without the map cache at the LOFAR 32k
/// operating point: a session zooms down a path (cold builds), rolls back
/// to the root and replays the same path (warm, cache hits). Writes
/// BENCH_map_pipeline_navigation.json; the acceptance bar is warm rebuild
/// >= 2x faster than cold.
void EmitNavigationBench() {
  constexpr size_t kRows = 32000;
  constexpr int kDepth = 3;
  const auto& data = LofarCached(kRows);

  core::SessionOptions opt;
  opt.map.sample_size = 2000;
  opt.map.fixed_k = 4;
  opt.seed = 7;

  auto run_path = [&](bool cached, double* descend_ms, double* replay_ms,
                      core::SessionStats* stats_out) -> bool {
    core::SessionOptions session_opt = opt;
    session_opt.cache_enabled = cached;
    auto session = core::Session::Start(data.table, "lofar", session_opt);
    if (!session.ok()) {
      std::fprintf(stderr, "navigation bench start failed: %s\n",
                   session.status().ToString().c_str());
      return false;
    }
    core::Session s = std::move(session).ValueOrDie();
    // Descend: always into the biggest leaf, so both runs take the same
    // deterministic path with real work at every level.
    std::vector<int> path;
    Timer descend;
    for (int depth = 0; depth < kDepth; ++depth) {
      int biggest = -1;
      size_t biggest_count = 0;
      for (int leaf : s.current().map.LeafIds()) {
        const auto& r = s.current().map.region(leaf);
        if (r.parent >= 0 && r.tuple_count >= 50 &&
            r.tuple_count > biggest_count) {
          biggest = leaf;
          biggest_count = r.tuple_count;
        }
      }
      if (biggest < 0) break;
      if (!s.Zoom(biggest).ok()) break;
      path.push_back(biggest);
    }
    *descend_ms = descend.ElapsedMillis();
    if (path.empty()) {
      std::fprintf(stderr, "navigation bench found no zoomable region\n");
      return false;
    }
    // Replay: back to the root, then the identical zoom sequence. With the
    // cache every map on the path is a hit; without it every map is rebuilt.
    if (!s.RollbackTo(0).ok()) return false;
    Timer replay;
    for (int region : path) {
      if (!s.Zoom(region).ok()) {
        std::fprintf(stderr, "navigation bench replay diverged\n");
        return false;
      }
    }
    *replay_ms = replay.ElapsedMillis();
    *stats_out = s.stats();
    return true;
  };

  double cold_descend = 0, cold_replay = 0;
  double warm_descend = 0, warm_replay = 0;
  core::SessionStats cold_stats, warm_stats;
  if (!run_path(false, &cold_descend, &cold_replay, &cold_stats)) return;
  if (!run_path(true, &warm_descend, &warm_replay, &warm_stats)) return;

  JsonWriter w;
  w.BeginObject();
  w.KV("bench", "map_pipeline_navigation");
  w.KV("rows", kRows);
  w.KV("sample_size", opt.map.sample_size);
  w.KV("zoom_depth", kDepth);
  w.Key("cold").BeginObject();
  w.KV("descend_ms", cold_descend);
  w.KV("replay_ms", cold_replay);
  w.KV("maps_built", cold_stats.maps_built);
  w.KV("cache_hits", cold_stats.cache_hits);
  w.EndObject();
  w.Key("warm").BeginObject();
  w.KV("descend_ms", warm_descend);
  w.KV("replay_ms", warm_replay);
  w.KV("maps_built", warm_stats.maps_built);
  w.KV("cache_hits", warm_stats.cache_hits);
  w.EndObject();
  const double speedup = warm_replay > 0.0 ? cold_replay / warm_replay : 0.0;
  w.KV("warm_replay_speedup", speedup);
  w.KV("meets_2x_bar", speedup >= 2.0);
  w.EndObject();

  std::ofstream out("BENCH_map_pipeline_navigation.json");
  out << w.str() << "\n";
  std::printf("%s\nwrote BENCH_map_pipeline_navigation.json\n",
              w.str().c_str());
}

/// The CI perf-regression point: core.map.build_seconds at an operating
/// point (32k rows, sample 2000, fixed k=4, 1 thread), kReps repetitions
/// after one warm-up. p50/p95 are exact nearest-rank order statistics over
/// the raw wall-clock samples — the log-scale metrics histogram quantizes
/// to power-of-two buckets (~2x relative error), far too coarse for a 25%
/// gate. Each rep also runs under its own tracer so the per-stage
/// breakdown (preprocess/cluster/describe/count/...) gets the same exact
/// quantile treatment; tools/check_bench_regression gates both the total
/// p50 and the preprocess-stage p50 against the committed bench/baselines/
/// snapshot.
void EmitRegressionPointFor(const char* workload, const monet::Table& table,
                            const std::vector<std::string>& columns,
                            const char* out_path) {
  constexpr int kReps = 15;
  auto sel = monet::SelectionVector::All(table.num_rows());

  core::MapOptions opt;
  opt.sample_size = 2000;
  opt.fixed_k = 4;
  opt.seed = 7;
  opt.num_threads = 1;

  auto warm = core::BuildMap(table, sel, columns, opt);
  if (!warm.ok()) {
    std::fprintf(stderr, "regression point build failed: %s\n",
                 warm.status().ToString().c_str());
    return;
  }
  std::vector<double> samples;
  samples.reserve(kReps);
  // Stage-name -> wall-clock samples, from the direct children of the
  // core.map.build span (one tracer per rep keeps the spans separable).
  std::map<std::string, std::vector<double>> stage_samples;
  for (int rep = 0; rep < kReps; ++rep) {
    obs::Tracer tracer;
    tracer.set_enabled(true);
    opt.tracer = &tracer;
    Timer timer;
    auto map = core::BuildMap(table, sel, columns, opt);
    if (!map.ok()) {
      std::fprintf(stderr, "regression point build failed: %s\n",
                   map.status().ToString().c_str());
      return;
    }
    samples.push_back(timer.ElapsedSeconds());
    std::vector<obs::SpanRecord> spans = tracer.Finished();
    int build_id = -1;
    for (const auto& s : spans) {
      if (s.name == "core.map.build") build_id = s.id;
    }
    for (const auto& s : spans) {
      if (s.parent != build_id || s.duration_ns < 0) continue;
      // "core.map.preprocess" -> "preprocess"
      std::string short_name = s.name.rfind("core.map.", 0) == 0
                                   ? s.name.substr(9)
                                   : s.name;
      stage_samples[short_name].push_back(static_cast<double>(s.duration_ns) /
                                          1e9);
    }
  }
  opt.tracer = nullptr;
  auto nearest_rank = [](std::vector<double>& v, double q) {
    std::sort(v.begin(), v.end());
    size_t rank = static_cast<size_t>(q * static_cast<double>(v.size()));
    if (rank >= v.size()) rank = v.size() - 1;
    return v[rank];
  };

  JsonWriter w;
  w.BeginObject();
  w.KV("bench", "map_pipeline_regression");
  w.KV("metric", "core.map.build_seconds");
  w.KV("workload", workload);
  w.KV("rows", table.num_rows());
  w.KV("sample_size", opt.sample_size);
  w.KV("k", opt.fixed_k);
  w.KV("threads", static_cast<int64_t>(1));
  w.KV("reps", kReps);
  w.KV("p50_seconds", nearest_rank(samples, 0.50));
  w.KV("p95_seconds", nearest_rank(samples, 0.95));
  w.KV("min_seconds", samples.front());
  w.KV("max_seconds", samples.back());
  w.Key("stages").BeginObject();
  for (auto& [name, stage] : stage_samples) {
    if (stage.size() < static_cast<size_t>(kReps)) continue;  // partial span
    w.Key(name).BeginObject();
    w.KV("p50_seconds", nearest_rank(stage, 0.50));
    w.KV("p95_seconds", nearest_rank(stage, 0.95));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  std::printf("%s\nwrote %s\n", w.str().c_str(), out_path);
}

void EmitRegressionPoint() {
  const auto& data = LofarCached(32000);
  EmitRegressionPointFor("lofar", *data.table, FluxColumns(*data.table),
                         "BENCH_map_pipeline_regression.json");
}

/// The categorical-heavy twin of the regression point: Hollywood 32k rows,
/// same sample size / k / thread budget. Not a CI gate (no committed
/// baseline yet) but the artifact makes string-path wins visible.
void EmitCategoricalPoint() {
  const auto& data = HollywoodCached(32000);
  EmitRegressionPointFor("hollywood", *data.table, AllColumns(*data.table),
                         "BENCH_map_pipeline_categorical.json");
}

/// The process-global metrics accumulated across every bench above, as a
/// Prometheus exposition and a human-readable HTML waterfall — the CI run
/// uploads both as artifacts.
void EmitPerfReport() {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  std::ofstream om("BENCH_map_pipeline_openmetrics.txt");
  om << obs::ToOpenMetrics(snap, {{"bench", "map_pipeline"}});
  std::ofstream html("BENCH_map_pipeline_report.html");
  html << obs::ToHtmlReport(snap, "Blaeu map-pipeline perf report");
  std::printf(
      "wrote BENCH_map_pipeline_openmetrics.txt and "
      "BENCH_map_pipeline_report.html\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  EmitStageBreakdown();
  EmitThreadScaling();
  EmitNavigationBench();
  EmitRegressionPoint();
  EmitCategoricalPoint();
  EmitPerfReport();
  return 0;
}
