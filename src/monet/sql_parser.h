// Parser for the Select-Project SQL dialect Blaeu emits. Every query the
// session prints (`Session::CurrentQuery().ToSql()`) parses back into an
// executable SelectProjectQuery, closing the maps <-> queries loop: a user
// can copy a query out of a map, edit it, and run it against the catalog.
//
// Grammar (case-insensitive keywords):
//   query   := SELECT cols FROM table [WHERE conj] [';']
//   cols    := '*' | column (',' column)*
//   conj    := cond (AND cond)*
//   cond    := column op literal
//            | column [NOT] IN '(' string (',' string)* ')'
//            | column IS [NOT] NULL
//            | TRUE
//   op      := '<' | '<=' | '>' | '>=' | '=' | '<>'
//   column  := '"' ident '"' | bare identifier
//   table   := same as column
//   literal := number | string
//   string  := '\'' chars '\''   (doubled quote escapes)
#pragma once

#include <string>

#include "common/status.h"
#include "monet/query.h"

namespace blaeu::monet {

/// Parses one Select-Project statement. Returns InvalidArgument with a
/// position-annotated message on malformed input.
Result<SelectProjectQuery> ParseSql(const std::string& sql);

/// Parses a bare WHERE-clause body (the `Conjunction::ToSql()` output).
Result<Conjunction> ParseWhere(const std::string& text);

}  // namespace blaeu::monet
