// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace blaeu {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view s);

/// True if `s` parses fully as a finite double; stores it in *out.
bool ParseDouble(std::string_view s, double* out);

/// True if `s` parses fully as an int64; stores it in *out.
bool ParseInt(std::string_view s, int64_t* out);

/// Formats a double compactly (up to `precision` significant digits, no
/// trailing zeros).
std::string FormatDouble(double v, int precision = 6);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Escapes a CSV field (quotes it when it contains delimiter/quote/newline).
std::string CsvEscape(std::string_view field, char delim = ',');

}  // namespace blaeu
