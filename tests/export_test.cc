// Unit tests for the metric exporters: OpenMetrics conformance (TYPE
// lines, _total suffix, name sanitization, label escaping, # EOF) and the
// HTML perf report.
#include "obs/export.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace blaeu::obs {
namespace {

TEST(OpenMetricsNameTest, SanitizesDotsAndIllegalCharacters) {
  EXPECT_EQ(OpenMetricsName("core.map.builds"), "blaeu_core_map_builds");
  EXPECT_EQ(OpenMetricsName("core.map.stage.count_seconds"),
            "blaeu_core_map_stage_count_seconds");
  EXPECT_EQ(OpenMetricsName("weird-name with spaces"),
            "blaeu_weird_name_with_spaces");
}

TEST(OpenMetricsEscapeTest, EscapesBackslashQuoteNewline)
{
  EXPECT_EQ(OpenMetricsEscape("plain"), "plain");
  EXPECT_EQ(OpenMetricsEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(OpenMetricsEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(OpenMetricsEscape("line1\nline2"), "line1\\nline2");
}

TEST(ToOpenMetricsTest, CountersExportWithTypeAndTotalSuffix) {
  MetricsRegistry registry;
  registry.counter("core.map.builds")->Add(7);
  std::string text = ToOpenMetrics(registry);
  EXPECT_NE(text.find("# TYPE blaeu_core_map_builds counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("blaeu_core_map_builds_total 7\n"), std::string::npos);
  // The exposition always terminates with the mandatory EOF marker.
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST(ToOpenMetricsTest, GaugesAndHistogramsExport) {
  MetricsRegistry registry;
  registry.gauge("core.cache.bytes")->Set(1024.0);
  Histogram* h = registry.histogram("core.map.build_seconds");
  h->Observe(0.010);
  h->Observe(0.020);
  std::string text = ToOpenMetrics(registry);
  EXPECT_NE(text.find("# TYPE blaeu_core_cache_bytes gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("blaeu_core_cache_bytes 1024\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE blaeu_core_map_build_seconds summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.95\""), std::string::npos);
  EXPECT_NE(text.find("blaeu_core_map_build_seconds_sum 0.03\n"),
            std::string::npos);
  EXPECT_NE(text.find("blaeu_core_map_build_seconds_count 2\n"),
            std::string::npos);
}

TEST(ToOpenMetricsTest, LabelsAttachEscapedToEverySample) {
  MetricsRegistry registry;
  registry.counter("core.map.builds")->Increment();
  registry.gauge("core.cache.bytes")->Set(1.0);
  std::string text =
      ToOpenMetrics(registry, {{"dataset", "lofar \"32k\"\nrun\\1"}});
  EXPECT_NE(
      text.find(
          "blaeu_core_map_builds_total{dataset=\"lofar \\\"32k\\\"\\nrun\\\\1\"} 1\n"),
      std::string::npos);
  EXPECT_NE(text.find("blaeu_core_cache_bytes{dataset="), std::string::npos);
}

TEST(ToOpenMetricsTest, EmptyRegistryIsJustEof) {
  MetricsRegistry registry;
  EXPECT_EQ(ToOpenMetrics(registry), "# EOF\n");
}

TEST(ToHtmlReportTest, ContainsWaterfallAndTables) {
  MetricsRegistry registry;
  registry.histogram("core.map.stage.sample_seconds")->Observe(0.001);
  registry.histogram("core.map.stage.preprocess_seconds")->Observe(0.015);
  registry.histogram("core.map.stage.cluster_seconds")->Observe(0.002);
  registry.counter("core.map.builds")->Increment();
  registry.gauge("core.cache.bytes")->Set(42.0);
  std::string html = ToHtmlReport(registry, "test report");
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("test report"), std::string::npos);
  // Stages appear in pipeline order in the waterfall.
  size_t sample_pos = html.find(">sample<");
  size_t preprocess_pos = html.find(">preprocess<");
  size_t cluster_pos = html.find(">cluster<");
  ASSERT_NE(sample_pos, std::string::npos);
  ASSERT_NE(preprocess_pos, std::string::npos);
  ASSERT_NE(cluster_pos, std::string::npos);
  EXPECT_LT(sample_pos, preprocess_pos);
  EXPECT_LT(preprocess_pos, cluster_pos);
  EXPECT_NE(html.find("core.map.builds"), std::string::npos);
  EXPECT_NE(html.find("core.cache.bytes"), std::string::npos);
  // Self-contained: no external scripts or stylesheets.
  EXPECT_EQ(html.find("<script src"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
}

TEST(ToHtmlReportTest, EscapesTitle) {
  MetricsRegistry registry;
  std::string html = ToHtmlReport(registry, "a <b> & \"c\"");
  EXPECT_NE(html.find("a &lt;b&gt; &amp; &quot;c&quot;"), std::string::npos);
  EXPECT_EQ(html.find("<b> &"), std::string::npos);
}

}  // namespace
}  // namespace blaeu::obs
