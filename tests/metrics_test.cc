// Unit tests for external clustering metrics.
#include "stats/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace blaeu::stats {
namespace {

TEST(AriTest, IdenticalPartitionsScoreOne) {
  std::vector<int> a = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, a), 1.0);
}

TEST(AriTest, RelabeledPartitionsScoreOne) {
  std::vector<int> a = {0, 0, 1, 1, 2, 2};
  std::vector<int> b = {5, 5, 9, 9, 1, 1};  // same partition, new names
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), 1.0);
}

TEST(AriTest, IndependentPartitionsScoreNearZero) {
  Rng rng(1);
  std::vector<int> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(static_cast<int>(rng.NextBounded(4)));
    b.push_back(static_cast<int>(rng.NextBounded(4)));
  }
  EXPECT_NEAR(AdjustedRandIndex(a, b), 0.0, 0.05);
}

TEST(AriTest, PartialAgreementBetweenZeroAndOne) {
  std::vector<int> a = {0, 0, 0, 1, 1, 1};
  std::vector<int> b = {0, 0, 1, 1, 1, 1};  // one point moved
  double ari = AdjustedRandIndex(a, b);
  EXPECT_GT(ari, 0.0);
  EXPECT_LT(ari, 1.0);
}

TEST(AriTest, DegenerateSinglePartition) {
  std::vector<int> a = {0, 0, 0};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, a), 1.0);
}

TEST(NmiClusteringTest, MatchesRelabeling) {
  std::vector<int> a = {0, 0, 1, 1};
  std::vector<int> b = {1, 1, 0, 0};
  EXPECT_NEAR(ClusteringNMI(a, b), 1.0, 1e-12);
}

TEST(PurityTest, PerfectAndMixed) {
  std::vector<int> truth = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(Purity({5, 5, 7, 7}, truth), 1.0);
  // One cluster holding everything: purity = majority share.
  EXPECT_DOUBLE_EQ(Purity({0, 0, 0, 0}, truth), 0.5);
}

TEST(PurityTest, OverclusteringInflatesPurity) {
  // Purity's known bias: singleton clusters are always pure.
  std::vector<int> truth = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(Purity({0, 1, 2, 3}, truth), 1.0);
}

TEST(AccuracyTest, ExactMatchFraction) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 1, 0}, {0, 1, 0, 0}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

}  // namespace
}  // namespace blaeu::stats
