#include "monet/schema.h"

namespace blaeu::monet {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, i);
  }
}

std::optional<size_t> Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Result<size_t> Schema::RequireFieldIndex(const std::string& name) const {
  auto idx = FieldIndex(name);
  if (!idx) return Status::KeyError("no column named '" + name + "'");
  return *idx;
}

Schema Schema::Select(const std::vector<size_t>& indices) const {
  std::vector<Field> out;
  out.reserve(indices.size());
  for (size_t i : indices) out.push_back(fields_[i]);
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeName(fields_[i].type);
  }
  return out;
}

}  // namespace blaeu::monet
