// Preprocessing stage of the mapping pipeline (Figure 3, first box):
// "Blaeu removes the primary keys, it normalizes the continuous variables,
// and it introduces dummy binary variables to represent the categorical
// data (each dummy variable corresponds to one category). The result of
// this operation is a set of vectors, where each vector represents a tuple
// in the database."
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "monet/selection.h"
#include "monet/table.h"
#include "stats/matrix.h"

namespace blaeu::core {

/// How categorical columns enter the feature space.
enum class CategoricalEncoding {
  kDummy,   ///< one 0/1 feature per category (paper's choice)
  kGower,   ///< keep one code feature per column; use Gower distance
};

/// Preprocessing options.
struct PreprocessOptions {
  CategoricalEncoding encoding = CategoricalEncoding::kDummy;
  /// Drop detected primary-key columns.
  bool remove_primary_keys = true;
  /// z-score continuous features (false: min-max).
  bool zscore = true;
  /// Cap on dummy features per categorical column; rarer categories share
  /// an "other" feature. Keeps wide categorical columns from dominating.
  size_t max_categories = 12;
  /// Numeric columns with at most this many distinct values are treated as
  /// categorical.
  size_t categorical_distinct_threshold = 10;
  /// Thread budget for the per-column planning and per-row fill loops
  /// (common/parallel.h: 0 = process default, 1 = serial). The feature
  /// matrix is bit-identical at any value.
  size_t num_threads = 0;
};

/// \brief Description of one feature of the preprocessed matrix.
struct FeatureInfo {
  size_t source_column;      ///< index into the input table's schema
  std::string source_name;   ///< column name
  bool is_categorical;       ///< dummy or Gower-coded categorical
  std::string category;      ///< dummy features: which category ("" else)
};

/// \brief Output of preprocessing: the vectors plus bookkeeping.
struct PreprocessedData {
  stats::Matrix features;             ///< one row per selected tuple
  std::vector<FeatureInfo> feature_info;
  std::vector<uint32_t> rows;         ///< table row per matrix row
  std::vector<size_t> used_columns;   ///< table columns that contributed
  std::vector<size_t> dropped_keys;   ///< removed primary-key columns
  /// Per-feature categorical mask (for Gower).
  std::vector<bool> categorical_mask() const;
};

/// Runs the preprocessing pipeline over the rows in `sel`.
///
/// Missing values: with kDummy encoding, numeric NaNs are imputed at the
/// (normalized) mean and missing categoricals get all-zero dummies; with
/// kGower they stay NaN and the Gower metric skips them pairwise.
Result<PreprocessedData> Preprocess(const monet::Table& table,
                                    const monet::SelectionVector& sel,
                                    const PreprocessOptions& options = {});

}  // namespace blaeu::core
