#include "cluster/clustering.h"

#include <algorithm>

namespace blaeu::cluster {

std::vector<size_t> ClusterSizes(const std::vector<int>& labels) {
  int k = 0;
  for (int l : labels) k = std::max(k, l + 1);
  std::vector<size_t> sizes(k, 0);
  for (int l : labels) {
    if (l >= 0) ++sizes[l];
  }
  return sizes;
}

}  // namespace blaeu::cluster
