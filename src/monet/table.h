// Immutable tables: a schema plus one shared column per field.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "monet/column.h"
#include "monet/schema.h"

namespace blaeu::monet {

class Table;
using TablePtr = std::shared_ptr<const Table>;

/// \brief An immutable columnar table.
///
/// Columns are shared_ptrs, so projections are O(#columns) and share
/// storage with the parent table — the "low-level data sharing" Blaeu relies
/// on between MonetDB and R. Row subsets (filters, samples) materialize via
/// Take.
class Table {
 public:
  Table(Schema schema, std::vector<ColumnPtr> columns);

  /// Validates column count/types/lengths against the schema.
  static Result<TablePtr> Make(Schema schema, std::vector<ColumnPtr> columns);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const ColumnPtr& column(size_t i) const { return columns_[i]; }
  /// Column by name, or KeyError.
  Result<ColumnPtr> ColumnByName(const std::string& name) const;

  /// Cell accessor (NULL-aware Value).
  Value GetValue(size_t row, size_t col) const {
    return columns_[col]->GetValue(row);
  }

  /// One row as Values, in schema order.
  std::vector<Value> Row(size_t row) const;

  /// New table with rows gathered at `indices` (duplicates allowed).
  TablePtr Take(const std::vector<uint32_t>& indices) const;

  /// New table keeping columns at `indices`, sharing their storage.
  TablePtr Project(const std::vector<size_t>& indices) const;

  /// Project by column names; KeyError if any is missing.
  Result<TablePtr> ProjectNames(const std::vector<std::string>& names) const;

  /// First `n` rows rendered as an aligned text grid (for examples/REPL).
  std::string ToString(size_t max_rows = 10) const;

 private:
  Schema schema_;
  std::vector<ColumnPtr> columns_;
  size_t num_rows_;
};

/// \brief Row-wise table construction.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema);

  /// Appends one row; `values` must match the schema arity and types
  /// (numeric widening allowed).
  Status AppendRow(const std::vector<Value>& values);

  /// Direct mutable access to column `i` for bulk typed appends. The caller
  /// must keep all columns the same length before Finish().
  Column* mutable_column(size_t i) { return columns_[i].get(); }

  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0]->size(); }

  void Reserve(size_t n);

  /// Finalizes into an immutable table. The builder is left empty.
  Result<TablePtr> Finish();

 private:
  Schema schema_;
  std::vector<std::shared_ptr<Column>> columns_;
};

}  // namespace blaeu::monet
