#include "cluster/kselect.h"

#include <algorithm>

#include "cluster/pam.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace blaeu::cluster {

using stats::DistanceMatrix;

Result<KSelectResult> SelectK(const DistanceMatrix& dist,
                              const ClusterFn& cluster_fn,
                              const KSelectOptions& options) {
  const size_t n = dist.size();
  if (n < 2) return Status::Invalid("need at least 2 points to select k");
  size_t k_min = std::max<size_t>(2, options.k_min);
  size_t k_max = std::min(options.k_max, n - 1);
  if (k_min > k_max) {
    return Status::Invalid("empty k range after clamping");
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.counter("cluster.kselect.sweeps")->Increment();
  registry.counter("cluster.kselect.candidates")
      ->Add(static_cast<int64_t>(k_max - k_min + 1));
  ScopedTimer latency(registry.histogram("cluster.kselect.sweep_seconds"));

  // One task per candidate k (clustering + scoring are independent across
  // k), then a serial ascending-k pick that reproduces the sequential
  // loop exactly: first error propagates, lowest k with a strictly better
  // score than every smaller k wins.
  struct Candidate {
    Status status = Status::OK();
    ClusteringResult result;
    double score = -1.0;
  };
  const size_t count = k_max - k_min + 1;
  std::vector<Candidate> candidates(count);
  ParallelFor(
      0, count, 1,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          const size_t k = k_min + i;
          auto r = cluster_fn(k);
          if (!r.ok()) {
            candidates[i].status = r.status();
            continue;
          }
          ClusteringResult result = std::move(r).ValueOrDie();
          std::vector<size_t> sizes = ClusterSizes(result.labels);
          bool degenerate =
              sizes.size() != k ||
              std::any_of(sizes.begin(), sizes.end(),
                          [](size_t s) { return s == 0; });
          double score;
          if (degenerate) {
            score = -1.0;
          } else if (options.monte_carlo) {
            score = stats::MonteCarloSilhouette(
                n, result.labels,
                [&](size_t i2, size_t j2) { return dist.At(i2, j2); },
                options.mc_options);
          } else {
            score = stats::MeanSilhouette(dist, result.labels);
          }
          candidates[i].result = std::move(result);
          candidates[i].score = score;
        }
      },
      options.num_threads);

  KSelectResult out;
  out.best_score = -2.0;  // silhouettes live in [-1, 1]
  for (size_t i = 0; i < count; ++i) {
    if (!candidates[i].status.ok()) return candidates[i].status;
    out.scores.push_back(candidates[i].score);
    if (candidates[i].score > out.best_score) {
      out.best_score = candidates[i].score;
      out.best_k = k_min + i;
      out.best = std::move(candidates[i].result);
    }
  }
  return out;
}

Result<KSelectResult> SelectKWithPam(const DistanceMatrix& dist,
                                     const KSelectOptions& options) {
  return SelectK(
      dist, [&](size_t k) { return Pam(dist, k); }, options);
}

}  // namespace blaeu::cluster
