// Navigation-aware map cache: reuses preprocessing and whole maps across
// Zoom / Project / rollback so re-visiting a navigation state is O(1) and a
// serving layer does not redo identical work per interaction.
//
// ## Cache key contract
//
// A map is a pure function of
//   (table identity, selection, projected columns, build options, seed),
// so the key fingerprints exactly those five things:
//   - table_name + table_version: the Explorer bumps the version every time
//     a name is (re-)loaded, which invalidates prior entries;
//   - table_fp: schema shape (rows, columns, names, types), a guard against
//     two distinct tables sharing a name/version (standalone sessions);
//   - selection_fp: SelectionVector::Fingerprint() over the row ids;
//   - columns_fp: FNV over the projected column names, order-sensitive;
//   - options_fp: every knob of MapOptions / PreprocessOptions / CartOptions
//     that can change the output. Thread budgets and observability sinks are
//     deliberately excluded — the map is bit-identical at any thread count
//     (the PR 7 contract), so entries are shared across them;
//   - seed: the per-map seed. Sessions derive it from (session seed,
//     selection_fp, columns_fp), so rebuilding the same navigation state
//     cold produces the same seed, sample and map as a cache hit.
//
// ## Bit-identical vs. re-normalized reuse
//
// Three reuse tiers, two correctness classes:
//   1. Whole-map memoization (Lookup/Insert): hit returns the exact map that
//      a cold build of the same key would produce — bit-identical by
//      construction.
//   2. Primary-key reuse (LookupPrimaryKeys/InsertPrimaryKeys): key
//      detection reads only the table, never the selection, so reusing it
//      per (table_version, columns_fp) is bit-identical. On by default.
//   3. Parent-plan reuse (LookupPlan via the entry of the parent state):
//      normalizers, category tables and type decisions were fit on the
//      PARENT's sample; filling a child selection with them yields features
//      normalized by the parent's statistics. The resulting map is valid
//      but NOT bit-identical to a cold build, so this tier is opt-in
//      (SessionOptions::reuse_parent_plans) and off by default.
//
// ## Observability (ROADMAP naming convention)
//
// Counters: core.cache.hits, core.cache.misses, core.cache.inserts,
// core.cache.evictions, core.cache.invalidations, core.cache.pk_hits,
// core.cache.pk_misses, core.cache.plan_reuses. Gauges: core.cache.bytes,
// core.cache.entries. Spans: core.cache.lookup (attr hit=0|1),
// core.cache.invalidate.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/map.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace blaeu::core {

struct MapOptions;
struct PreprocessPlan;

/// Order-sensitive FNV-1a mix step, the hashing primitive behind every
/// cache fingerprint.
inline uint64_t HashMix(uint64_t h, uint64_t v) {
  return (h ^ v) * 0x100000001b3ULL;
}
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

/// FNV-1a fingerprint of a string list (length- and order-sensitive).
uint64_t FingerprintStrings(const std::vector<std::string>& strings);

/// Schema-shape fingerprint of a table (row count, column names and types).
/// A guard component of the cache key against two distinct tables sharing a
/// (name, version) pair, NOT a content hash — content identity is the
/// Explorer's job via table_version.
uint64_t FingerprintTable(const monet::Table& table);

/// Fingerprint of every output-affecting knob of MapOptions (including the
/// nested PreprocessOptions and CartOptions). Excludes num_threads and the
/// tracer/metrics sinks, which never change the map, and the seed, which is
/// a separate key component.
uint64_t FingerprintMapOptions(const MapOptions& options);

/// \brief The full identity of one map build (see the contract above).
struct MapCacheKey {
  std::string table_name;
  uint64_t table_version = 0;
  uint64_t table_fp = 0;
  uint64_t selection_fp = 0;
  uint64_t columns_fp = 0;
  uint64_t options_fp = 0;
  uint64_t seed = 0;

  bool operator==(const MapCacheKey& other) const {
    return table_version == other.table_version &&
           table_fp == other.table_fp &&
           selection_fp == other.selection_fp &&
           columns_fp == other.columns_fp &&
           options_fp == other.options_fp && seed == other.seed &&
           table_name == other.table_name;
  }

  /// 64-bit digest of all components.
  uint64_t Hash() const;
};

/// \brief Point-in-time cache statistics.
struct MapCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t inserts = 0;
  int64_t evictions = 0;      ///< entries dropped to respect the budget
  int64_t invalidations = 0;  ///< entries dropped by EvictTable/EvictSession
  int64_t pk_hits = 0;
  int64_t pk_misses = 0;
  size_t entries = 0;
  size_t bytes = 0;
  size_t budget_bytes = 0;
  size_t pk_entries = 0;
};

/// Rough heap footprint of a map, for budgeting.
size_t EstimateMapBytes(const DataMap& map);

/// \brief Thread-safe LRU cache of built maps and preprocessing artifacts.
///
/// Shared by every session of an Explorer (and injectable into standalone
/// sessions via SessionOptions::cache); concurrent sessions may hit each
/// other's entries. Entries are tagged with the inserting (or, after a hit,
/// the most recent using) session so CloseSession can release them, and
/// with their table name so reloading a table invalidates them.
class MapCache {
 public:
  static constexpr size_t kDefaultBudgetBytes = 64ull << 20;  // 64 MiB

  /// `metrics`/`tracer`/`flight` default to the process-global instances.
  explicit MapCache(size_t budget_bytes = kDefaultBudgetBytes,
                    obs::MetricsRegistry* metrics = nullptr,
                    obs::Tracer* tracer = nullptr,
                    obs::FlightRecorder* flight = nullptr);

  /// The configured budget, unless BLAEU_CACHE_BYTES overrides it.
  static size_t BudgetFromEnv(size_t configured);

  /// Process-unique id for a new session.
  static uint64_t NextSessionId();

  /// The cached map for `key`, or null. A hit refreshes LRU recency and
  /// re-tags the entry to `session_id`.
  std::shared_ptr<const DataMap> Lookup(const MapCacheKey& key,
                                        uint64_t session_id);

  /// Memoizes `map` (and optionally the preprocessing `plan` that produced
  /// it) under `key`, evicting least-recently-used entries over budget.
  void Insert(const MapCacheKey& key, uint64_t session_id,
              std::shared_ptr<const DataMap> map,
              std::shared_ptr<const PreprocessPlan> plan = nullptr);

  /// The preprocessing plan cached with `key`'s entry, or null. Used for
  /// re-normalized parent-plan reuse (tier 3 above).
  std::shared_ptr<const PreprocessPlan> LookupPlan(const MapCacheKey& key);

  /// Detected primary keys for (table_version, columns_fp) of `table_name`;
  /// bit-identical reuse (tier 2 above).
  std::shared_ptr<const std::vector<size_t>> LookupPrimaryKeys(
      const std::string& table_name, uint64_t table_version,
      uint64_t table_fp, uint64_t columns_fp);
  void InsertPrimaryKeys(const std::string& table_name,
                         uint64_t table_version, uint64_t table_fp,
                         uint64_t columns_fp,
                         std::shared_ptr<const std::vector<size_t>> keys);

  /// Drops every entry owned by `session_id` (session close/destruction).
  void EvictSession(uint64_t session_id);

  /// Drops every entry (maps and primary keys) for `table_name` — called
  /// when a table is re-loaded under the same name.
  void EvictTable(const std::string& table_name);

  /// Drops everything.
  void Clear();

  MapCacheStats stats() const;

  /// JSON object with the stats above (for Explorer::StatsReport()).
  std::string StatsJson() const;

 private:
  struct Entry {
    MapCacheKey key;
    uint64_t session_id = 0;
    size_t bytes = 0;
    std::shared_ptr<const DataMap> map;
    std::shared_ptr<const PreprocessPlan> plan;
  };
  struct PkEntry {
    std::string table_name;
    uint64_t table_version = 0;
    uint64_t table_fp = 0;
    uint64_t columns_fp = 0;
    std::shared_ptr<const std::vector<size_t>> keys;
  };

  /// Drops LRU entries until bytes_ <= budget_bytes_ (lock held).
  void EnforceBudgetLocked();
  void RemoveLocked(std::list<Entry>::iterator it, bool invalidation);
  void PublishGaugesLocked();

  const size_t budget_bytes_;
  obs::MetricsRegistry* const metrics_;
  obs::Tracer* const tracer_;
  obs::FlightRecorder* const flight_;

  mutable std::mutex mu_;
  std::list<Entry> entries_;  ///< most-recently-used first
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  std::vector<PkEntry> pk_entries_;
  size_t bytes_ = 0;
  MapCacheStats counters_;  ///< hit/miss/... tallies (sizes derived live)
};

using MapCachePtr = std::shared_ptr<MapCache>;

}  // namespace blaeu::core
