#include "core/map_cache.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/json_writer.h"
#include "core/map_builder.h"
#include "core/preprocess.h"

namespace blaeu::core {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

uint64_t MixString(uint64_t h, const std::string& s) {
  h = HashMix(h, s.size());
  for (char c : s) h = HashMix(h, static_cast<unsigned char>(c));
  return h;
}

}  // namespace

uint64_t FingerprintStrings(const std::vector<std::string>& strings) {
  uint64_t h = kFnvOffset;
  h = HashMix(h, strings.size());
  for (const std::string& s : strings) h = MixString(h, s);
  return h;
}

uint64_t FingerprintTable(const monet::Table& table) {
  uint64_t h = kFnvOffset;
  h = HashMix(h, table.num_rows());
  h = HashMix(h, table.num_columns());
  for (const auto& field : table.schema().fields()) {
    h = MixString(h, field.name);
    h = HashMix(h, static_cast<uint64_t>(field.type));
  }
  return h;
}

// Output-affecting knobs only, enumerated explicitly. Deliberately
// excluded: thread counts, observability sinks, and
// preprocess.use_dictionary — the dictionary fast paths are byte-identical
// to the string paths (dictionaries are derived data), so two runs
// differing only in that flag must share a cache entry.
uint64_t FingerprintMapOptions(const MapOptions& o) {
  uint64_t h = kFnvOffset;
  h = HashMix(h, o.sample_size);
  h = HashMix(h, static_cast<uint64_t>(o.algorithm));
  h = HashMix(h, o.clara_threshold);
  h = HashMix(h, o.k_min);
  h = HashMix(h, o.k_max);
  h = HashMix(h, o.fixed_k);
  h = HashMix(h, o.monte_carlo_threshold);
  h = HashMix(h, o.mc_subsamples);
  h = HashMix(h, o.mc_subsample_size);
  h = HashMix(h, static_cast<uint64_t>(o.preprocess.encoding));
  h = HashMix(h, o.preprocess.remove_primary_keys ? 1 : 2);
  h = HashMix(h, o.preprocess.zscore ? 1 : 2);
  h = HashMix(h, o.preprocess.max_categories);
  h = HashMix(h, o.preprocess.categorical_distinct_threshold);
  h = HashMix(h, o.tree.max_depth);
  h = HashMix(h, o.tree.min_samples_leaf);
  h = HashMix(h, o.tree.min_samples_split);
  h = HashMix(h, o.tree.max_thresholds);
  h = HashMix(h, DoubleBits(o.tree.min_impurity_decrease));
  h = HashMix(h, static_cast<uint64_t>(o.tree.criterion));
  h = HashMix(h, DoubleBits(o.tree.ccp_alpha));
  return h;
}

uint64_t MapCacheKey::Hash() const {
  uint64_t h = kFnvOffset;
  h = MixString(h, table_name);
  h = HashMix(h, table_version);
  h = HashMix(h, table_fp);
  h = HashMix(h, selection_fp);
  h = HashMix(h, columns_fp);
  h = HashMix(h, options_fp);
  h = HashMix(h, seed);
  return h;
}

size_t EstimateMapBytes(const DataMap& map) {
  auto conjunction_bytes = [](const monet::Conjunction& c) {
    size_t bytes = sizeof(monet::Conjunction);
    for (const monet::Condition& cond : c.conditions()) {
      bytes += sizeof(monet::Condition) + cond.column.capacity() + 32;
      for (const std::string& s : cond.set) bytes += s.capacity() + 1;
    }
    return bytes;
  };
  size_t bytes = sizeof(DataMap) + map.algorithm.capacity();
  for (const std::string& c : map.active_columns) bytes += c.capacity() + 1;
  for (const MapRegion& r : map.regions) {
    bytes += sizeof(MapRegion) + r.children.size() * sizeof(int);
    bytes += conjunction_bytes(r.edge) + conjunction_bytes(r.predicate);
  }
  return bytes;
}

MapCache::MapCache(size_t budget_bytes, obs::MetricsRegistry* metrics,
                   obs::Tracer* tracer, obs::FlightRecorder* flight)
    : budget_bytes_(budget_bytes),
      metrics_(metrics != nullptr ? metrics : &obs::MetricsRegistry::Global()),
      tracer_(tracer != nullptr ? tracer : &obs::Tracer::Global()),
      flight_(flight != nullptr ? flight : &obs::FlightRecorder::Global()) {
  counters_.budget_bytes = budget_bytes_;
}

size_t MapCache::BudgetFromEnv(size_t configured) {
  const char* env = std::getenv("BLAEU_CACHE_BYTES");
  if (env == nullptr || *env == '\0') return configured;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env) return configured;
  return static_cast<size_t>(parsed);
}

uint64_t MapCache::NextSessionId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const DataMap> MapCache::Lookup(const MapCacheKey& key,
                                                uint64_t session_id) {
  obs::Span span(tracer_, "core.cache.lookup");
  std::shared_ptr<const DataMap> found;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key.Hash());
    if (it != index_.end() && it->second->key == key) {
      // Refresh recency and ownership: the most recent user keeps the entry
      // alive across other sessions closing.
      entries_.splice(entries_.begin(), entries_, it->second);
      it->second->session_id = session_id;
      found = it->second->map;
      counters_.hits++;
    } else {
      counters_.misses++;
    }
  }
  span.SetAttr("hit", found != nullptr ? 1 : 0);
  metrics_->counter(found != nullptr ? "core.cache.hits"
                                     : "core.cache.misses")
      ->Increment();
  flight_->Record(found != nullptr ? obs::FlightEventKind::kCacheHit
                                   : obs::FlightEventKind::kCacheMiss,
                  "core.cache.lookup", {{"table", key.table_name}});
  return found;
}

void MapCache::Insert(const MapCacheKey& key, uint64_t session_id,
                      std::shared_ptr<const DataMap> map,
                      std::shared_ptr<const PreprocessPlan> plan) {
  if (map == nullptr || budget_bytes_ == 0) return;
  Entry entry;
  entry.key = key;
  entry.session_id = session_id;
  entry.bytes = EstimateMapBytes(*map) +
                (plan != nullptr ? plan->ApproxBytes() : 0) + sizeof(Entry);
  entry.map = std::move(map);
  entry.plan = std::move(plan);
  if (entry.bytes > budget_bytes_) return;  // would evict everything else
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t hash = key.Hash();
    auto it = index_.find(hash);
    // An existing entry under this hash (same key, or an astronomically
    // unlikely collision) is replaced rather than duplicated.
    if (it != index_.end()) RemoveLocked(it->second, /*invalidation=*/false);
    bytes_ += entry.bytes;
    entries_.push_front(std::move(entry));
    index_[hash] = entries_.begin();
    counters_.inserts++;
    EnforceBudgetLocked();
    PublishGaugesLocked();
  }
  metrics_->counter("core.cache.inserts")->Increment();
}

std::shared_ptr<const PreprocessPlan> MapCache::LookupPlan(
    const MapCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key.Hash());
  if (it == index_.end() || !(it->second->key == key)) return nullptr;
  return it->second->plan;
}

std::shared_ptr<const std::vector<size_t>> MapCache::LookupPrimaryKeys(
    const std::string& table_name, uint64_t table_version, uint64_t table_fp,
    uint64_t columns_fp) {
  std::shared_ptr<const std::vector<size_t>> found;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const PkEntry& e : pk_entries_) {
      if (e.table_version == table_version && e.table_fp == table_fp &&
          e.columns_fp == columns_fp && e.table_name == table_name) {
        found = e.keys;
        break;
      }
    }
    if (found != nullptr) {
      counters_.pk_hits++;
    } else {
      counters_.pk_misses++;
    }
  }
  metrics_->counter(found != nullptr ? "core.cache.pk_hits"
                                     : "core.cache.pk_misses")
      ->Increment();
  return found;
}

void MapCache::InsertPrimaryKeys(
    const std::string& table_name, uint64_t table_version, uint64_t table_fp,
    uint64_t columns_fp, std::shared_ptr<const std::vector<size_t>> keys) {
  if (keys == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (PkEntry& e : pk_entries_) {
    if (e.table_version == table_version && e.table_fp == table_fp &&
        e.columns_fp == columns_fp && e.table_name == table_name) {
      e.keys = std::move(keys);
      return;
    }
  }
  pk_entries_.push_back(
      {table_name, table_version, table_fp, columns_fp, std::move(keys)});
}

void MapCache::EvictSession(uint64_t session_id) {
  int64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end();) {
      auto next = std::next(it);
      if (it->session_id == session_id) {
        RemoveLocked(it, /*invalidation=*/true);
        dropped++;
      }
      it = next;
    }
    PublishGaugesLocked();
  }
  if (dropped > 0) {
    metrics_->counter("core.cache.invalidations")->Add(dropped);
    flight_->Record(obs::FlightEventKind::kCacheEvict, "core.cache.evict_session",
                    {{"session", std::to_string(session_id)},
                     {"entries_dropped", std::to_string(dropped)}});
  }
}

void MapCache::EvictTable(const std::string& table_name) {
  obs::Span span(tracer_, "core.cache.invalidate");
  span.SetAttr("table", table_name);
  int64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end();) {
      auto next = std::next(it);
      if (it->key.table_name == table_name) {
        RemoveLocked(it, /*invalidation=*/true);
        dropped++;
      }
      it = next;
    }
    for (auto it = pk_entries_.begin(); it != pk_entries_.end();) {
      if (it->table_name == table_name) {
        it = pk_entries_.erase(it);
        counters_.invalidations++;
        dropped++;
      } else {
        ++it;
      }
    }
    PublishGaugesLocked();
  }
  span.SetAttr("entries_dropped", dropped);
  if (dropped > 0) {
    metrics_->counter("core.cache.invalidations")->Add(dropped);
    flight_->Record(obs::FlightEventKind::kCacheEvict, "core.cache.invalidate",
                    {{"table", table_name},
                     {"entries_dropped", std::to_string(dropped)}});
  }
}

void MapCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  index_.clear();
  pk_entries_.clear();
  bytes_ = 0;
  PublishGaugesLocked();
}

void MapCache::EnforceBudgetLocked() {
  while (bytes_ > budget_bytes_ && !entries_.empty()) {
    RemoveLocked(std::prev(entries_.end()), /*invalidation=*/false);
    counters_.evictions++;
    metrics_->counter("core.cache.evictions")->Increment();
  }
}

void MapCache::RemoveLocked(std::list<Entry>::iterator it, bool invalidation) {
  if (invalidation) counters_.invalidations++;
  bytes_ -= it->bytes;
  index_.erase(it->key.Hash());
  entries_.erase(it);
}

void MapCache::PublishGaugesLocked() {
  metrics_->gauge("core.cache.bytes")->Set(static_cast<double>(bytes_));
  metrics_->gauge("core.cache.entries")
      ->Set(static_cast<double>(entries_.size()));
}

MapCacheStats MapCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  MapCacheStats out = counters_;
  out.entries = entries_.size();
  out.bytes = bytes_;
  out.budget_bytes = budget_bytes_;
  out.pk_entries = pk_entries_.size();
  return out;
}

std::string MapCache::StatsJson() const {
  MapCacheStats s = stats();
  JsonWriter w;
  w.BeginObject();
  w.KV("hits", s.hits)
      .KV("misses", s.misses)
      .KV("inserts", s.inserts)
      .KV("evictions", s.evictions)
      .KV("invalidations", s.invalidations)
      .KV("pk_hits", s.pk_hits)
      .KV("pk_misses", s.pk_misses)
      .KV("entries", s.entries)
      .KV("bytes", s.bytes)
      .KV("budget_bytes", s.budget_bytes)
      .KV("pk_entries", s.pk_entries);
  w.EndObject();
  return w.str();
}

}  // namespace blaeu::core
